//! Criticality estimation from dependence chains (paper Section 3,
//! fifth/sixth applications).
//!
//! The paper argues cycle-by-cycle chain information "can potentially
//! improve the accuracy of critical instruction detection ... Bodik's
//! random sampling approach may unintentionally miss critical sequences.
//! Data dependence information can potentially provide more directed,
//! rather than random, sampling." It likewise proposes dependence-derived
//! parallelism estimates for pipeline-gating optimizations (Bahar/Manne,
//! Folegnani).
//!
//! [`CriticalityEstimator`] scores each in-flight instruction by its
//! trailing-dependent count and exposes a window *parallelism estimate*
//! (mean chain load), the quantity those optimizations would consume.

use arvi_core::{DdtConfig, InstSlot, RenamedOp, Tracker, TrackerConfig};

/// Dependence-directed criticality and parallelism estimation.
#[derive(Debug)]
pub struct CriticalityEstimator {
    tracker: Tracker,
}

impl CriticalityEstimator {
    /// Creates an estimator window.
    pub fn new(slots: usize, phys_regs: usize) -> CriticalityEstimator {
        CriticalityEstimator {
            tracker: Tracker::new(TrackerConfig {
                ddt: DdtConfig { slots, phys_regs },
                track_dependents: true,
            }),
        }
    }

    /// Inserts a renamed instruction.
    pub fn insert(&mut self, op: &RenamedOp) -> InstSlot {
        self.tracker.insert(op)
    }

    /// Retires the oldest instruction.
    pub fn commit_oldest(&mut self) {
        self.tracker.commit_oldest();
    }

    /// Criticality score of one in-flight instruction: the number of
    /// in-flight instructions transitively waiting on it.
    pub fn score(&self, slot: InstSlot) -> u32 {
        self.tracker.dependents(slot)
    }

    /// The most critical in-flight instructions (directed sampling),
    /// highest score first, ties oldest first.
    pub fn top_critical(&self, n: usize) -> Vec<(InstSlot, u32)> {
        let mut scored: Vec<(InstSlot, u32)> = (0..self.tracker.ddt().config().slots)
            .map(|s| InstSlot(s as u32))
            .filter(|&s| self.tracker.ddt().is_slot_valid(s))
            .map(|s| (s, self.tracker.dependents(s)))
            .collect();
        scored
            .sort_by_key(|&(s, score)| (std::cmp::Reverse(score), self.tracker.ddt().slot_seq(s)));
        scored.truncate(n);
        scored
    }

    /// Window parallelism estimate: in-flight instructions divided by the
    /// mean dependent load plus one. High values mean wide, independent
    /// work (an issue queue could shrink); low values mean serialized
    /// chains.
    pub fn parallelism_estimate(&self) -> f64 {
        let occ = self.tracker.occupancy();
        if occ == 0 {
            return 0.0;
        }
        let total: u64 = (0..self.tracker.ddt().config().slots)
            .map(|s| InstSlot(s as u32))
            .filter(|&s| self.tracker.ddt().is_slot_valid(s))
            .map(|s| self.tracker.dependents(s) as u64)
            .sum();
        occ as f64 / (total as f64 / occ as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_core::PhysReg;

    fn p(i: u16) -> PhysReg {
        PhysReg(i)
    }

    #[test]
    fn chain_head_is_most_critical() {
        let mut c = CriticalityEstimator::new(32, 64);
        let head = c.insert(&RenamedOp::load(p(1), None));
        let mut prev = p(1);
        for i in 0..5u16 {
            let d = p(10 + i);
            c.insert(&RenamedOp::alu(d, [Some(prev), None]));
            prev = d;
        }
        c.insert(&RenamedOp::alu(p(30), [None, None])); // independent
        let top = c.top_critical(1);
        assert_eq!(top[0].0, head);
        assert_eq!(top[0].1, 5);
    }

    #[test]
    fn parallel_window_scores_high() {
        let mut wide = CriticalityEstimator::new(32, 64);
        for i in 0..8u16 {
            wide.insert(&RenamedOp::alu(p(i + 1), [None, None]));
        }
        let mut narrow = CriticalityEstimator::new(32, 64);
        let mut prev = None;
        for i in 0..8u16 {
            narrow.insert(&RenamedOp::alu(p(i + 1), [prev, None]));
            prev = Some(p(i + 1));
        }
        assert!(
            wide.parallelism_estimate() > narrow.parallelism_estimate() * 1.5,
            "wide {} vs narrow {}",
            wide.parallelism_estimate(),
            narrow.parallelism_estimate()
        );
    }

    #[test]
    fn empty_window_is_zero() {
        let c = CriticalityEstimator::new(8, 16);
        assert_eq!(c.parallelism_estimate(), 0.0);
        assert!(c.top_critical(4).is_empty());
    }

    #[test]
    fn commit_reduces_scores() {
        let mut c = CriticalityEstimator::new(16, 32);
        c.insert(&RenamedOp::alu(p(1), [None, None]));
        c.insert(&RenamedOp::alu(p(2), [Some(p(1)), None]));
        assert_eq!(c.top_critical(1)[0].1, 1);
        c.commit_oldest();
        assert_eq!(c.top_critical(1)[0].1, 0);
    }
}

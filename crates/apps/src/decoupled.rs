//! Branch-decoupled execution slices (paper Section 3, fourth
//! application).
//!
//! In dynamic branch-decoupled architectures "the string of instructions
//! comprising the dependence chain to a branch in a loop are segregated
//! and executed in a parallel branch execution unit (BEX) ... In the DDT
//! table, the data dependence chain is immediately available." The paper
//! notes that the prior dynamic design (Tyagi et al.) lacked exactly this
//! hardware — "our DDT design could be employed to select the set of
//! instructions to run in the separate branch engine."
//!
//! [`BexExtractor`] produces, for a branch, the slice of in-flight
//! instructions the BEX unit would execute, plus slice-size statistics
//! that determine how far ahead the branch engine can run.

use arvi_core::{ChainMask, DdtConfig, InstSlot, PhysReg, RenamedOp, Tracker, TrackerConfig};

/// A branch's execution slice: the chain instructions a BEX unit would
/// replicate, oldest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchSlice {
    /// Chain member slots, oldest first.
    pub slots: Vec<InstSlot>,
    /// Size of the full in-flight window when extracted.
    pub window: usize,
}

impl BranchSlice {
    /// The fraction of the in-flight window the slice occupies — the
    /// paper's speedup lever: "since the set of instructions in the
    /// dependence chain is fewer than the full set of instructions in the
    /// loop, the BEX unit will run ahead of the main execution unit".
    pub fn density(&self) -> f64 {
        if self.window == 0 {
            0.0
        } else {
            self.slots.len() as f64 / self.window as f64
        }
    }
}

/// Extracts BEX slices from a dependence tracker.
#[derive(Debug)]
pub struct BexExtractor {
    tracker: Tracker,
    /// Reused chain mask: slice extraction does not allocate for the
    /// chain read itself (only for the returned slot list).
    chain_scratch: ChainMask,
}

impl BexExtractor {
    /// Creates an extractor window.
    pub fn new(slots: usize, phys_regs: usize) -> BexExtractor {
        BexExtractor {
            tracker: Tracker::new(TrackerConfig {
                ddt: DdtConfig { slots, phys_regs },
                track_dependents: false,
            }),
            chain_scratch: ChainMask::zeroed(slots),
        }
    }

    /// Inserts a renamed instruction.
    pub fn insert(&mut self, op: &RenamedOp) -> InstSlot {
        self.tracker.insert(op)
    }

    /// Retires the oldest instruction.
    pub fn commit_oldest(&mut self) {
        self.tracker.commit_oldest();
    }

    /// The slice for a branch reading `branch_srcs` (call before inserting
    /// the branch, as the ARVI predictor does).
    pub fn slice(&mut self, branch_srcs: [Option<PhysReg>; 2]) -> BranchSlice {
        let (operands, n) = Tracker::pack_operands(branch_srcs);
        self.tracker
            .ddt()
            .chain_into(&operands[..n], &mut self.chain_scratch);
        // slots_by_age, not ChainMask::slots: column order would
        // mis-order slices that wrap the ring.
        BranchSlice {
            slots: self.tracker.ddt().slots_by_age(&self.chain_scratch),
            window: self.tracker.occupancy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> PhysReg {
        PhysReg(i)
    }

    #[test]
    fn slice_contains_exactly_the_chain() {
        let mut bex = BexExtractor::new(32, 64);
        // Branch-relevant chain: p1 -> p2; unrelated work on p5..p8.
        let a = bex.insert(&RenamedOp::alu(p(1), [None, None]));
        bex.insert(&RenamedOp::alu(p(5), [None, None]));
        let c = bex.insert(&RenamedOp::alu(p(2), [Some(p(1)), None]));
        bex.insert(&RenamedOp::alu(p(6), [Some(p(5)), None]));
        bex.insert(&RenamedOp::alu(p(7), [Some(p(6)), None]));
        let s = bex.slice([Some(p(2)), None]);
        assert_eq!(s.slots, vec![a, c]);
        assert_eq!(s.window, 5);
        assert!((s.density() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn slice_is_oldest_first() {
        let mut bex = BexExtractor::new(16, 32);
        let a = bex.insert(&RenamedOp::alu(p(1), [None, None]));
        let b = bex.insert(&RenamedOp::alu(p(2), [Some(p(1)), None]));
        let c = bex.insert(&RenamedOp::alu(p(3), [Some(p(2)), None]));
        let s = bex.slice([Some(p(3)), None]);
        assert_eq!(s.slots, vec![a, b, c]);
    }

    #[test]
    fn committed_producers_leave_the_slice() {
        let mut bex = BexExtractor::new(16, 32);
        bex.insert(&RenamedOp::alu(p(1), [None, None]));
        let b = bex.insert(&RenamedOp::alu(p(2), [Some(p(1)), None]));
        bex.commit_oldest();
        let s = bex.slice([Some(p(2)), None]);
        assert_eq!(s.slots, vec![b]);
    }

    #[test]
    fn empty_window_density_is_zero() {
        let mut bex = BexExtractor::new(8, 16);
        let s = bex.slice([Some(p(1)), None]);
        assert_eq!(s.density(), 0.0);
    }
}

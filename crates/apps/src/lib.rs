//! # arvi-apps
//!
//! The paper's Section 3: applications of on-line, cycle-by-cycle data
//! dependence tracking beyond branch prediction. Each module is a working
//! model of one proposed use, driven by the same
//! [`Tracker`](arvi_core::Tracker) (DDT + RSE) the ARVI predictor uses:
//!
//! * [`scheduling`] — issue priority from trailing-dependent counts;
//! * [`smt`] — SMT fetch gating: ICOUNT versus chain-length scores;
//! * [`value_prediction`] — Calder-style selective value prediction,
//!   gated by the DDT's dependent counters;
//! * [`decoupled`] — branch-decoupled (BEX) slice extraction;
//! * [`criticality`] — directed critical-instruction sampling and window
//!   parallelism estimates.
//!
//! The runnable `applications` example at the workspace root exercises
//! all five against real workload traces.

pub mod criticality;
pub mod decoupled;
pub mod scheduling;
pub mod smt;
pub mod value_prediction;

pub use criticality::CriticalityEstimator;
pub use decoupled::{BexExtractor, BranchSlice};
pub use scheduling::ChainScheduler;
pub use smt::{FetchPolicy, SmtFetchPolicy};
pub use value_prediction::{SelectiveValuePredictor, VpStats};

//! Dynamic scheduling priority from dependence-chain information
//! (paper Section 3, first application).
//!
//! "Instruction issue priority can be partially based on data dependence
//! properties. One possibility is to assign priority to loads partially
//! based on the length of their dependence chains. It is an incremental
//! addition to the basic DDT design to track the number of data dependent
//! instructions trailing particular instructions."
//!
//! [`ChainScheduler`] wraps a dependent-counting [`Tracker`] and ranks
//! ready instructions by their trailing-dependent count, so the host
//! issue logic can give loads that feed long chains first claim on memory
//! ports.

use arvi_core::{DdtConfig, InstSlot, RenamedOp, Tracker, TrackerConfig};

/// A priority oracle for issue selection: how many in-flight instructions
/// wait (transitively) on each candidate.
#[derive(Debug)]
pub struct ChainScheduler {
    tracker: Tracker,
}

impl ChainScheduler {
    /// Creates a scheduler window of the given shape.
    pub fn new(slots: usize, phys_regs: usize) -> ChainScheduler {
        ChainScheduler {
            tracker: Tracker::new(TrackerConfig {
                ddt: DdtConfig { slots, phys_regs },
                track_dependents: true,
            }),
        }
    }

    /// Inserts a renamed instruction (call at rename, like the DDT).
    pub fn insert(&mut self, op: &RenamedOp) -> InstSlot {
        self.tracker.insert(op)
    }

    /// Retires the oldest instruction.
    pub fn commit_oldest(&mut self) {
        self.tracker.commit_oldest();
    }

    /// The number of in-flight instructions data-dependent on `slot` —
    /// the priority key (higher = more urgent).
    pub fn priority(&self, slot: InstSlot) -> u32 {
        self.tracker.dependents(slot)
    }

    /// Orders candidate slots by descending dependent count (stable for
    /// equal counts, preserving age order).
    pub fn rank(&self, candidates: &mut [InstSlot]) {
        candidates.sort_by_key(|&s| std::cmp::Reverse(self.tracker.dependents(s)));
    }

    /// The underlying tracker.
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_core::PhysReg;

    fn p(i: u16) -> PhysReg {
        PhysReg(i)
    }

    #[test]
    fn load_feeding_chain_outranks_isolated_load() {
        let mut s = ChainScheduler::new(32, 64);
        // Load A feeds a 4-deep chain; load B feeds nothing.
        let a = s.insert(&RenamedOp::load(p(1), Some(p(9))));
        let b = s.insert(&RenamedOp::load(p(2), Some(p(9))));
        let mut prev = p(1);
        for i in 0..4u16 {
            let d = p(10 + i);
            s.insert(&RenamedOp::alu(d, [Some(prev), None]));
            prev = d;
        }
        assert_eq!(s.priority(a), 4);
        assert_eq!(s.priority(b), 0);
        let mut cand = vec![b, a];
        s.rank(&mut cand);
        assert_eq!(cand, vec![a, b]);
    }

    #[test]
    fn priorities_update_incrementally() {
        let mut s = ChainScheduler::new(16, 32);
        let a = s.insert(&RenamedOp::alu(p(1), [None, None]));
        assert_eq!(s.priority(a), 0);
        s.insert(&RenamedOp::alu(p(2), [Some(p(1)), None]));
        assert_eq!(s.priority(a), 1);
        s.insert(&RenamedOp::alu(p(3), [Some(p(2)), Some(p(1))]));
        assert_eq!(s.priority(a), 2);
    }

    #[test]
    fn ties_preserve_age_order() {
        let mut s = ChainScheduler::new(16, 32);
        let a = s.insert(&RenamedOp::alu(p(1), [None, None]));
        let b = s.insert(&RenamedOp::alu(p(2), [None, None]));
        let mut cand = vec![a, b];
        s.rank(&mut cand);
        assert_eq!(cand, vec![a, b]);
    }
}

//! SMT fetch gating from per-thread dependence-chain information
//! (paper Section 3, second application).
//!
//! Tullsen's ICOUNT policy prioritizes threads with the fewest front-end
//! instructions; the paper observes that "per-thread data dependence chain
//! information, e.g. the average length of each chain, can potentially
//! provide a more accurate measure of the likelihood of a particular
//! thread making forward progress". [`SmtFetchPolicy`] implements both
//! scores over per-thread trackers so hosts (and the `applications`
//! example) can compare them.

use arvi_core::{DdtConfig, RenamedOp, Tracker, TrackerConfig};

/// Fetch-priority policy flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchPolicy {
    /// Fewest in-flight instructions first (ICOUNT).
    Icount,
    /// Smallest total trailing-dependence load first (chain-length).
    ChainLength,
}

/// Per-thread dependence state for an SMT front end.
#[derive(Debug)]
pub struct SmtFetchPolicy {
    threads: Vec<Tracker>,
}

impl SmtFetchPolicy {
    /// Creates state for `n` hardware threads, each with its own DDT
    /// ("per-thread DDTs" in the paper).
    pub fn new(n: usize, slots: usize, phys_regs: usize) -> SmtFetchPolicy {
        SmtFetchPolicy {
            threads: (0..n)
                .map(|_| {
                    Tracker::new(TrackerConfig {
                        ddt: DdtConfig { slots, phys_regs },
                        track_dependents: true,
                    })
                })
                .collect(),
        }
    }

    /// Number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Inserts a renamed instruction for `thread`.
    pub fn insert(&mut self, thread: usize, op: &RenamedOp) {
        self.threads[thread].insert(op);
    }

    /// Retires the oldest instruction of `thread`.
    pub fn commit_oldest(&mut self, thread: usize) {
        self.threads[thread].commit_oldest();
    }

    /// ICOUNT score: in-flight instruction count (lower = higher fetch
    /// priority).
    pub fn icount(&self, thread: usize) -> usize {
        self.threads[thread].occupancy()
    }

    /// Chain-length score: total trailing dependents across the thread's
    /// window — a proxy for how serialized its work is (lower = the
    /// thread is making progress and deserves fetch slots).
    pub fn chain_score(&self, thread: usize) -> u64 {
        let t = &self.threads[thread];
        (0..t.ddt().config().slots)
            .filter(|&s| t.ddt().is_slot_valid(arvi_core::InstSlot(s as u32)))
            .map(|s| t.dependents(arvi_core::InstSlot(s as u32)) as u64)
            .sum()
    }

    /// The thread the policy would fetch from next.
    pub fn pick(&self, policy: FetchPolicy) -> usize {
        let score = |t: usize| -> u64 {
            match policy {
                FetchPolicy::Icount => self.icount(t) as u64,
                FetchPolicy::ChainLength => self.chain_score(t),
            }
        };
        (0..self.threads.len())
            .min_by_key(|&t| (score(t), t))
            .expect("at least one thread")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_core::PhysReg;

    fn p(i: u16) -> PhysReg {
        PhysReg(i)
    }

    #[test]
    fn icount_picks_emptier_thread() {
        let mut smt = SmtFetchPolicy::new(2, 32, 64);
        smt.insert(0, &RenamedOp::alu(p(1), [None, None]));
        smt.insert(0, &RenamedOp::alu(p(2), [None, None]));
        smt.insert(1, &RenamedOp::alu(p(1), [None, None]));
        assert_eq!(smt.pick(FetchPolicy::Icount), 1);
    }

    #[test]
    fn chain_policy_distinguishes_equal_icounts() {
        let mut smt = SmtFetchPolicy::new(2, 32, 64);
        // Thread 0: a serial chain (heavily serialized).
        smt.insert(0, &RenamedOp::alu(p(1), [None, None]));
        smt.insert(0, &RenamedOp::alu(p(2), [Some(p(1)), None]));
        smt.insert(0, &RenamedOp::alu(p(3), [Some(p(2)), None]));
        // Thread 1: three independent instructions (parallel work).
        smt.insert(1, &RenamedOp::alu(p(1), [None, None]));
        smt.insert(1, &RenamedOp::alu(p(2), [None, None]));
        smt.insert(1, &RenamedOp::alu(p(3), [None, None]));
        // ICOUNT cannot tell them apart (tie broken by index)...
        assert_eq!(smt.icount(0), smt.icount(1));
        // ...while chain scores differ: 2+1+0 vs 0.
        assert_eq!(smt.chain_score(0), 3);
        assert_eq!(smt.chain_score(1), 0);
        assert_eq!(smt.pick(FetchPolicy::ChainLength), 1);
    }

    #[test]
    fn commit_restores_priority() {
        let mut smt = SmtFetchPolicy::new(2, 32, 64);
        for _ in 0..4 {
            smt.insert(0, &RenamedOp::alu(p(1), [None, None]));
        }
        smt.insert(1, &RenamedOp::alu(p(1), [None, None]));
        assert_eq!(smt.pick(FetchPolicy::Icount), 1);
        for _ in 0..4 {
            smt.commit_oldest(0);
        }
        assert_eq!(smt.pick(FetchPolicy::Icount), 0);
    }
}

//! Selective value prediction (paper Section 3, third application).
//!
//! Calder et al. restrict value prediction to instructions "which have a
//! long data dependence chain waiting on their outcome. However, no
//! mechanism for determining this length is described. Using the
//! mechanism described above, those instructions that exceed a threshold
//! count may be selected for value prediction."
//!
//! [`SelectiveValuePredictor`] combines the DDT dependent counters with a
//! last-value predictor table: only instructions whose trailing-dependent
//! count exceeds the threshold consume prediction bandwidth.

use arvi_core::{DdtConfig, InstSlot, RenamedOp, Tracker, TrackerConfig};
use std::collections::HashMap;

/// Outcome statistics for the selective policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VpStats {
    /// Instructions eligible (dependent count >= threshold) and predicted.
    pub predicted: u64,
    /// Predictions whose value matched the eventual result.
    pub correct: u64,
    /// Instructions skipped by the filter.
    pub skipped: u64,
}

impl VpStats {
    /// Prediction accuracy over issued predictions.
    pub fn accuracy(&self) -> f64 {
        if self.predicted == 0 {
            1.0
        } else {
            self.correct as f64 / self.predicted as f64
        }
    }

    /// Fraction of value-producing instructions that were predicted.
    pub fn coverage(&self) -> f64 {
        let total = self.predicted + self.skipped;
        if total == 0 {
            0.0
        } else {
            self.predicted as f64 / total as f64
        }
    }
}

/// A last-value predictor gated by DDT dependent counts.
#[derive(Debug)]
pub struct SelectiveValuePredictor {
    tracker: Tracker,
    last_value: HashMap<u64, u64>,
    threshold: u32,
    stats: VpStats,
    /// (slot, pc) of in-flight candidates awaiting resolution.
    in_flight: Vec<(InstSlot, u64, Option<u64>)>,
}

impl SelectiveValuePredictor {
    /// Creates a predictor; instructions are value-predicted only once at
    /// least `threshold` in-flight instructions depend on them.
    pub fn new(slots: usize, phys_regs: usize, threshold: u32) -> SelectiveValuePredictor {
        SelectiveValuePredictor {
            tracker: Tracker::new(TrackerConfig {
                ddt: DdtConfig { slots, phys_regs },
                track_dependents: true,
            }),
            last_value: HashMap::new(),
            threshold,
            stats: VpStats::default(),
            in_flight: Vec::new(),
        }
    }

    /// Inserts a renamed value-producing instruction at `pc`; returns the
    /// value prediction if the instruction qualifies *at this point*
    /// (callers may also re-query later as dependents accumulate).
    pub fn insert(&mut self, pc: u64, op: &RenamedOp) -> Option<u64> {
        let slot = self.tracker.insert(op);
        let guess = self.last_value.get(&pc).copied();
        self.in_flight.push((slot, pc, guess));
        guess
    }

    /// Whether the in-flight instruction at `slot` currently exceeds the
    /// selection threshold.
    pub fn qualifies(&self, slot: InstSlot) -> bool {
        self.tracker.dependents(slot) >= self.threshold
    }

    /// Resolves the oldest in-flight instruction with its actual result,
    /// scoring the prediction iff the instruction qualified.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight.
    pub fn resolve_oldest(&mut self, actual: u64) {
        assert!(!self.in_flight.is_empty(), "nothing to resolve");
        let (slot, pc, guess) = self.in_flight.remove(0);
        if self.qualifies(slot) {
            self.stats.predicted += 1;
            if guess == Some(actual) {
                self.stats.correct += 1;
            }
        } else {
            self.stats.skipped += 1;
        }
        self.last_value.insert(pc, actual);
        self.tracker.commit_oldest();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> VpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_core::PhysReg;

    fn p(i: u16) -> PhysReg {
        PhysReg(i)
    }

    #[test]
    fn filter_selects_only_chain_heads() {
        let mut vp = SelectiveValuePredictor::new(32, 64, 2);
        // Head feeds two dependents -> qualifies; the tail feeds none.
        vp.insert(0x10, &RenamedOp::load(p(1), None));
        vp.insert(0x14, &RenamedOp::alu(p(2), [Some(p(1)), None]));
        vp.insert(0x18, &RenamedOp::alu(p(3), [Some(p(2)), None]));
        vp.resolve_oldest(7); // head: qualified (2 dependents)
        vp.resolve_oldest(8); // middle: 1 dependent < 2 -> skipped
        vp.resolve_oldest(9); // tail: skipped
        let s = vp.stats();
        assert_eq!(s.predicted, 1);
        assert_eq!(s.skipped, 2);
    }

    #[test]
    fn last_value_predicts_stable_values() {
        let mut vp = SelectiveValuePredictor::new(32, 64, 1);
        for round in 0..5 {
            vp.insert(0x10, &RenamedOp::load(p(1), None));
            vp.insert(0x14, &RenamedOp::alu(p(2), [Some(p(1)), None]));
            vp.resolve_oldest(42); // same value every round
            vp.resolve_oldest(round); // unpredictable consumer (skipped: 0 deps)
        }
        let s = vp.stats();
        assert_eq!(s.predicted, 5);
        assert_eq!(s.correct, 4, "first round has no history");
        assert!(s.accuracy() > 0.7);
    }

    #[test]
    fn coverage_reflects_threshold() {
        let strict = {
            let mut vp = SelectiveValuePredictor::new(32, 64, 8);
            for _ in 0..10 {
                vp.insert(0, &RenamedOp::alu(p(1), [None, None]));
                vp.resolve_oldest(1);
            }
            vp.stats().coverage()
        };
        let lax = {
            let mut vp = SelectiveValuePredictor::new(32, 64, 0);
            for _ in 0..10 {
                vp.insert(0, &RenamedOp::alu(p(1), [None, None]));
                vp.resolve_oldest(1);
            }
            vp.stats().coverage()
        };
        assert_eq!(strict, 0.0);
        assert_eq!(lax, 1.0);
    }
}

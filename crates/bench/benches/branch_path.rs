//! `branch_path` — the standalone predict+train loop over a recorded
//! branch stream: packed, index-carrying predictors vs the preserved
//! scalar baselines (PR 5).
//!
//! The stream is the conditional-branch trace of m88ksim (the workload
//! the machine micro in `perf_report` uses), driven through the full
//! three-step protocol with a delayed update 8 branches behind the
//! prediction — the machine-shaped regime where the carried indices
//! save the scalar path's second round of hashing.
//!
//! Run with `ARVI_BENCH_FAST=1` for CI smoke timing.

use arvi_bench::baseline::{ScalarBimodal, ScalarTwoBcGskew};
use arvi_bench::{
    conditional_branches, record_trace, run_delayed, run_delayed_scalar, Spec, Workload,
};
use arvi_predict::{Bimodal, GskewConfig, TwoBcGskew};
use arvi_workloads::Benchmark;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

/// Update delay, in branches, of the delayed-protocol loops (the L2
/// latency class of in-flight branches).
const WINDOW: usize = 8;

fn branch_stream() -> Vec<(u64, bool)> {
    let spec = Spec {
        warmup: 10_000,
        measure: 40_000,
        seed: 42,
    };
    conditional_branches(&record_trace(&Workload::from(Benchmark::M88ksim), spec))
}

fn bench_branch_path(c: &mut Criterion) {
    let stream = branch_stream();
    let mut g = c.benchmark_group("branch_path");
    g.throughput(Throughput::Elements(stream.len() as u64));

    g.bench_function("gskew_packed", |b| {
        let mut p = TwoBcGskew::new(GskewConfig::level2());
        b.iter(|| black_box(run_delayed(&mut p, &stream, WINDOW)));
    });

    g.bench_function("gskew_scalar_baseline", |b| {
        let mut p = ScalarTwoBcGskew::new(GskewConfig::level2());
        b.iter(|| black_box(run_delayed_scalar(&mut p, &stream, WINDOW)));
    });

    // Window 0 = immediate update (the bimodal carries no history to
    // checkpoint, so the delayed protocol degenerates anyway).
    g.bench_function("bimodal_packed", |b| {
        let mut p = Bimodal::new(17);
        b.iter(|| black_box(run_delayed(&mut p, &stream, 0)));
    });

    g.bench_function("bimodal_scalar_baseline", |b| {
        let mut p = ScalarBimodal::new(17);
        b.iter(|| black_box(run_delayed_scalar(&mut p, &stream, 0)));
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_branch_path
}
criterion_main!(benches);

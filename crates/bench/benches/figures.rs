//! Regenerates scaled-down versions of every figure under `cargo bench`,
//! so the standard command exercises the full experiment flow. For the
//! full-window artifacts use the `experiments` binary.

use arvi_bench::{fig5_tables, paper_tables, Fig6Data, Spec};
use arvi_sim::{Depth, PredictorConfig};

fn main() {
    let spec = Spec::quick();
    println!(
        "== regenerating paper artifacts (quick windows: {}k warm + {}k measured) ==\n",
        spec.warmup / 1000,
        spec.measure / 1000
    );

    for (title, table) in paper_tables() {
        println!("-- {title} --\n{}", table.to_text());
    }

    let (fig5a, fig5b) = fig5_tables(spec, false);
    println!(
        "-- Figure 5(a): load-branch fraction --\n{}",
        fig5a.to_text()
    );
    println!(
        "-- Figure 5(b): calculated vs load accuracy --\n{}",
        fig5b.to_text()
    );

    for depth in Depth::all() {
        let data = Fig6Data::collect(depth, spec, false);
        println!(
            "-- Figure 6 accuracy, {depth} --\n{}",
            data.accuracy_table().to_text()
        );
        println!(
            "-- Figure 6 normalized IPC, {depth} --\n{}",
            data.normalized_ipc_table().to_text()
        );
        println!(
            "mean normalized IPC: current {:.3}, load-back {:.3}, perfect {:.3}\n",
            data.mean_normalized_ipc(PredictorConfig::ArviCurrent),
            data.mean_normalized_ipc(PredictorConfig::ArviLoadBack),
            data.mean_normalized_ipc(PredictorConfig::ArviPerfect),
        );
    }
    println!("figures bench complete (quick windows; see `experiments` for full runs)");
}

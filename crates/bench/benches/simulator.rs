//! Whole-system throughput: emulator and timing-simulator speed on the
//! benchmark programs (simulated instructions per wall-clock second).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use arvi_bench::baseline::HeapMachine;
use arvi_isa::Emulator;
use arvi_sim::{Depth, Machine, PredictorConfig, SimParams};
use arvi_workloads::Benchmark;

fn bench_emulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulator");
    g.throughput(Throughput::Elements(50_000));
    for bench in [Benchmark::M88ksim, Benchmark::Go] {
        g.bench_function(bench.name(), |b| {
            b.iter(|| {
                let emu = Emulator::new(bench.program(42));
                black_box(emu.take(50_000).filter(|d| d.is_branch()).count())
            });
        });
    }
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.throughput(Throughput::Elements(30_000));
    g.sample_size(10);
    for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
        g.bench_function(config.label(), |b| {
            b.iter(|| {
                let mut m = Machine::new(
                    Emulator::new(Benchmark::Compress.program(42)),
                    SimParams::for_depth(Depth::D20),
                    config,
                );
                black_box(m.run_until_committed(30_000))
            });
        });
    }
    g.finish();
}

/// The preserved heap-scheduled machine on the same cells as `machine`,
/// mirroring the `ddt` / `ddt_baseline` pairing: the criterion report
/// keeps the calendar-queue speedup visible next to the exact prior
/// event core.
fn bench_machine_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_baseline");
    g.throughput(Throughput::Elements(30_000));
    g.sample_size(10);
    for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
        g.bench_function(config.label(), |b| {
            b.iter(|| {
                let mut m = HeapMachine::new(
                    Emulator::new(Benchmark::Compress.program(42)),
                    SimParams::for_depth(Depth::D20),
                    config,
                );
                black_box(m.run_until_committed(30_000))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_emulator, bench_machine, bench_machine_baseline
}
criterion_main!(benches);

//! Microbenchmarks of the paper's hardware structures: DDT maintenance,
//! RSE extraction, BVIT access and the baseline predictors.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use arvi_bench::baseline::NaiveDdt;
use arvi_core::{
    ArviConfig, ArviPredictor, Bvit, BvitConfig, ChainMask, CurrentValues, Ddt, DdtConfig, LeafSet,
    PhysReg, RenamedOp, Tracker, TrackerConfig,
};
use arvi_predict::{DirectionPredictor, GskewConfig, TwoBcGskew};

fn paper_tracker() -> TrackerConfig {
    TrackerConfig {
        ddt: DdtConfig {
            slots: 256,
            phys_regs: 320,
        },
        track_dependents: false,
    }
}

fn bench_ddt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ddt");
    g.bench_function("insert_commit_steady_state", |b| {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 256,
            phys_regs: 320,
        });
        let mut i = 0u16;
        b.iter(|| {
            if ddt.is_full() {
                ddt.commit_oldest();
            }
            let dest = PhysReg(32 + (i % 280));
            let src = PhysReg(32 + ((i + 1) % 280));
            ddt.insert(black_box(Some(dest)), black_box([Some(src), None]));
            i = i.wrapping_add(1);
        });
    });
    g.bench_function("chain_read_deep", |b| {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 256,
            phys_regs: 320,
        });
        // Build a 200-deep dependence chain.
        let mut prev = PhysReg(32);
        ddt.insert(Some(prev), [None, None]);
        for i in 1..200u16 {
            let d = PhysReg(32 + i);
            ddt.insert(Some(d), [Some(prev), None]);
            prev = d;
        }
        b.iter(|| black_box(ddt.chain(&[prev])).len());
    });
    g.bench_function("chain_into_read_deep", |b| {
        // The zero-allocation variant of chain_read_deep: same read, the
        // result mask is reused across iterations.
        let mut ddt = Ddt::new(DdtConfig {
            slots: 256,
            phys_regs: 320,
        });
        let mut prev = PhysReg(32);
        ddt.insert(Some(prev), [None, None]);
        for i in 1..200u16 {
            let d = PhysReg(32 + i);
            ddt.insert(Some(d), [Some(prev), None]);
            prev = d;
        }
        let mut mask = ChainMask::zeroed(256);
        b.iter(|| {
            ddt.chain_into(&[prev], &mut mask);
            black_box(mask.len())
        });
    });
    g.finish();
}

/// The preserved pre-refactor DDT (arvi_bench::baseline), benchmarked on
/// the same workloads so the optimized/naive speedup stays visible in
/// every criterion run.
fn bench_ddt_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("ddt_baseline");
    g.bench_function("insert_commit_steady_state", |b| {
        let mut ddt = NaiveDdt::new(DdtConfig {
            slots: 256,
            phys_regs: 320,
        });
        let mut i = 0u16;
        b.iter(|| {
            if ddt.is_full() {
                ddt.commit_oldest();
            }
            let dest = PhysReg(32 + (i % 280));
            let src = PhysReg(32 + ((i + 1) % 280));
            ddt.insert(black_box(Some(dest)), black_box([Some(src), None]));
            i = i.wrapping_add(1);
        });
    });
    g.bench_function("chain_read_deep", |b| {
        let mut ddt = NaiveDdt::new(DdtConfig {
            slots: 256,
            phys_regs: 320,
        });
        let mut prev = PhysReg(32);
        ddt.insert(Some(prev), [None, None]);
        for i in 1..200u16 {
            let d = PhysReg(32 + i);
            ddt.insert(Some(d), [Some(prev), None]);
            prev = d;
        }
        b.iter(|| black_box(ddt.chain(&[prev])).len());
    });
    g.finish();
}

fn bench_rse(c: &mut Criterion) {
    let mut g = c.benchmark_group("rse");
    g.bench_function("leaf_set_extraction", |b| {
        let mut t = Tracker::new(paper_tracker());
        let mut prev = PhysReg(32);
        t.insert(&RenamedOp::load(prev, Some(PhysReg(1))));
        for i in 1..120u16 {
            let d = PhysReg(32 + i);
            if i % 5 == 0 {
                t.insert(&RenamedOp::load(d, Some(prev)));
            } else {
                t.insert(&RenamedOp::alu(d, [Some(prev), Some(PhysReg(2 + i % 8))]));
            }
            prev = d;
        }
        b.iter(|| black_box(t.leaf_set([Some(prev), None])).regs.len());
    });
    g.bench_function("leaf_set_into_extraction", |b| {
        // The scratch-reusing variant the ARVI predictor uses per branch.
        let mut t = Tracker::new(paper_tracker());
        let mut prev = PhysReg(32);
        t.insert(&RenamedOp::load(prev, Some(PhysReg(1))));
        for i in 1..120u16 {
            let d = PhysReg(32 + i);
            if i % 5 == 0 {
                t.insert(&RenamedOp::load(d, Some(prev)));
            } else {
                t.insert(&RenamedOp::alu(d, [Some(prev), Some(PhysReg(2 + i % 8))]));
            }
            prev = d;
        }
        let mut out = LeafSet::default();
        b.iter(|| {
            t.leaf_set_into([Some(prev), None], &mut out);
            black_box(out.regs.len())
        });
    });
    g.finish();
}

fn bench_bvit(c: &mut Criterion) {
    let mut g = c.benchmark_group("bvit");
    let mut bvit = Bvit::new(BvitConfig::default());
    for i in 0..4096usize {
        bvit.update(i, (i % 8) as u8, (i % 32) as u8, i % 3 == 0, true);
    }
    g.bench_function("lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 97) & 0xFFF;
            black_box(bvit.lookup(i, (i % 8) as u8, (i % 32) as u8))
        });
    });
    g.bench_function("update", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 193) & 0xFFF;
            bvit.update(i, (i % 8) as u8, (i % 32) as u8, i.is_multiple_of(2), true);
        });
    });
    g.finish();
}

fn bench_arvi_predict(c: &mut Criterion) {
    let mut g = c.benchmark_group("arvi");
    g.bench_function("full_prediction", |b| {
        let mut arvi = ArviPredictor::new(ArviConfig::paper(paper_tracker()));
        let mut prev = PhysReg(32);
        arvi.writeback(PhysReg(2), 42);
        arvi.rename(
            &RenamedOp::load(prev, Some(PhysReg(1))),
            Some(arvi_isa::Reg::new(8)),
        );
        for i in 1..64u16 {
            let d = PhysReg(32 + i);
            arvi.rename(
                &RenamedOp::alu(d, [Some(prev), Some(PhysReg(2))]),
                Some(arvi_isa::Reg::new((8 + i % 16) as u8)),
            );
            arvi.writeback(d, i as u64 * 3);
            prev = d;
        }
        b.iter(|| black_box(arvi.predict(0x400, [Some(prev), None], &CurrentValues)).index);
    });
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors");
    g.bench_function("gskew_predict_update", |b| {
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        let mut pc = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(52).wrapping_mul(11) & 0xFFFF;
            let d = p.predict(pc);
            p.spec_push(d.taken);
            p.update(pc, &d, !d.taken);
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ddt, bench_ddt_baseline, bench_rse, bench_bvit, bench_arvi_predict, bench_predictors
}
criterion_main!(benches);

//! Pre-optimization implementations preserved as measurement baselines:
//! the allocating [`NaiveDdt`] (pre-PR1), the heap-scheduled
//! [`HeapMachine`] (pre-calendar-queue timing machine, PR 4), and the
//! scalar `Vec<SatCounter>` direction predictors (pre-packed-counter
//! branch path, PR 5): [`ScalarBimodal`], [`ScalarGshare`],
//! [`ScalarLocal`], [`ScalarTwoBcGskew`].
//!
//! This is the allocating implementation the repository shipped before
//! the zero-allocation refactor: `insert` builds two fresh `Vec<u64>` per
//! instruction, every chain read allocates a result mask plus a scratch
//! buffer, and the live-range mask is rebuilt from scratch on every row
//! read. It exists so `perf_report` (and the criterion group in
//! `benches/structures.rs`) can quantify the optimized hot path against
//! the exact prior algorithm on the same host — do not use it for
//! anything but comparison; `arvi_core::Ddt` is the real structure and is
//! bit-compatible with this one.

pub use crate::baseline_machine::{simulate_source_heap, HeapMachine};
pub use crate::baseline_predict::{
    ScalarBimodal, ScalarDirectionPredictor, ScalarGshare, ScalarLocal, ScalarTwoBcGskew,
};

use arvi_core::{DdtConfig, InstSlot, PhysReg};

/// The allocating reference DDT (see module docs).
#[derive(Debug, Clone)]
pub struct NaiveDdt {
    cfg: DdtConfig,
    words: usize,
    rows: Vec<u64>,
    row_seq: Vec<u64>,
    row_written: Vec<bool>,
    valid: Vec<u64>,
    slot_seq: Vec<u64>,
    head_seq: u64,
    tail_seq: u64,
}

impl NaiveDdt {
    /// Creates an empty table.
    pub fn new(cfg: DdtConfig) -> NaiveDdt {
        let words = cfg.slots.div_ceil(64);
        NaiveDdt {
            cfg,
            words,
            rows: vec![0; cfg.phys_regs * words],
            row_seq: vec![0; cfg.phys_regs],
            row_written: vec![false; cfg.phys_regs],
            valid: vec![0; words],
            slot_seq: vec![0; cfg.slots],
            head_seq: 0,
            tail_seq: 0,
        }
    }

    /// In-flight instruction count.
    pub fn occupancy(&self) -> usize {
        (self.head_seq - self.tail_seq) as usize
    }

    /// Whether the window is full.
    pub fn is_full(&self) -> bool {
        self.occupancy() == self.cfg.slots
    }

    /// The sequence number of the occupant of `slot`.
    pub fn slot_seq(&self, slot: InstSlot) -> u64 {
        self.slot_seq[slot.index()]
    }

    #[inline]
    fn slot_of(&self, seq: u64) -> usize {
        (seq % self.cfg.slots as u64) as usize
    }

    fn set_linear(out: &mut [u64], start: usize, end: usize) {
        if start >= end {
            return;
        }
        let (sw, sb) = (start / 64, start % 64);
        let (ew, eb) = ((end - 1) / 64, (end - 1) % 64 + 1);
        if sw == ew {
            out[sw] |= (u64::MAX >> (64 - (eb - sb))) << sb;
        } else {
            out[sw] |= u64::MAX << sb;
            for w in &mut out[sw + 1..ew] {
                *w = u64::MAX;
            }
            out[ew] |= u64::MAX >> (64 - eb);
        }
    }

    fn live_range_mask(&self, from_seq: u64, to_seq: u64, out: &mut [u64]) {
        out.fill(0);
        if to_seq <= from_seq {
            return;
        }
        let len = ((to_seq - from_seq) as usize).min(self.cfg.slots);
        let start = self.slot_of(from_seq);
        let end = start + len;
        if end <= self.cfg.slots {
            NaiveDdt::set_linear(out, start, end);
        } else {
            NaiveDdt::set_linear(out, start, self.cfg.slots);
            NaiveDdt::set_linear(out, 0, end - self.cfg.slots);
        }
    }

    fn read_row_into(&self, r: PhysReg, scratch: &mut [u64], out: &mut [u64]) {
        if !self.row_written[r.index()] {
            return;
        }
        let w = self.row_seq[r.index()];
        self.live_range_mask(self.tail_seq, w + 1, scratch);
        let base = r.index() * self.words;
        let row = &self.rows[base..base + self.words];
        for i in 0..self.words {
            out[i] |= row[i] & self.valid[i] & scratch[i];
        }
    }

    /// Inserts an instruction (allocates two fresh buffers, as the
    /// pre-refactor implementation did).
    pub fn insert(&mut self, dest: Option<PhysReg>, srcs: [Option<PhysReg>; 2]) -> InstSlot {
        assert!(!self.is_full(), "DDT full");
        let seq = self.head_seq;
        let slot = self.slot_of(seq);
        if let Some(d) = dest {
            let mut new_row = vec![0u64; self.words];
            let mut scratch = vec![0u64; self.words];
            for src in srcs.into_iter().flatten() {
                self.read_row_into(src, &mut scratch, &mut new_row);
            }
            new_row[slot / 64] |= 1u64 << (slot % 64);
            let base = d.index() * self.words;
            self.rows[base..base + self.words].copy_from_slice(&new_row);
            self.row_seq[d.index()] = seq;
            self.row_written[d.index()] = true;
        }
        self.valid[slot / 64] |= 1u64 << (slot % 64);
        self.slot_seq[slot] = seq;
        self.head_seq = seq + 1;
        InstSlot(slot as u32)
    }

    /// Reads a chain (allocates the result and a scratch buffer).
    pub fn chain(&self, regs: &[PhysReg]) -> Vec<u64> {
        let mut out = vec![0u64; self.words];
        let mut scratch = vec![0u64; self.words];
        for &r in regs {
            self.read_row_into(r, &mut scratch, &mut out);
        }
        out
    }

    /// Commits the oldest in-flight instruction.
    pub fn commit_oldest(&mut self) -> InstSlot {
        assert!(self.head_seq != self.tail_seq, "DDT empty");
        let slot = self.slot_of(self.tail_seq);
        self.valid[slot / 64] &= !(1u64 << (slot % 64));
        self.tail_seq += 1;
        InstSlot(slot as u32)
    }

    /// Squashes instructions younger than `new_head_seq`.
    pub fn rollback_to(&mut self, new_head_seq: u64) {
        assert!(new_head_seq >= self.tail_seq && new_head_seq <= self.head_seq);
        for seq in new_head_seq..self.head_seq {
            let slot = self.slot_of(seq);
            self.valid[slot / 64] &= !(1u64 << (slot % 64));
        }
        self.head_seq = new_head_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_core::Ddt;

    /// The baseline must stay bit-compatible with the optimized DDT —
    /// otherwise the speedup comparison is meaningless.
    #[test]
    fn baseline_matches_optimized_ddt() {
        let cfg = DdtConfig {
            slots: 12,
            phys_regs: 24,
        };
        let mut naive = NaiveDdt::new(cfg);
        let mut fast = Ddt::new(cfg);
        let mut lfsr = 0xACE1u32;
        let mut step = |m: u32| {
            lfsr = lfsr.wrapping_mul(1103515245).wrapping_add(12345);
            (lfsr >> 16) % m
        };
        for i in 0..400 {
            if naive.is_full() {
                naive.commit_oldest();
                fast.commit_oldest();
            }
            let dest = PhysReg(step(24) as u16);
            let srcs = [
                (step(4) != 0).then(|| PhysReg(step(24) as u16)),
                (step(4) != 0).then(|| PhysReg(step(24) as u16)),
            ];
            naive.insert(Some(dest), srcs);
            fast.insert(Some(dest), srcs);
            if step(5) == 0 && naive.occupancy() > 1 {
                naive.commit_oldest();
                fast.commit_oldest();
            }
            for r in 0..24u16 {
                assert_eq!(
                    naive.chain(&[PhysReg(r)]),
                    fast.chain(&[PhysReg(r)]).words().to_vec(),
                    "step {i}, register p{r}"
                );
            }
        }
    }
}

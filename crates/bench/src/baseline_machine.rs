//! The pre-calendar-queue timing machine, preserved as a measurement
//! baseline.
//!
//! This is the event core the simulator shipped before the timing-wheel
//! rewrite: both scheduler queues are `BinaryHeap<Reverse<(u64, u64)>>`
//! (re-sorting every schedule and pop), store/load memory ordering lives
//! in `BTreeSet`s (allocating a tree node per in-flight memory
//! instruction), and every ROB entry carries its `BranchDecision`
//! inline. It exists so `perf_report` and
//! `tests/scheduler_equivalence.rs` can quantify — and prove
//! cycle-identical — the wheel-based `arvi_sim::Machine` against the
//! exact prior algorithm on the same host, mirroring how
//! [`NaiveDdt`](crate::baseline::NaiveDdt) preserves the pre-PR1 DDT.
//! Do not use it for anything but comparison. (The optional per-PC
//! profiling instrumentation of the original is omitted; it was
//! diagnostics, not timing behavior.)

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use arvi_core::{CurrentValues, PhysReg, RenamedOp};
use arvi_isa::{DynInst, InstKind};
use arvi_sim::{
    intern_name, BranchDecision, BranchUnit, Hierarchy, InstSource, LoadBackOracle, MachineStats,
    PerfectOracle, PredictorConfig, ReadyOracle, RenameState, SimParams, SimResult,
};

#[derive(Debug)]
struct Entry {
    d: DynInst,
    dispatch_ready: u64,
    dest_phys: Option<PhysReg>,
    prev_phys: Option<PhysReg>,
    deps: u8,
    issued: bool,
    done: bool,
    branch: Option<BranchDecision>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchState {
    Running,
    /// Waiting out an instruction-cache miss or a flush bubble.
    Stalled {
        until: u64,
    },
    /// Blocked behind a branch whose followed direction is (or may be)
    /// wrong; resumes at the override time (if the override corrects the
    /// direction) or at branch resolution, whichever first.
    BranchBlocked {
        seq: u64,
        resume_override: Option<u64>,
    },
}

#[inline]
fn entry_mut(rob: &mut VecDeque<Entry>, tail_seq: u64, seq: u64) -> &mut Entry {
    &mut rob[(seq - tail_seq) as usize]
}

/// The heap-scheduled machine (see module docs). API mirrors
/// [`arvi_sim::Machine`].
pub struct HeapMachine<S: InstSource> {
    params: SimParams,
    config: PredictorConfig,
    source: S,
    hier: Hierarchy,
    bu: BranchUnit,
    rename: RenameState,
    rob: VecDeque<Entry>,
    tail_seq: u64,
    cycle: u64,
    /// Per-physical-register consumer wait lists.
    waiters: Vec<Vec<u64>>,
    /// (earliest issue cycle, seq) of operand-ready instructions.
    pending: BinaryHeap<Reverse<(u64, u64)>>,
    /// (completion cycle, seq) writeback events.
    events: BinaryHeap<Reverse<(u64, u64)>>,
    unissued_stores: BTreeSet<u64>,
    mem_blocked_loads: BTreeSet<u64>,
    mem_in_flight: usize,
    fetch_state: FetchState,
    lookahead: Option<DynInst>,
    current_fetch_line: u64,
    trace_done: bool,
    /// Load-back availability window (dynamic instructions).
    lb_window: u64,
    stats: MachineStats,
    /// Reusable per-cycle buffers.
    eligible_scratch: Vec<u64>,
    leftover_scratch: Vec<u64>,
    woken_scratch: Vec<u64>,
    ready_loads_scratch: Vec<u64>,
}

impl<S: InstSource> HeapMachine<S> {
    /// Builds a machine consuming `source`'s committed stream under
    /// `config`.
    pub fn new(source: S, params: SimParams, config: PredictorConfig) -> HeapMachine<S> {
        let lb_window =
            params.fetch_width as u64 * (params.frontend_latency + params.l1_latency + 1);
        HeapMachine {
            hier: Hierarchy::new(&params),
            bu: BranchUnit::new(&params, config),
            rename: RenameState::new(params.phys_regs),
            rob: VecDeque::with_capacity(params.rob_entries),
            tail_seq: 0,
            cycle: 0,
            waiters: vec![Vec::new(); params.phys_regs],
            pending: BinaryHeap::new(),
            events: BinaryHeap::new(),
            unissued_stores: BTreeSet::new(),
            mem_blocked_loads: BTreeSet::new(),
            mem_in_flight: 0,
            fetch_state: FetchState::Running,
            lookahead: None,
            current_fetch_line: u64::MAX,
            trace_done: false,
            lb_window,
            stats: MachineStats::default(),
            eligible_scratch: Vec::new(),
            leftover_scratch: Vec::new(),
            woken_scratch: Vec::new(),
            ready_loads_scratch: Vec::new(),
            source,
            params,
            config,
        }
    }

    /// Current statistics (snapshot for window differencing).
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Runs until `target` total instructions have committed (or the
    /// trace ends). Returns the number committed.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (an internal invariant violation).
    pub fn run_until_committed(&mut self, target: u64) -> u64 {
        while self.stats.committed < target {
            if self.trace_done && self.rob.is_empty() {
                break;
            }
            self.step_cycle();
        }
        self.stats.committed
    }

    fn step_cycle(&mut self) {
        let mut activity = false;
        activity |= self.process_events();
        activity |= self.commit();
        self.check_override_resume();
        activity |= self.issue();
        activity |= self.fetch();
        self.stats.cycles += 1;

        if activity || (self.trace_done && self.rob.is_empty()) {
            self.cycle += 1;
            return;
        }
        // Quiet cycle: jump to the next interesting time.
        let mut next = u64::MAX;
        if let Some(Reverse((t, _))) = self.events.peek() {
            next = next.min(*t);
        }
        if let Some(Reverse((t, _))) = self.pending.peek() {
            next = next.min(*t);
        }
        match self.fetch_state {
            FetchState::Stalled { until } => next = next.min(until),
            FetchState::BranchBlocked {
                resume_override: Some(t),
                ..
            } => next = next.min(t),
            _ => {}
        }
        assert!(
            next != u64::MAX,
            "machine deadlocked at cycle {} (rob {}, pending {}, committed {})",
            self.cycle,
            self.rob.len(),
            self.pending.len(),
            self.stats.committed
        );
        let jump = next.max(self.cycle + 1);
        self.stats.cycles += jump - self.cycle - 1;
        self.cycle = jump;
    }

    /// Processes writeback/resolution events due this cycle.
    fn process_events(&mut self) -> bool {
        let mut any = false;
        while let Some(&Reverse((t, seq))) = self.events.peek() {
            if t > self.cycle {
                break;
            }
            self.events.pop();
            any = true;
            let (dest, value, is_branch) = {
                let e = entry_mut(&mut self.rob, self.tail_seq, seq);
                e.done = true;
                (e.dest_phys, e.d.result, e.d.is_branch())
            };
            if let Some(p) = dest {
                self.rename.set_ready(p, t);
                self.bu.writeback(p, value);
                // Drain the wait list into the reused scratch (keeping the
                // wait list's capacity) rather than mem::take-ing the Vec,
                // which would drop its buffer and reallocate on next use.
                let mut woken = std::mem::take(&mut self.woken_scratch);
                woken.clear();
                woken.extend_from_slice(&self.waiters[p.index()]);
                self.waiters[p.index()].clear();
                for &w in &woken {
                    let e = entry_mut(&mut self.rob, self.tail_seq, w);
                    e.deps -= 1;
                    if e.deps == 0 {
                        self.make_issue_candidate(w);
                    }
                }
                self.woken_scratch = woken;
            }
            if is_branch {
                // Branch resolution: release a blocked fetch (flush +
                // redirect costs one bubble before refetch).
                if let FetchState::BranchBlocked { seq: blocked, .. } = self.fetch_state {
                    if blocked == seq {
                        self.fetch_state = FetchState::Stalled {
                            until: self.cycle + 1,
                        };
                    }
                }
            }
        }
        any
    }

    /// Moves an operand-ready instruction into the scheduler, honoring
    /// load-after-store ordering.
    fn make_issue_candidate(&mut self, seq: u64) {
        let e = entry_mut(&mut self.rob, self.tail_seq, seq);
        let earliest = e.dispatch_ready.max(self.cycle);
        if e.d.is_load() {
            if let Some(&oldest_store) = self.unissued_stores.iter().next() {
                if oldest_store < seq {
                    // Older store with unknown address: wait.
                    self.mem_blocked_loads.insert(seq);
                    return;
                }
            }
        }
        self.pending.push(Reverse((earliest, seq)));
    }

    /// In-order commit of completed instructions.
    fn commit(&mut self) -> bool {
        let mut n = 0;
        while n < self.params.commit_width {
            let Some(front) = self.rob.front() else { break };
            if !front.done {
                break;
            }
            let e = self.rob.pop_front().expect("checked front");
            self.tail_seq += 1;
            if let Some(prev) = e.prev_phys {
                self.rename.release(prev);
            }
            if self.config.is_arvi() {
                self.bu.commit_inst();
            }
            if e.d.is_load() || e.d.is_store() {
                self.mem_in_flight -= 1;
            }
            if let Some(decision) = &e.branch {
                let actual = e.d.branch.expect("decision implies branch").taken;
                self.bu.commit_branch(e.d.byte_pc(), decision, actual);
                self.record_branch_stats(decision, actual);
            }
            self.stats.committed += 1;
            n += 1;
        }
        n > 0
    }

    fn record_branch_stats(&mut self, decision: &BranchDecision, actual: bool) {
        let correct = decision.final_taken == actual;
        self.stats.cond_branches.record(correct);
        self.stats.l1_only.record(decision.l1.taken == actual);
        if let Some(ap) = &decision.arvi {
            match ap.class {
                arvi_core::BranchClass::Calculated => self.stats.calc_class.record(correct),
                arvi_core::BranchClass::Load => self.stats.load_class.record(correct),
            }
            if ap.direction.is_some() {
                self.stats.bvit_hits += 1;
            }
        }
        if decision.override_fired {
            self.stats.overrides += 1;
            if correct && decision.l1.taken != actual {
                self.stats.overrides_correcting += 1;
            }
        }
    }

    fn check_override_resume(&mut self) {
        if let FetchState::BranchBlocked {
            resume_override: Some(t),
            ..
        } = self.fetch_state
        {
            if t <= self.cycle {
                self.fetch_state = FetchState::Running;
            }
        }
        if let FetchState::Stalled { until } = self.fetch_state {
            if until <= self.cycle {
                self.fetch_state = FetchState::Running;
            }
        }
    }

    /// Dataflow issue: oldest-first among ready candidates, bounded by
    /// issue width and functional-unit pools.
    fn issue(&mut self) -> bool {
        let mut eligible = std::mem::take(&mut self.eligible_scratch);
        eligible.clear();
        while let Some(&Reverse((t, seq))) = self.pending.peek() {
            if t > self.cycle {
                break;
            }
            self.pending.pop();
            eligible.push(seq);
        }
        if eligible.is_empty() {
            self.eligible_scratch = eligible;
            return false;
        }
        eligible.sort_unstable();

        let mut alus = self.params.int_alus;
        let mut muldiv = self.params.int_muldiv;
        let mut ports = self.params.mem_ports;
        let mut issued = 0usize;
        let mut leftovers = std::mem::take(&mut self.leftover_scratch);
        leftovers.clear();

        for &seq in &eligible {
            if issued == self.params.issue_width {
                leftovers.push(seq);
                continue;
            }
            let kind = entry_mut(&mut self.rob, self.tail_seq, seq).d.kind;
            let fu = match kind {
                InstKind::IntMul | InstKind::IntDiv => &mut muldiv,
                InstKind::Load | InstKind::Store => &mut ports,
                _ => &mut alus,
            };
            if *fu == 0 {
                leftovers.push(seq);
                continue;
            }
            *fu -= 1;
            issued += 1;
            self.issue_one(seq);
        }
        for &seq in &leftovers {
            self.pending.push(Reverse((self.cycle + 1, seq)));
        }
        self.eligible_scratch = eligible;
        self.leftover_scratch = leftovers;
        issued > 0
    }

    fn issue_one(&mut self, seq: u64) {
        let (kind, addr) = {
            let e = entry_mut(&mut self.rob, self.tail_seq, seq);
            debug_assert!(!e.issued, "double issue of {seq}");
            e.issued = true;
            (e.d.kind, e.d.mem_addr)
        };
        let latency = match kind {
            InstKind::IntMul => self.params.mul_latency,
            InstKind::IntDiv => self.params.div_latency,
            InstKind::Load => 1 + self.hier.access_data(addr),
            InstKind::Store => {
                self.hier.access_data(addr);
                self.unissued_stores.remove(&seq);
                self.unblock_loads();
                1
            }
            _ => 1,
        };
        self.events.push(Reverse((self.cycle + latency, seq)));
    }

    /// Re-examines loads blocked on store ordering after a store issues.
    fn unblock_loads(&mut self) {
        let bound = self.unissued_stores.iter().next().copied();
        let mut ready = std::mem::take(&mut self.ready_loads_scratch);
        ready.clear();
        match bound {
            Some(b) => ready.extend(self.mem_blocked_loads.range(..b).copied()),
            None => ready.extend(self.mem_blocked_loads.iter().copied()),
        }
        for &seq in &ready {
            self.mem_blocked_loads.remove(&seq);
            let e = entry_mut(&mut self.rob, self.tail_seq, seq);
            let earliest = e.dispatch_ready.max(self.cycle + 1);
            self.pending.push(Reverse((earliest, seq)));
        }
        self.ready_loads_scratch = ready;
    }

    /// Fetches, renames and dispatches up to `fetch_width` instructions.
    fn fetch(&mut self) -> bool {
        if self.fetch_state != FetchState::Running || self.trace_done {
            return false;
        }
        let mut fetched = 0usize;
        while fetched < self.params.fetch_width {
            if self.rob.len() >= self.params.rob_entries {
                break;
            }
            // Pull the next trace record.
            let d = match self.lookahead.take().or_else(|| self.source.next_inst()) {
                Some(d) => d,
                None => {
                    self.trace_done = true;
                    break;
                }
            };
            // LSQ occupancy gate.
            if (d.is_load() || d.is_store()) && self.mem_in_flight >= self.params.lsq_entries {
                self.lookahead = Some(d);
                break;
            }
            // Instruction-cache access, once per new line.
            let line = d.byte_pc() / self.params.l1i.line_bytes as u64;
            if line != self.current_fetch_line {
                let lat = self.hier.fetch_inst(d.byte_pc());
                self.current_fetch_line = line;
                if lat > self.params.l1_latency {
                    // Miss: hit latency is hidden in the front end, the
                    // excess stalls fetch.
                    self.fetch_state = FetchState::Stalled {
                        until: self.cycle + (lat - self.params.l1_latency),
                    };
                    self.lookahead = Some(d);
                    break;
                }
            }
            let taken_control = self.fetch_one(d);
            fetched += 1;
            if taken_control || self.fetch_state != FetchState::Running {
                break;
            }
        }
        fetched > 0
    }

    /// Renames and dispatches one instruction; returns whether it was a
    /// taken control transfer (ending the fetch group).
    fn fetch_one(&mut self, d: DynInst) -> bool {
        let seq = d.seq;
        debug_assert_eq!(seq, self.tail_seq + self.rob.len() as u64);

        // Source operands through the rename map.
        let src_phys = [
            d.srcs[0].map(|r| self.rename.lookup(r)),
            d.srcs[1].map(|r| self.rename.lookup(r)),
        ];

        // Conditional branch: predict BEFORE inserting the branch into the
        // DDT (the chain read precedes the branch's own insertion).
        let mut decision = None;
        if d.is_branch() {
            let actual = d.branch.expect("is_branch").taken;
            let pc = d.byte_pc();
            let rename = &self.rename;
            let now = self.cycle;
            // Same monomorphized oracles as the wheel machine: the two
            // machines share the BranchUnit, so the predict/train data
            // path stays identical on both sides of the comparison.
            let dec = match self.config {
                PredictorConfig::TwoLevelGskew => {
                    self.bu.decide(pc, src_phys, &CurrentValues, actual)
                }
                PredictorConfig::ArviCurrent => {
                    self.bu
                        .decide(pc, src_phys, &ReadyOracle { rename, now }, actual)
                }
                PredictorConfig::ArviLoadBack => {
                    let oracle = LoadBackOracle {
                        rename,
                        now,
                        fetch_seq: seq,
                        lb_window: self.lb_window,
                    };
                    self.bu.decide(pc, src_phys, &oracle, actual)
                }
                PredictorConfig::ArviPerfect => {
                    self.bu
                        .decide(pc, src_phys, &PerfectOracle { rename }, actual)
                }
            };
            // Fetch disruption bookkeeping.
            if dec.final_taken != actual {
                self.stats.full_mispredicts += 1;
                self.fetch_state = FetchState::BranchBlocked {
                    seq,
                    resume_override: None,
                };
            } else if dec.l1.taken != actual {
                // The L2 override will re-steer fetch after its latency.
                self.stats.override_restarts += 1;
                self.fetch_state = FetchState::BranchBlocked {
                    seq,
                    resume_override: Some(self.cycle + self.bu.l2_latency),
                };
            }
            decision = Some(dec);
        }

        // Rename the destination.
        let (dest_phys, prev_phys) = match d.dest {
            Some(logical) => {
                let (new, prev) =
                    self.rename
                        .allocate(logical, seq, d.result, d.is_load(), d.hoist);
                (Some(new), Some(prev))
            }
            None => (None, None),
        };

        // Dependence-tracker insertion (every instruction, ARVI configs).
        if self.config.is_arvi() {
            let op = RenamedOp {
                dest: dest_phys,
                srcs: src_phys,
                is_load: d.is_load(),
            };
            self.bu.rename_op(&op, d.dest);
        }

        // Dataflow bookkeeping.
        let mut deps = 0u8;
        for p in src_phys.into_iter().flatten() {
            if !self.rename.is_ready(p, self.cycle) {
                self.waiters[p.index()].push(seq);
                deps += 1;
            }
        }
        let is_mem = d.is_load() || d.is_store();
        if is_mem {
            self.mem_in_flight += 1;
        }
        if d.is_store() {
            self.unissued_stores.insert(seq);
        }
        let taken_control = d.branch.map(|b| b.taken).unwrap_or(false);
        let entry = Entry {
            dispatch_ready: self.cycle + self.params.frontend_latency,
            dest_phys,
            prev_phys,
            deps,
            issued: false,
            done: false,
            branch: decision,
            d,
        };
        self.rob.push_back(entry);
        if deps == 0 {
            self.make_issue_candidate(seq);
        }
        taken_control
    }
}

impl<S: InstSource> std::fmt::Debug for HeapMachine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapMachine")
            .field("config", &self.config)
            .field("cycle", &self.cycle)
            .field("committed", &self.stats.committed)
            .field("rob", &self.rob.len())
            .finish()
    }
}

/// [`arvi_sim::simulate_source`] over the preserved heap machine:
/// warmup + measurement window, producing a [`SimResult`] directly
/// comparable with the wheel machine's.
///
/// # Panics
///
/// Panics if the stream ends before the warmup completes.
pub fn simulate_source_heap<S: InstSource>(
    name: &str,
    source: S,
    params: SimParams,
    config: PredictorConfig,
    warmup: u64,
    measure: u64,
) -> SimResult {
    let name = intern_name(name);
    let depth_stages = params.depth.stages();
    let mut machine = HeapMachine::new(source, params, config);
    let committed = machine.run_until_committed(warmup);
    assert!(
        committed >= warmup,
        "workload {name} halted during warmup ({committed}/{warmup})"
    );
    let start = machine.stats().clone();
    machine.run_until_committed(warmup + measure);
    let window = machine.stats().since(&start);
    SimResult {
        name,
        config,
        depth_stages,
        window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::{regs::*, AluOp, Cond, Emulator, ProgramBuilder};
    use arvi_sim::Depth;

    #[test]
    fn heap_machine_runs_a_loop() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 0);
        b.li(T1, 500);
        let head = b.here();
        b.alu_imm(AluOp::Add, T0, T0, 1);
        b.branch(Cond::Ne, T0, T1, head);
        b.halt();
        let mut m = HeapMachine::new(
            Emulator::new(b.build()),
            SimParams::small_test(),
            PredictorConfig::TwoLevelGskew,
        );
        m.run_until_committed(100_000);
        assert_eq!(m.stats().cond_branches.total(), 500);
        assert!(m.stats().cycles > 0);
    }

    #[test]
    fn simulate_source_heap_measures_a_window() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 0);
        let head = b.here();
        b.alu_imm(AluOp::Add, T0, T0, 1);
        b.alu_imm(AluOp::And, T1, T0, 7);
        b.branch(Cond::Ne, T1, ZERO, head);
        b.jump(head);
        let r = simulate_source_heap(
            "loop",
            Emulator::new(b.build()),
            SimParams::for_depth(Depth::D20),
            PredictorConfig::ArviCurrent,
            2_000,
            8_000,
        );
        assert!((7_994..=8_006).contains(&r.window.committed));
        assert!(r.ipc() > 0.0);
    }
}

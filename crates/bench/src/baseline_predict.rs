//! The pre-PR5 scalar direction predictors, preserved as equivalence and
//! measurement baselines.
//!
//! These are the predictor implementations the repository shipped before
//! the packed-counter refactor: every table is a `Vec<SatCounter>` (two
//! bytes of host memory per 2-bit counter, one allocation per bank) and
//! training *re-derives* its table indices from the PC and the history
//! checkpoint — the second round of hashing the index-carrying
//! [`Prediction`](arvi_predict::Prediction) now eliminates.
//!
//! They exist so that
//!
//! * `tests/predictor_equivalence.rs` can prove the packed + carried-
//!   index path produces bit-identical prediction/train streams over the
//!   full benchmark grid and the curated scenarios, and
//! * `perf_report` / the `branch_path` criterion group can quantify the
//!   packed layout against the exact prior algorithm on the same host —
//!   mirroring how [`NaiveDdt`](crate::baseline::NaiveDdt) and
//!   [`HeapMachine`](crate::baseline::HeapMachine) preserve earlier hot
//!   paths.
//!
//! Do not use them for anything but comparison.

#![allow(deprecated)] // the scalar SatCounter tables are the point

use arvi_predict::{GlobalHistory, GskewConfig, SatCounter};

/// The pre-PR5 predictor protocol: `predict` returns the direction plus
/// a history checkpoint, and `update` re-hashes PC and checkpoint into
/// table indices at training time.
pub trait ScalarDirectionPredictor {
    /// Predicts the branch at byte address `pc`: `(taken, checkpoint)`.
    fn predict(&mut self, pc: u64) -> (bool, u64);
    /// Shifts the global history with the followed direction.
    fn spec_push(&mut self, taken: bool);
    /// Trains with the actual outcome, re-deriving indices from
    /// `checkpoint` (the preserved data path under measurement).
    fn update(&mut self, pc: u64, checkpoint: u64, taken: bool);
    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Scalar bimodal: per-PC `Vec<SatCounter>` table.
#[derive(Debug, Clone)]
pub struct ScalarBimodal {
    table: Vec<SatCounter>,
    index_mask: u64,
}

impl ScalarBimodal {
    /// Creates a predictor with `2^index_bits` counters.
    pub fn new(index_bits: u32) -> ScalarBimodal {
        let size = 1usize << index_bits;
        ScalarBimodal {
            table: vec![SatCounter::two_bit(); size],
            index_mask: (size - 1) as u64,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.index_mask) as usize
    }
}

impl ScalarDirectionPredictor for ScalarBimodal {
    fn predict(&mut self, pc: u64) -> (bool, u64) {
        (self.table[self.index(pc)].is_set(), 0)
    }

    fn spec_push(&mut self, _taken: bool) {}

    fn update(&mut self, pc: u64, _checkpoint: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
    }

    fn name(&self) -> &'static str {
        "scalar-bimodal"
    }
}

/// Scalar gshare: `PC XOR history` indexed `Vec<SatCounter>`.
#[derive(Debug, Clone)]
pub struct ScalarGshare {
    table: Vec<SatCounter>,
    index_mask: u64,
    history: GlobalHistory,
    history_len: u32,
}

impl ScalarGshare {
    /// Creates a predictor with `2^index_bits` counters and
    /// `history_len` bits of global history.
    pub fn new(index_bits: u32, history_len: u32) -> ScalarGshare {
        let size = 1usize << index_bits;
        ScalarGshare {
            table: vec![SatCounter::two_bit(); size],
            index_mask: (size - 1) as u64,
            history: GlobalHistory::new(),
            history_len,
        }
    }

    #[inline]
    fn index(&self, pc: u64, history: u64) -> usize {
        let h = if self.history_len >= 64 {
            history
        } else if self.history_len == 0 {
            0
        } else {
            history & ((1u64 << self.history_len) - 1)
        };
        (((pc >> 2) ^ h) & self.index_mask) as usize
    }
}

impl ScalarDirectionPredictor for ScalarGshare {
    fn predict(&mut self, pc: u64) -> (bool, u64) {
        let checkpoint = self.history.bits();
        (self.table[self.index(pc, checkpoint)].is_set(), checkpoint)
    }

    fn spec_push(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn update(&mut self, pc: u64, checkpoint: u64, taken: bool) {
        let idx = self.index(pc, checkpoint);
        self.table[idx].update(taken);
    }

    fn name(&self) -> &'static str {
        "scalar-gshare"
    }
}

/// Scalar two-level local predictor (PAg).
#[derive(Debug, Clone)]
pub struct ScalarLocal {
    histories: Vec<u16>,
    counters: Vec<SatCounter>,
    history_len: u32,
    hist_mask: u64,
    ctr_mask: u64,
}

impl ScalarLocal {
    /// Creates a predictor; parameters as `arvi_predict::Local::new`.
    pub fn new(hist_index_bits: u32, history_len: u32, counter_index_bits: u32) -> ScalarLocal {
        ScalarLocal {
            histories: vec![0; 1 << hist_index_bits],
            counters: vec![SatCounter::two_bit(); 1 << counter_index_bits],
            history_len,
            hist_mask: ((1u64 << hist_index_bits) - 1),
            ctr_mask: ((1u64 << counter_index_bits) - 1),
        }
    }

    #[inline]
    fn hist_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.hist_mask) as usize
    }

    #[inline]
    fn ctr_index(&self, pc: u64, local: u16) -> usize {
        let pc_part = (pc >> 2) << self.history_len;
        (((local as u64) | pc_part) & self.ctr_mask) as usize
    }
}

impl ScalarDirectionPredictor for ScalarLocal {
    fn predict(&mut self, pc: u64) -> (bool, u64) {
        let local = self.histories[self.hist_index(pc)];
        (
            self.counters[self.ctr_index(pc, local)].is_set(),
            local as u64,
        )
    }

    fn spec_push(&mut self, _taken: bool) {}

    fn update(&mut self, pc: u64, checkpoint: u64, taken: bool) {
        let idx = self.ctr_index(pc, checkpoint as u16);
        self.counters[idx].update(taken);
        let hist_idx = self.hist_index(pc);
        let h = &mut self.histories[hist_idx];
        *h = (((*h as u32) << 1) | taken as u32) as u16 & ((1u16 << self.history_len) - 1);
    }

    fn name(&self) -> &'static str {
        "scalar-local"
    }
}

/// Scalar 2Bc-gskew: four separate `Vec<SatCounter>` banks, indices
/// re-hashed at update from the checkpoint. The skewing hash is shared
/// with the packed implementation by construction (copied verbatim), so
/// any divergence is a storage/semantics bug, not an indexing one.
#[derive(Debug, Clone)]
pub struct ScalarTwoBcGskew {
    bim: Vec<SatCounter>,
    g0: Vec<SatCounter>,
    g1: Vec<SatCounter>,
    meta: Vec<SatCounter>,
    cfg: GskewConfig,
    mask: u64,
    history: GlobalHistory,
}

/// The pre-PR5 skewing hash (identical to the packed predictor's).
#[inline]
fn skew_hash(pc: u64, hist: u64, hist_len: u32, bank: u32, mask: u64) -> usize {
    let h = if hist_len == 0 {
        0
    } else if hist_len >= 64 {
        hist
    } else {
        hist & ((1u64 << hist_len) - 1)
    };
    let a = pc >> 2;
    let mult: u64 = match bank {
        0 => 0x9E37_79B9_7F4A_7C15,
        1 => 0xC2B2_AE3D_27D4_EB4F,
        _ => 0x1656_67B1_9E37_79F9,
    };
    let mixed = (a ^ h.rotate_left(bank * 7 + 1)).wrapping_mul(mult);
    ((mixed >> 17) & mask) as usize
}

impl ScalarTwoBcGskew {
    /// Creates a predictor with the given configuration.
    pub fn new(cfg: GskewConfig) -> ScalarTwoBcGskew {
        let size = 1usize << cfg.index_bits;
        ScalarTwoBcGskew {
            bim: vec![SatCounter::two_bit(); size],
            g0: vec![SatCounter::two_bit(); size],
            g1: vec![SatCounter::two_bit(); size],
            meta: vec![SatCounter::two_bit(); size],
            cfg,
            mask: (size - 1) as u64,
            history: GlobalHistory::new(),
        }
    }

    #[inline]
    fn indices(&self, pc: u64, hist: u64) -> [usize; 4] {
        [
            ((pc >> 2) & self.mask) as usize,
            skew_hash(pc, hist, self.cfg.g0_history, 1, self.mask),
            skew_hash(pc, hist, self.cfg.g1_history, 2, self.mask),
            skew_hash(pc, hist, self.cfg.meta_history, 0, self.mask),
        ]
    }
}

impl ScalarDirectionPredictor for ScalarTwoBcGskew {
    fn predict(&mut self, pc: u64) -> (bool, u64) {
        let checkpoint = self.history.bits();
        let [bi, g0i, g1i, mi] = self.indices(pc, checkpoint);
        let bim = self.bim[bi].is_set();
        let g0 = self.g0[g0i].is_set();
        let g1 = self.g1[g1i].is_set();
        let majority = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        let use_majority = self.meta[mi].is_set();
        (if use_majority { majority } else { bim }, checkpoint)
    }

    fn spec_push(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn update(&mut self, pc: u64, checkpoint: u64, taken: bool) {
        let [bi, g0i, g1i, mi] = self.indices(pc, checkpoint);
        let bim = self.bim[bi].is_set();
        let g0 = self.g0[g0i].is_set();
        let g1 = self.g1[g1i].is_set();
        let majority = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        let use_majority = self.meta[mi].is_set();
        let pred = if use_majority { majority } else { bim };

        if bim != majority {
            self.meta[mi].update(majority == taken);
        }

        if pred == taken {
            if use_majority {
                if bim == taken {
                    self.bim[bi].strengthen();
                }
                if g0 == taken {
                    self.g0[g0i].strengthen();
                }
                if g1 == taken {
                    self.g1[g1i].strengthen();
                }
            } else {
                self.bim[bi].strengthen();
            }
        } else {
            self.bim[bi].update(taken);
            self.g0[g0i].update(taken);
            self.g1[g1i].update(taken);
        }
    }

    fn name(&self) -> &'static str {
        "scalar-2Bc-gskew"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick self-check against the packed predictor on a synthetic
    /// stream (the exhaustive cross-workload harness lives in
    /// `tests/predictor_equivalence.rs`).
    #[test]
    fn scalar_gskew_matches_packed_on_a_noise_stream() {
        use arvi_predict::{DirectionPredictor, TwoBcGskew};
        let mut scalar = ScalarTwoBcGskew::new(GskewConfig::level1());
        let mut packed = TwoBcGskew::new(GskewConfig::level1());
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pc = ((x >> 20) & 0xFFFF) << 2;
            let taken = (x >> 40) & 0b11 != 0;
            let (st, sc) = ScalarDirectionPredictor::predict(&mut scalar, pc);
            let pp = packed.predict(pc);
            assert_eq!((st, sc), (pp.taken, pp.checkpoint));
            ScalarDirectionPredictor::spec_push(&mut scalar, taken);
            packed.spec_push(taken);
            ScalarDirectionPredictor::update(&mut scalar, pc, sc, taken);
            packed.update(pc, &pp, taken);
        }
    }
}

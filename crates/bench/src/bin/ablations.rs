//! Ablation studies of the design decisions DESIGN.md catalogues
//! (Section "D" decisions): what each mechanism contributes to the
//! headline result. Runs the full suite on the 20-stage machine under
//! ARVI current value for each variant.
//!
//! Usage: `ablations [--quick]`

use arvi_bench::Spec;
use arvi_sim::{simulate, ArviTuning, Depth, PredictorConfig, SimParams};
use arvi_stats::{amean, Table};
use arvi_workloads::Benchmark;

fn mean_speedup_and_accuracy(tuning: ArviTuning, spec: Spec) -> (f64, f64) {
    let mut speedups = Vec::new();
    let mut accs = Vec::new();
    for bench in Benchmark::all() {
        let mut params = SimParams::for_depth(Depth::D20);
        params.arvi_tuning = tuning;
        let base = simulate(
            bench.program(spec.seed),
            SimParams::for_depth(Depth::D20),
            PredictorConfig::TwoLevelGskew,
            spec.warmup,
            spec.measure,
        );
        let arvi = simulate(
            bench.program(spec.seed),
            params,
            PredictorConfig::ArviCurrent,
            spec.warmup,
            spec.measure,
        );
        speedups.push(arvi.ipc() / base.ipc());
        accs.push(arvi.accuracy());
    }
    (amean(&speedups), amean(&accs))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick {
        Spec::quick()
    } else {
        Spec {
            warmup: 50_000,
            measure: 250_000,
            seed: 42,
        }
    };

    let variants: Vec<(&str, ArviTuning)> = vec![
        ("paper configuration", ArviTuning::default()),
        (
            "D2: stale values in index",
            ArviTuning {
                include_stale_values: true,
                ..Default::default()
            },
        ),
        (
            "D11: no override gating",
            ArviTuning {
                gate_overrides: false,
                ..Default::default()
            },
        ),
        (
            "BVIT 4x smaller (512 sets)",
            ArviTuning {
                bvit_sets_log2: 9,
                ..Default::default()
            },
        ),
        (
            "BVIT 4x larger (8192 sets)",
            ArviTuning {
                bvit_sets_log2: 13,
                ..Default::default()
            },
        ),
    ];

    let mut table = Table::new(vec![
        "variant".into(),
        "mean speedup".into(),
        "mean accuracy".into(),
    ]);
    for (name, tuning) in variants {
        eprintln!("ablation: {name}");
        let (speedup, acc) = mean_speedup_and_accuracy(tuning, spec);
        table.row(vec![
            name.into(),
            format!("{speedup:.3}"),
            format!("{acc:.4}"),
        ]);
    }
    println!(
        "== ARVI design ablations (20-stage, current value, suite means) ==\n{}",
        table.to_text()
    );
    println!(
        "D2 shows why the ready bit gates values out of the index; D11 shows\n\
         why a long-latency override must be quality-gated; the BVIT rows\n\
         bound the capacity sensitivity of the value signatures."
    );
}

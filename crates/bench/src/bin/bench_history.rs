//! Bench-trajectory analytics: tracks every guardrail metric across the
//! checked-in `BENCH_PR<N>.json` reports and flags metrics whose latest
//! change moved outside their noise band.
//!
//! Complements `perf_guard` (which gates one report against the static
//! baseline): the trend view catches slow drift and tells "this PR
//! regressed it" apart from host jitter, using a band derived from the
//! metric's own history. Non-gating by itself — feed the JSON to
//! `perf_guard --trends` for an advisory section in the gate summary.
//!
//! Prints the markdown trend table to stdout; `--out` writes the JSON
//! form `perf_guard --trends` consumes.
//!
//! Usage: `bench_history [--dir DIR] [--baseline FILE] [--out FILE]`
//!
//! Defaults: `--dir .` (the repo root, where the reports are checked
//! in), `--baseline <dir>/BENCH_BASELINE.json` when present.
//!
//! Exit codes: 2 on usage/parse errors, 1 when the output cannot be
//! written. A history of zero or one reports is not an error: the table
//! skeleton still prints (with an advisory on stderr) and the exit code
//! stays 0, so the CI step works from the very first PR.

use std::path::Path;

use arvi_bench::{bench_history, load_bench_history, write_text, Json};

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = arg_value(&args, "--dir").unwrap_or(".");
    let files = load_bench_history(Path::new(dir)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    // A short history is not an error: a fresh checkout (or a repo
    // whose reports were pruned) still gets the table skeleton and an
    // advisory, exit 0, so CI steps can run unconditionally.
    if files.len() < 2 {
        match files.len() {
            0 => eprintln!(
                "advisory: no BENCH_PR<N>.json files under {dir}; \
                 nothing to trend yet (need two reports for a delta)"
            ),
            _ => eprintln!(
                "advisory: only one report ({}) under {dir}; \
                 trends need two reports for a delta",
                files[0].file
            ),
        }
    }

    let baseline_path = arg_value(&args, "--baseline")
        .map(String::from)
        .unwrap_or_else(|| format!("{dir}/BENCH_BASELINE.json"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Some(Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {baseline_path}: malformed JSON: {e}");
            std::process::exit(2);
        })),
        // The default baseline is best-effort; an explicit one must load.
        Err(e) if arg_value(&args, "--baseline").is_some() => {
            eprintln!("error: cannot read {baseline_path}: {e}");
            std::process::exit(2);
        }
        Err(_) => None,
    };

    let report = bench_history(&files, baseline.as_ref());
    print!("{}", report.to_markdown());
    eprintln!(
        "bench_history: {} reports (PR{}..PR{}), {} metrics, {} flagged",
        files.len(),
        report.prs.first().unwrap_or(&0),
        report.prs.last().unwrap_or(&0),
        report.trends.len(),
        report.regressions().count()
    );
    if let Some(out) = arg_value(&args, "--out") {
        if let Err(e) = write_text(Path::new(out), &report.to_json().render()) {
            eprintln!("error: cannot write trend report: {e}");
            std::process::exit(1);
        }
        eprintln!("trend JSON written to {out}");
    }
}

//! Runs the complete evaluation: Tables 1-4, Figure 5, and Figure 6 at
//! all three pipeline depths, printing every artifact the paper reports.
//!
//! Usage: `experiments [--quick] [--threads N] [--trace-dir DIR]
//!                     [--sample K:WARMUP:DETAIL]
//!                     [--scenario NAME_OR_SPEC]... [--scenario-file FILE]
//!                     [--journal FILE] [--resume] [--fault-plan FILE]
//!                     [--deadline-ms N] [--events-out FILE] [--metrics-out FILE]
//!                     [--probe counters,sites,trace] [--obs-out FILE]
//!                     [--obs-grid FILE] [--trace-cycles START:END] [--top-sites N]
//!                     [--list-scenarios] [--list-benchmarks]`
//!
//! `--obs-grid FILE` re-runs the full evaluation grid (workloads × all
//! depths × all configurations) with the counter and site probes
//! attached and writes the merged per-`(workload, config)` rollup —
//! the input for `obs_report`'s attribution diff. `--events-out` /
//! `--metrics-out` stream structured sweep events (JSONL) and a
//! Prometheus-style metrics snapshot from the resilient runner.
//!
//! Each workload is functionally emulated exactly once (per run — or
//! once ever with `--trace-dir`), then every figure's grid replays the
//! shared recording. Runs the benchmark suite by default; any
//! `--scenario`/`--scenario-file` flag switches the grids to the named
//! synthetic scenarios instead.
//!
//! Any fault-tolerance flag switches the grids to the fault-isolated
//! sweep runner: cell failures are reported at the end (exit code 3)
//! instead of aborting, completed cells are journaled as they finish,
//! and `--resume` completes an interrupted run from its journal.
//!
//! `--sample K:WARMUP:DETAIL` (or `stratified:K:WARMUP:DETAIL`) switches
//! every grid to SMARTS-style interval sampling over the shared
//! recordings (per-unit parallelism, journaled units, per-cell
//! 95%-confidence-interval tables) — see the `fig5` docs.

use arvi_bench::{
    fig5_tables_over, fig5_tables_resilient, fig5_tables_sampled, grid, handle_list_flags,
    maybe_obs_grid, maybe_obs_pass, paper_tables, resilience_from_args, sample_plan_from_args,
    threads_from_args, trace_dir_from_args, workloads_from_args, Fig6Data, Spec, SweepIncomplete,
    TraceSet,
};
use arvi_sim::{Depth, PredictorConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if handle_list_flags(&args) {
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let threads = threads_from_args(&args);
    let trace_dir = trace_dir_from_args(&args);
    let suite_mode = !args
        .iter()
        .any(|a| a == "--scenario" || a == "--scenario-file");
    let workloads = workloads_from_args(&args);
    let spec = if quick {
        Spec::quick()
    } else {
        Spec::default()
    };

    // The paper's configuration tables describe the benchmark-suite
    // evaluation; skip them when a scenario grid replaces the suite
    // (the `tables` binary prints them on demand).
    if suite_mode {
        for (title, table) in paper_tables() {
            println!("== {title} ==\n{}\n", table.to_text());
        }
    }

    let resilience = resilience_from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let plan = sample_plan_from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    // A failed grid reports every failed cell and exits 3 — after all
    // the other grids have run (and journaled), so one bad cell costs
    // one re-run with --resume, not the whole evaluation.
    let mut incomplete: Vec<SweepIncomplete> = Vec::new();

    // One recording per workload feeds fig5 and all three fig6 depths.
    let traces = TraceSet::record_resilient(
        &workloads,
        spec,
        threads,
        trace_dir.as_deref(),
        resilience.as_ref(),
    );

    let fig5 = match (&plan, &resilience) {
        (Some(plan), res) => {
            match fig5_tables_sampled(&workloads, spec, plan, true, threads, &traces, res.as_ref())
            {
                Ok((fig5a, fig5b, ci)) => {
                    println!(
                        "== Figure 5 sampled estimates (plan {plan}): 95% confidence intervals ==\n{}",
                        ci.to_text()
                    );
                    Some((fig5a, fig5b))
                }
                Err(e) => {
                    incomplete.push(e);
                    None
                }
            }
        }
        (None, None) => Some(fig5_tables_over(
            &workloads,
            spec,
            true,
            threads,
            Some(&traces),
        )),
        (None, Some(res)) => {
            match fig5_tables_resilient(&workloads, spec, true, threads, Some(&traces), res) {
                Ok(tables) => Some(tables),
                Err(e) => {
                    incomplete.push(e);
                    None
                }
            }
        }
    };
    if let Some((fig5a, fig5b)) = fig5 {
        println!(
            "== Figure 5(a): fraction of load branches ==\n{}",
            fig5a.to_text()
        );
        println!(
            "== Figure 5(b): accuracy, calculated vs load branches (20-stage, ARVI current value) ==\n{}",
            fig5b.to_text()
        );
    }

    let mut headlines = Vec::new();
    for depth in Depth::all() {
        let data = match (&plan, &resilience) {
            (Some(plan), res) => {
                match Fig6Data::collect_sampled(
                    &workloads,
                    depth,
                    spec,
                    plan,
                    true,
                    threads,
                    &traces,
                    res.as_ref(),
                ) {
                    Ok((data, ci)) => {
                        println!(
                            "== Figure 6 sampled estimates, {depth} pipeline (plan {plan}): 95% confidence intervals ==\n{}",
                            ci.to_text()
                        );
                        data
                    }
                    Err(e) => {
                        incomplete.push(e);
                        continue;
                    }
                }
            }
            (None, None) => {
                Fig6Data::collect_over(&workloads, depth, spec, true, threads, Some(&traces))
            }
            (None, Some(res)) => {
                match Fig6Data::collect_resilient(
                    &workloads,
                    depth,
                    spec,
                    true,
                    threads,
                    Some(&traces),
                    res,
                ) {
                    Ok(data) => data,
                    Err(e) => {
                        incomplete.push(e);
                        continue;
                    }
                }
            }
        };
        println!(
            "== Figure 6: prediction accuracy, {depth} pipeline ==\n{}",
            data.accuracy_table().to_text()
        );
        println!(
            "== Figure 6: normalized IPC, {depth} pipeline ==\n{}",
            data.normalized_ipc_table().to_text()
        );
        headlines.push((
            depth,
            data.mean_normalized_ipc(PredictorConfig::ArviCurrent),
            data.mean_normalized_ipc(PredictorConfig::ArviLoadBack),
            data.mean_normalized_ipc(PredictorConfig::ArviPerfect),
        ));
    }

    println!("== Headline: mean normalized IPC over the suite ==");
    println!("depth      current  load-back  perfect   (paper: current 1.126@20, 1.156@60; perfect 1.251@20)");
    for (depth, cur, lb, perf) in headlines {
        println!("{depth:<10} {cur:<8.3} {lb:<10.3} {perf:<8.3}");
    }

    // The evaluation's anchor cell: 20-stage, ARVI current value.
    maybe_obs_pass(
        &args,
        &workloads,
        Depth::D20,
        PredictorConfig::ArviCurrent,
        spec,
        Some(&traces),
    );
    // The full evaluation grid, probed and merged (`--obs-grid`).
    maybe_obs_grid(
        &args,
        &grid(&workloads, &Depth::all(), &PredictorConfig::all()),
        spec,
        threads,
        Some(&traces),
        resilience.as_ref(),
    );

    if !incomplete.is_empty() {
        for e in &incomplete {
            eprintln!("{e}");
        }
        std::process::exit(3);
    }
}

//! Regenerates Figure 5: (a) load-branch fraction per workload across
//! pipeline depths; (b) prediction accuracy of calculated vs load
//! branches (20-stage, ARVI current value).
//!
//! Usage: `fig5 [--quick] [--threads N] [--trace-dir DIR]
//!              [--sample K:WARMUP:DETAIL]
//!              [--scenario NAME_OR_SPEC]... [--scenario-file FILE]
//!              [--journal FILE] [--resume] [--fault-plan FILE]
//!              [--deadline-ms N] [--events-out FILE] [--metrics-out FILE]
//!              [--probe counters,sites,trace] [--obs-out FILE]
//!              [--obs-grid FILE] [--trace-cycles START:END] [--top-sites N]
//!              [--list-scenarios] [--list-benchmarks]`
//!
//! `--obs-grid FILE` re-runs the figure's grid (workloads × all pipeline
//! depths, ARVI current value) with the counter and site probes attached
//! and writes the merged per-`(workload, config)` rollup.
//!
//! Runs the benchmark suite by default; any `--scenario`/
//! `--scenario-file` flag switches the grid to the named synthetic
//! scenarios instead. Any fault-tolerance flag switches to the
//! fault-isolated sweep runner: cell failures are reported (exit code
//! 3) instead of aborting, and `--resume` completes an interrupted run
//! from its journal.
//!
//! `--sample K:WARMUP:DETAIL` (or `stratified:K:WARMUP:DETAIL`) switches
//! every cell to SMARTS-style interval sampling over the shared
//! recording: 1-in-`K` detail windows of `DETAIL` instructions, each
//! preceded by `WARMUP` instructions of functional warm-up, fanned out
//! per unit across all workers. An extra per-cell table reports the
//! 95% confidence intervals. Composes with the fault-tolerance flags
//! (units are journaled and resumed individually).

use arvi_bench::{
    fig5_tables_over, fig5_tables_resilient, fig5_tables_sampled, grid, handle_list_flags,
    maybe_obs_grid, maybe_obs_pass, resilience_from_args, sample_plan_from_args, threads_from_args,
    trace_dir_from_args, workloads_from_args, Spec, TraceSet,
};
use arvi_sim::{Depth, PredictorConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if handle_list_flags(&args) {
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let spec = if quick {
        Spec::quick()
    } else {
        Spec::default()
    };
    let threads = threads_from_args(&args);
    let trace_dir = trace_dir_from_args(&args);
    let workloads = workloads_from_args(&args);
    let resilience = resilience_from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let plan = sample_plan_from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let traces = TraceSet::record_resilient(
        &workloads,
        spec,
        threads,
        trace_dir.as_deref(),
        resilience.as_ref(),
    );
    let (fig5a, fig5b) = match (&plan, &resilience) {
        (Some(plan), res) => {
            match fig5_tables_sampled(&workloads, spec, plan, true, threads, &traces, res.as_ref())
            {
                Ok((fig5a, fig5b, ci)) => {
                    println!(
                        "== Sampled estimates (plan {plan}): 95% confidence intervals ==\n{}",
                        ci.to_text()
                    );
                    (fig5a, fig5b)
                }
                Err(incomplete) => {
                    eprintln!("{incomplete}");
                    std::process::exit(3);
                }
            }
        }
        (None, None) => fig5_tables_over(&workloads, spec, true, threads, Some(&traces)),
        (None, Some(res)) => {
            match fig5_tables_resilient(&workloads, spec, true, threads, Some(&traces), res) {
                Ok(tables) => tables,
                Err(incomplete) => {
                    eprintln!("{incomplete}");
                    std::process::exit(3);
                }
            }
        }
    };
    println!(
        "== Figure 5(a): fraction of load branches ==\n{}",
        fig5a.to_text()
    );
    println!(
        "== Figure 5(b): prediction accuracy, calculated vs load branches (20-stage, ARVI current value) ==\n{}",
        fig5b.to_text()
    );
    // Figure 5(b)'s anchor cell: 20-stage, ARVI current value.
    maybe_obs_pass(
        &args,
        &workloads,
        Depth::D20,
        PredictorConfig::ArviCurrent,
        spec,
        Some(&traces),
    );
    // The figure's depth sweep, probed and merged (`--obs-grid`).
    maybe_obs_grid(
        &args,
        &grid(&workloads, &Depth::all(), &[PredictorConfig::ArviCurrent]),
        spec,
        threads,
        Some(&traces),
        resilience.as_ref(),
    );
}

//! Regenerates Figure 5: (a) load-branch fraction per benchmark across
//! pipeline depths; (b) prediction accuracy of calculated vs load
//! branches (20-stage, ARVI current value).
//!
//! Usage: `fig5 [--quick] [--threads N]`

use arvi_bench::{fig5_tables_threaded, threads_from_args, Spec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let spec = if quick {
        Spec::quick()
    } else {
        Spec::default()
    };
    let (fig5a, fig5b) = fig5_tables_threaded(spec, true, threads_from_args(&args));
    println!(
        "== Figure 5(a): fraction of load branches ==\n{}",
        fig5a.to_text()
    );
    println!(
        "== Figure 5(b): prediction accuracy, calculated vs load branches (20-stage, ARVI current value) ==\n{}",
        fig5b.to_text()
    );
}

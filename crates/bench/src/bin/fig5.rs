//! Regenerates Figure 5: (a) load-branch fraction per benchmark across
//! pipeline depths; (b) prediction accuracy of calculated vs load
//! branches (20-stage, ARVI current value).
//!
//! Usage: `fig5 [--quick] [--threads N] [--trace-dir DIR]`

use arvi_bench::{fig5_tables_with, threads_from_args, trace_dir_from_args, Spec, TraceSet};
use arvi_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let spec = if quick {
        Spec::quick()
    } else {
        Spec::default()
    };
    let threads = threads_from_args(&args);
    let trace_dir = trace_dir_from_args(&args);
    let traces = TraceSet::record(&Benchmark::all(), spec, threads, trace_dir.as_deref());
    let (fig5a, fig5b) = fig5_tables_with(spec, true, threads, &traces);
    println!(
        "== Figure 5(a): fraction of load branches ==\n{}",
        fig5a.to_text()
    );
    println!(
        "== Figure 5(b): prediction accuracy, calculated vs load branches (20-stage, ARVI current value) ==\n{}",
        fig5b.to_text()
    );
}

//! Regenerates Figure 5: (a) load-branch fraction per workload across
//! pipeline depths; (b) prediction accuracy of calculated vs load
//! branches (20-stage, ARVI current value).
//!
//! Usage: `fig5 [--quick] [--threads N] [--trace-dir DIR]
//!              [--scenario NAME_OR_SPEC]... [--scenario-file FILE]
//!              [--list-scenarios] [--list-benchmarks]`
//!
//! Runs the benchmark suite by default; any `--scenario`/
//! `--scenario-file` flag switches the grid to the named synthetic
//! scenarios instead.

use arvi_bench::{
    fig5_tables_over, handle_list_flags, threads_from_args, trace_dir_from_args,
    workloads_from_args, Spec, TraceSet,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if handle_list_flags(&args) {
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let spec = if quick {
        Spec::quick()
    } else {
        Spec::default()
    };
    let threads = threads_from_args(&args);
    let trace_dir = trace_dir_from_args(&args);
    let workloads = workloads_from_args(&args);
    let traces = TraceSet::record(&workloads, spec, threads, trace_dir.as_deref());
    let (fig5a, fig5b) = fig5_tables_over(&workloads, spec, true, threads, Some(&traces));
    println!(
        "== Figure 5(a): fraction of load branches ==\n{}",
        fig5a.to_text()
    );
    println!(
        "== Figure 5(b): prediction accuracy, calculated vs load branches (20-stage, ARVI current value) ==\n{}",
        fig5b.to_text()
    );
}

//! Regenerates Figure 5: (a) load-branch fraction per benchmark across
//! pipeline depths; (b) prediction accuracy of calculated vs load
//! branches (20-stage, ARVI current value).
//!
//! Usage: `fig5 [--quick]`

use arvi_bench::{fig5_tables, Spec};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick { Spec::quick() } else { Spec::default() };
    let (fig5a, fig5b) = fig5_tables(spec, true);
    println!("== Figure 5(a): fraction of load branches ==\n{}", fig5a.to_text());
    println!(
        "== Figure 5(b): prediction accuracy, calculated vs load branches (20-stage, ARVI current value) ==\n{}",
        fig5b.to_text()
    );
}

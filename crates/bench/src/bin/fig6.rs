//! Regenerates Figure 6 for one pipeline depth: prediction accuracy
//! (a/c/e) and normalized IPC (b/d/f) for the four configurations.
//!
//! Usage: `fig6 [20|40|60] [--quick] [--threads N] [--trace-dir DIR]
//!              [--sample K:WARMUP:DETAIL]
//!              [--scenario NAME_OR_SPEC]... [--scenario-file FILE]
//!              [--journal FILE] [--resume] [--fault-plan FILE]
//!              [--deadline-ms N] [--events-out FILE] [--metrics-out FILE]
//!              [--probe counters,sites,trace] [--obs-out FILE]
//!              [--obs-grid FILE] [--trace-cycles START:END] [--top-sites N]
//!              [--list-scenarios] [--list-benchmarks]`
//!
//! `--obs-grid FILE` re-runs the figure's whole grid (workloads × all
//! four configurations at the chosen depth) with the counter and site
//! probes attached and writes the merged per-`(workload, config)`
//! rollup — the input for `obs_report`'s ARVI-vs-baseline attribution
//! diff.
//!
//! Runs the benchmark suite by default; any `--scenario`/
//! `--scenario-file` flag switches the grid to the named synthetic
//! scenarios instead. Any fault-tolerance flag switches to the
//! fault-isolated sweep runner: cell failures are reported (exit code
//! 3) instead of aborting, and `--resume` completes an interrupted run
//! from its journal.
//!
//! `--sample K:WARMUP:DETAIL` (or `stratified:K:WARMUP:DETAIL`) switches
//! every cell to SMARTS-style interval sampling over the shared
//! recording (per-unit parallelism, journaled units, and an extra
//! per-cell 95%-confidence-interval table) — see the `fig5` docs.

use arvi_bench::{
    grid, handle_list_flags, maybe_obs_grid, maybe_obs_pass, resilience_from_args,
    sample_plan_from_args, threads_from_args, trace_dir_from_args, workloads_from_args, Fig6Data,
    Spec, TraceSet,
};
use arvi_sim::{Depth, PredictorConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if handle_list_flags(&args) {
        return;
    }
    // First positional argument, skipping flag values (`--threads N`,
    // `--trace-dir DIR`, `--scenario X`, `--scenario-file F`).
    let value_flags = [
        "--threads",
        "--trace-dir",
        "--scenario",
        "--scenario-file",
        "--journal",
        "--fault-plan",
        "--deadline-ms",
        "--probe",
        "--obs-out",
        "--obs-grid",
        "--trace-cycles",
        "--top-sites",
        "--events-out",
        "--metrics-out",
        "--sample",
    ];
    let mut positional = None;
    let mut i = 0;
    while i < args.len() {
        if value_flags.contains(&args[i].as_str()) {
            i += 2;
            continue;
        }
        if !args[i].starts_with("--") && positional.is_none() {
            positional = Some(args[i].as_str());
        }
        i += 1;
    }
    let depth = match positional {
        Some("40") => Depth::D40,
        Some("60") => Depth::D60,
        _ => Depth::D20,
    };
    let quick = args.iter().any(|a| a == "--quick");
    let spec = if quick {
        Spec::quick()
    } else {
        Spec::default()
    };

    let threads = threads_from_args(&args);
    let trace_dir = trace_dir_from_args(&args);
    let workloads = workloads_from_args(&args);
    let resilience = resilience_from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let traces = TraceSet::record_resilient(
        &workloads,
        spec,
        threads,
        trace_dir.as_deref(),
        resilience.as_ref(),
    );
    let plan = sample_plan_from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let data = match (&plan, &resilience) {
        (Some(plan), res) => {
            match Fig6Data::collect_sampled(
                &workloads,
                depth,
                spec,
                plan,
                true,
                threads,
                &traces,
                res.as_ref(),
            ) {
                Ok((data, ci)) => {
                    println!(
                        "== Sampled estimates (plan {plan}): 95% confidence intervals ==\n{}",
                        ci.to_text()
                    );
                    data
                }
                Err(incomplete) => {
                    eprintln!("{incomplete}");
                    std::process::exit(3);
                }
            }
        }
        (None, None) => {
            Fig6Data::collect_over(&workloads, depth, spec, true, threads, Some(&traces))
        }
        (None, Some(res)) => {
            match Fig6Data::collect_resilient(
                &workloads,
                depth,
                spec,
                true,
                threads,
                Some(&traces),
                res,
            ) {
                Ok(data) => data,
                Err(incomplete) => {
                    eprintln!("{incomplete}");
                    std::process::exit(3);
                }
            }
        }
    };
    println!(
        "== Figure 6: prediction accuracy, {depth} pipeline ==\n{}",
        data.accuracy_table().to_text()
    );
    println!(
        "== Figure 6: normalized IPC, {depth} pipeline ==\n{}",
        data.normalized_ipc_table().to_text()
    );
    println!(
        "headline: ARVI current value mean normalized IPC = {:.3} (paper: 1.126 at 20 stages, 1.156 at 60)",
        data.mean_normalized_ipc(PredictorConfig::ArviCurrent)
    );
    println!(
        "          ARVI perfect value mean normalized IPC = {:.3} (paper: 1.251 at 20 stages)",
        data.mean_normalized_ipc(PredictorConfig::ArviPerfect)
    );
    // The figure's headline cell at the chosen depth.
    maybe_obs_pass(
        &args,
        &workloads,
        depth,
        PredictorConfig::ArviCurrent,
        spec,
        Some(&traces),
    );
    // The figure's full grid, probed and merged (`--obs-grid`).
    maybe_obs_grid(
        &args,
        &grid(&workloads, &[depth], &PredictorConfig::all()),
        spec,
        threads,
        Some(&traces),
        resilience.as_ref(),
    );
}

//! Differential site attribution over a merged grid rollup: per
//! workload, the branch PCs ARVI *fixes* and *breaks* versus the best
//! baseline configuration.
//!
//! Consumes an `obs_grid.json` produced by `fig6 --obs-grid` (or any
//! experiment binary run with `--obs-grid` over a grid that sweeps both
//! ARVI and baseline configurations). Prints the markdown report to
//! stdout; `--out` additionally writes the JSON form.
//!
//! Usage: `obs_report --grid obs_grid.json [--top N] [--out FILE]`
//!
//! Exit codes: 2 on usage/parse errors, 1 when the output file cannot
//! be written.

use std::path::Path;

use arvi_bench::{attribution_diff, write_text, Json};

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(grid_path) = arg_value(&args, "--grid") else {
        eprintln!("usage: obs_report --grid obs_grid.json [--top N] [--out FILE]");
        std::process::exit(2);
    };
    let top = match arg_value(&args, "--top") {
        None => 10,
        Some(n) => n.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("error: --top expects a count, got `{n}`");
            std::process::exit(2);
        }),
    };

    let text = std::fs::read_to_string(grid_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {grid_path}: {e}");
        std::process::exit(2);
    });
    let grid = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {grid_path}: malformed JSON: {e}");
        std::process::exit(2);
    });
    let attribution = attribution_diff(&grid, top).unwrap_or_else(|e| {
        eprintln!("error: {grid_path}: {e}");
        std::process::exit(2);
    });

    print!("{}", attribution.to_markdown());
    if let Some(out) = arg_value(&args, "--out") {
        let json = attribution.to_json().render();
        if let Err(e) = write_text(Path::new(out), &json) {
            eprintln!("error: cannot write attribution report: {e}");
            std::process::exit(1);
        }
        eprintln!("attribution JSON written to {out}");
    }
}

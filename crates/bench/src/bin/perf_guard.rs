//! CI perf-regression guardrail: compares a fresh `perf_report` JSON
//! against the checked-in `BENCH_BASELINE.json` and fails the build on
//! regressions beyond the per-metric tolerance band.
//!
//! The baseline file carries, per metric, the reference value, the
//! direction that counts as better, and warn/fail thresholds in
//! percent. Two kinds of metric coexist deliberately:
//!
//! * **ratio metrics** (`*_speedup_*`) are host-independent — the two
//!   sides of the ratio are measured in the same process on the same
//!   machine — so they get tight bands; they are the real gate.
//! * **absolute metrics** (`*_ns_*`) depend on the host CPU, so their
//!   bands are generous: they catch order-of-magnitude mistakes (a
//!   debug build, an accidentally quadratic loop), not noise.
//!
//! Prints a markdown delta table (pipe it into `$GITHUB_STEP_SUMMARY`
//! in CI). Exit code 1 = at least one metric beyond its fail band.
//!
//! Usage: `perf_guard --report PATH [--baseline PATH]`
//!
//! Regenerate the baseline after an intentional perf change:
//! `cargo run --release -p arvi-bench --bin perf_report -- --quick`,
//! then copy the `guardrail` values into `BENCH_BASELINE.json`.

use arvi_bench::Json;

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_guard: cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("perf_guard: {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report_path = arg_value(&args, "--report").unwrap_or_else(|| {
        eprintln!("usage: perf_guard --report PATH [--baseline PATH]");
        std::process::exit(2);
    });
    let baseline_path = arg_value(&args, "--baseline").unwrap_or("BENCH_BASELINE.json");

    let report = load(report_path);
    let baseline = load(baseline_path);

    let Some(Json::Arr(metrics)) = baseline.get("metrics") else {
        eprintln!("perf_guard: {baseline_path} has no `metrics` array");
        std::process::exit(2);
    };

    let mut rows = Vec::new();
    let mut worst = 0u8; // 0 ok, 1 warn, 2 fail
    for m in metrics {
        let key = match m.get("key") {
            Some(Json::Str(k)) => k.clone(),
            _ => {
                eprintln!("perf_guard: metric without a key in {baseline_path}");
                std::process::exit(2);
            }
        };
        let base = m.num("baseline").expect("metric baseline value");
        let warn_pct = m.num("warn_pct").expect("metric warn_pct");
        let fail_pct = m.num("fail_pct").expect("metric fail_pct");
        let higher_is_better = matches!(m.get("direction"), Some(Json::Str(d)) if d == "higher");

        let current = match report.num(&format!("guardrail.{key}")) {
            Some(v) => v,
            None => {
                rows.push((key, base, f64::NAN, f64::NAN, "❌ missing".to_string()));
                worst = worst.max(2);
                continue;
            }
        };
        // Positive regression = worse than baseline, in percent.
        let regression_pct = if higher_is_better {
            (base - current) / base * 100.0
        } else {
            (current - base) / base * 100.0
        };
        let status = if regression_pct > fail_pct {
            worst = worst.max(2);
            format!("❌ fail (>{fail_pct:.0}%)")
        } else if regression_pct > warn_pct {
            worst = worst.max(1);
            format!("⚠️ warn (>{warn_pct:.0}%)")
        } else {
            "✅ ok".to_string()
        };
        rows.push((key, base, current, regression_pct, status));
    }

    println!("## Perf guardrail ({report_path} vs {baseline_path})\n");
    println!("| metric | baseline | current | regression | status |");
    println!("|--------|---------:|--------:|-----------:|--------|");
    for (key, base, current, reg, status) in &rows {
        if current.is_nan() {
            println!("| `{key}` | {base:.2} | — | — | {status} |");
        } else {
            println!("| `{key}` | {base:.2} | {current:.2} | {reg:+.1}% | {status} |");
        }
    }
    println!();
    match worst {
        0 => println!("All metrics within tolerance."),
        1 => println!("Warnings only — within the fail band, watch the trend."),
        _ => println!("Perf regression beyond the fail band."),
    }
    if worst >= 2 {
        std::process::exit(1);
    }
}

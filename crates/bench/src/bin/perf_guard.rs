//! CI perf-regression guardrail: compares a fresh `perf_report` JSON
//! against the checked-in `BENCH_BASELINE.json` and fails the build on
//! regressions beyond the per-metric tolerance band.
//!
//! The baseline file carries, per metric, the reference value, the
//! direction that counts as better, and warn/fail thresholds in
//! percent. Two kinds of metric coexist deliberately:
//!
//! * **ratio metrics** (`*_speedup_*`) are host-independent — the two
//!   sides of the ratio are measured in the same process on the same
//!   machine — so they get tight bands; they are the real gate.
//! * **absolute metrics** (`*_ns_*`) depend on the host CPU, so their
//!   bands are generous: they catch order-of-magnitude mistakes (a
//!   debug build, an accidentally quadratic loop), not noise.
//!
//! Prints a markdown delta table (pipe it into `$GITHUB_STEP_SUMMARY`
//! in CI); every gating metric is also named on stderr with its band
//! and both values. Exit code 1 = at least one metric beyond its fail
//! band. The comparison itself lives in `arvi_bench::guard`.
//!
//! Usage: `perf_guard --report PATH [--baseline PATH] [--trends PATH]`
//!
//! `--trends` takes a `bench_history --out` JSON and appends its
//! regression flags to the summary as an advisory section — trends
//! never gate (host jitter across PRs is not this gate's evidence), the
//! baseline comparison does.
//!
//! Regenerate the baseline after an intentional perf change:
//! `cargo run --release -p arvi-bench --bin perf_report -- --quick`,
//! then copy the `guardrail` values into `BENCH_BASELINE.json`.

use arvi_bench::{evaluate_guardrail, trend_flags, Json};

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_guard: cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("perf_guard: {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report_path = arg_value(&args, "--report").unwrap_or_else(|| {
        eprintln!("usage: perf_guard --report PATH [--baseline PATH] [--trends PATH]");
        std::process::exit(2);
    });
    let baseline_path = arg_value(&args, "--baseline").unwrap_or("BENCH_BASELINE.json");

    let report = load(report_path);
    let baseline = load(baseline_path);
    let outcome = evaluate_guardrail(&report, &baseline).unwrap_or_else(|e| {
        eprintln!("perf_guard: {baseline_path}: {e}");
        std::process::exit(2);
    });

    print!("{}", outcome.to_markdown(report_path, baseline_path));
    if let Some(trends_path) = arg_value(&args, "--trends") {
        let flags = trend_flags(&load(trends_path));
        println!("\n### Trend advisories ({trends_path}, non-gating)\n");
        if flags.is_empty() {
            println!("No guardrail metric regressed beyond its noise band across PRs.");
        } else {
            for flag in flags {
                println!("- {flag}");
            }
        }
    }
    if outcome.gates() {
        for failure in outcome.failures() {
            eprintln!("perf_guard: {failure}");
        }
        std::process::exit(1);
    }
}

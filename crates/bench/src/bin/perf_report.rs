//! Performance report: quantifies this repository's two hot-path claims
//! and emits a machine-readable `BENCH_PR1.json` so the perf trajectory
//! is tracked PR over PR.
//!
//! 1. **Zero-allocation DDT** — times steady-state insert+commit and
//!    deep-chain reads on the optimized [`arvi_core::Ddt`] versus the
//!    preserved pre-refactor baseline ([`arvi_bench::baseline::NaiveDdt`])
//!    and reports the speedups.
//! 2. **Parallel sweeps** — runs the same (benchmark, depth, config)
//!    grid sequentially and on all cores and reports the wall-time
//!    speedup.
//!
//! Usage: `perf_report [--quick] [--threads N] [--out PATH]`

use std::time::Instant;

use arvi_bench::baseline::NaiveDdt;
use arvi_bench::{threads_from_args, write_report, Json, Spec, SweepPoint};
use arvi_core::{ChainMask, Ddt, DdtConfig, PhysReg};
use arvi_sim::{Depth, PredictorConfig};
use arvi_workloads::Benchmark;

/// Steady-state insert+commit throughput over a full ring, ns/op.
fn time_insert<F: FnMut(u32)>(iters: u32, mut op: F) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        op(i);
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

struct MicroResult {
    insert_naive_ns: f64,
    insert_fast_ns: f64,
    chain_naive_ns: f64,
    chain_fast_ns: f64,
}

fn micro(iters: u32) -> MicroResult {
    let cfg = DdtConfig {
        slots: 256,
        phys_regs: 320,
    };
    let dest = |i: u32| PhysReg(32 + (i % 280) as u16);
    let src = |i: u32| Some(PhysReg(32 + ((i + 1) % 280) as u16));

    // Warm both tables to steady state (full window, every insert paired
    // with a commit), then time.
    let mut naive = NaiveDdt::new(cfg);
    let insert_naive_ns = {
        for i in 0..cfg.slots as u32 {
            naive.insert(Some(dest(i)), [src(i), None]);
        }
        time_insert(iters, |i| {
            naive.commit_oldest();
            std::hint::black_box(naive.insert(Some(dest(i)), [src(i), None]));
        })
    };
    let mut fast = Ddt::new(cfg);
    let insert_fast_ns = {
        for i in 0..cfg.slots as u32 {
            fast.insert(Some(dest(i)), [src(i), None]);
        }
        time_insert(iters, |i| {
            fast.commit_oldest();
            std::hint::black_box(fast.insert(Some(dest(i)), [src(i), None]));
        })
    };

    // Deep-chain read: a 200-instruction dependent chain.
    let deep = |ddt: &mut dyn FnMut(PhysReg, Option<PhysReg>)| {
        let mut prev = PhysReg(32);
        ddt(prev, None);
        for i in 1..200u16 {
            let d = PhysReg(32 + i);
            ddt(d, Some(prev));
            prev = d;
        }
        prev
    };
    let mut naive = NaiveDdt::new(cfg);
    let tip = deep(&mut |d, s| {
        naive.insert(Some(d), [s, None]);
    });
    let chain_naive_ns = time_insert(iters, |_| {
        std::hint::black_box(naive.chain(&[tip]));
    });
    let mut fast = Ddt::new(cfg);
    let tip = deep(&mut |d, s| {
        fast.insert(Some(d), [s, None]);
    });
    let mut mask = ChainMask::zeroed(cfg.slots);
    let chain_fast_ns = time_insert(iters, |_| {
        fast.chain_into(&[tip], &mut mask);
        std::hint::black_box(&mask);
    });

    MicroResult {
        insert_naive_ns,
        insert_fast_ns,
        chain_naive_ns,
        chain_fast_ns,
    }
}

fn sweep_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for bench in Benchmark::all() {
        for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
            points.push(SweepPoint {
                bench,
                depth: Depth::D20,
                config,
            });
        }
    }
    points
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = threads_from_args(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR1.json")
        .to_string();

    let micro_iters = if quick { 20_000 } else { 200_000 };
    eprintln!("perf_report: DDT microbenchmarks ({micro_iters} iters)...");
    let m = micro(micro_iters);
    let insert_speedup = m.insert_naive_ns / m.insert_fast_ns;
    let chain_speedup = m.chain_naive_ns / m.chain_fast_ns;
    eprintln!(
        "  insert+commit: naive {:.1} ns -> optimized {:.1} ns ({insert_speedup:.2}x)",
        m.insert_naive_ns, m.insert_fast_ns
    );
    eprintln!(
        "  deep chain read: naive {:.1} ns -> optimized {:.1} ns ({chain_speedup:.2}x)",
        m.chain_naive_ns, m.chain_fast_ns
    );

    let spec = if quick {
        Spec {
            warmup: 5_000,
            measure: 15_000,
            seed: 42,
        }
    } else {
        Spec::quick()
    };
    let points = sweep_points();
    eprintln!(
        "perf_report: sweep of {} points, sequential vs {} threads...",
        points.len(),
        threads
    );
    let t0 = Instant::now();
    let seq = arvi_bench::run_sweep(&points, spec, 1, false);
    let seq_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let par = arvi_bench::run_sweep(&points, spec, threads, false);
    let par_s = t0.elapsed().as_secs_f64();
    let sweep_speedup = seq_s / par_s;
    eprintln!("  sequential {seq_s:.2} s -> parallel {par_s:.2} s ({sweep_speedup:.2}x)");
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(
            (s.window.cycles, s.window.cond_branches.correct()),
            (p.window.cycles, p.window.cond_branches.correct()),
            "parallel sweep diverged from sequential on {}",
            s.name
        );
    }

    let report = Json::obj([
        ("pr", Json::Num(1.0)),
        (
            "title",
            Json::str("zero-allocation DDT hot path + parallel sweeps"),
        ),
        (
            "ddt_microbench",
            Json::obj([
                ("iters", Json::Num(micro_iters as f64)),
                (
                    "insert_commit",
                    Json::obj([
                        ("naive_ns_per_op", Json::Num(m.insert_naive_ns)),
                        ("optimized_ns_per_op", Json::Num(m.insert_fast_ns)),
                        ("speedup", Json::Num(insert_speedup)),
                    ]),
                ),
                (
                    "chain_read_deep",
                    Json::obj([
                        ("naive_ns_per_op", Json::Num(m.chain_naive_ns)),
                        ("optimized_ns_per_op", Json::Num(m.chain_fast_ns)),
                        ("speedup", Json::Num(chain_speedup)),
                    ]),
                ),
            ]),
        ),
        (
            "sweep",
            Json::obj([
                (
                    "host_cores",
                    Json::Num(arvi_bench::default_threads() as f64),
                ),
                ("points", Json::Num(points.len() as f64)),
                ("warmup", Json::Num(spec.warmup as f64)),
                ("measure", Json::Num(spec.measure as f64)),
                ("threads", Json::Num(threads as f64)),
                ("sequential_s", Json::Num(seq_s)),
                ("parallel_s", Json::Num(par_s)),
                ("speedup", Json::Num(sweep_speedup)),
            ]),
        ),
    ]);
    write_report(std::path::Path::new(&out_path), &report).expect("write BENCH json");
    eprintln!("perf_report: wrote {out_path}");
    println!("{}", report.render());
}

//! Performance report: quantifies the hot paths against their preserved
//! baselines and emits a machine-readable `BENCH_PR9.json` so the perf
//! trajectory is tracked PR over PR (`BENCH_PR1.json`–`BENCH_PR8.json`
//! preserve the earlier trails; `bench_history` renders the whole
//! trajectory with noise-band regression flags).
//!
//! 1. **Branch-path micro** — ns per branch of the packed-counter,
//!    index-carrying 2Bc-gskew vs the preserved scalar
//!    `arvi_bench::baseline::ScalarTwoBcGskew` over the same recorded
//!    m88ksim branch stream (delayed-update protocol, interleaved
//!    best-of-3, with a stream-identity assertion) — the PR 5 trail.
//! 2. **Machine micro** — ns per committed instruction of the wheel
//!    machine vs `arvi_bench::baseline::HeapMachine` replaying the same
//!    m88ksim recording (interleaved best-of-3 per side, with a
//!    cycle-identity assertion), for the pure timing path
//!    (2-level gskew) and the ARVI path.
//! 3. **DDT micro** — steady-state insert+commit and deep chain read of
//!    `arvi_core::Ddt` vs the preserved `NaiveDdt` (the PR 1 trail,
//!    kept hot so the guardrail watches both hot paths).
//! 4. **Sweep** — the quick Figure-6 grid replayed over shared traces,
//!    asserted bit-identical to per-cell live emulation (the PR 2
//!    guarantee), with the whole-sweep ns/inst.
//! 5. **Resilient sweep** — the same grid through the fault-isolated
//!    runner (`run_sweep_resilient`) with per-cell journaling on,
//!    asserted bit-identical, reporting the fault-tolerance overhead
//!    (catch_unwind + fingerprint + journal append per cell).
//! 6. **Probe overhead** — the PR 7 observability seam: the ARVI
//!    machine timed probe-off (`NullProbe`, what every sweep runs) vs
//!    with the zero-alloc `CounterProbe` attached vs the full obs stack
//!    (counters + per-site attribution), interleaved best-of-3, with
//!    bit-identity asserted between all sides. Probe-off cost is
//!    already gated by the `machine_*` guardrail metrics; the probe-on
//!    numbers document what turning telemetry on costs.
//! 7. **Obs grid** — the PR 8 grid-scale telemetry pass: the quick
//!    Figure-6 grid re-run through `run_obs_grid` with the full
//!    counters + sites stack on every cell, reporting the whole-grid
//!    probed ns/inst and the overhead vs the strict (probe-off)
//!    replayed sweep, with the merged counter sums cross-checked
//!    against the per-cell commit counts.
//! 8. **Sampled simulation** — the PR 9 interval-sampling path. An
//!    honest error study: the 8-benchmark suite plus the 9 curated
//!    synthetic scenarios (20-stage, ARVI current value), each cell
//!    estimated by SMARTS-style systematic sampling at 1-in-{2,4,8}
//!    rates and compared against its full-run ground truth — per-cell
//!    IPC/accuracy relative error and 95%-CI coverage go into the JSON.
//!    Then the speedup measurement the sampling exists for: one long
//!    single-cell window (the stationary history-3 scenario) run
//!    full-length serially vs sampled at 1-in-8 with per-unit fan-out
//!    over all cores, reporting the wall-clock speedup and the IPC
//!    error it costs (both gated by the guardrail).
//!
//! The `guardrail` section of the JSON is the flat metric set
//! `perf_guard` compares against the checked-in `BENCH_BASELINE.json`
//! in CI.
//!
//! Usage: `perf_report [--quick] [--threads N] [--trace-dir DIR] [--out PATH]`

use std::sync::Arc;
use std::time::Instant;

use arvi_bench::baseline::ScalarTwoBcGskew;
use arvi_bench::{
    baseline, collect_results, grid, record_trace, run_obs_grid, run_one_traced,
    run_sweep_emulated, run_sweep_resilient, run_sweep_sampled, run_sweep_with, threads_from_args,
    trace_dir_from_args, trace_len, write_report, Json, Resilience, Spec, SweepPoint, TraceSet,
    Workload,
};
use arvi_bench::{conditional_branches, run_delayed, run_delayed_scalar};
use arvi_core::{Ddt, DdtConfig, PhysReg};
use arvi_obs::{CounterProbe, SiteProbe};
use arvi_predict::{GskewConfig, TwoBcGskew};
use arvi_sampling::{sample_region, SamplePlan};
use arvi_sim::{
    intern_name, simulate_source, simulate_source_probed, Depth, PredictorConfig, SimParams,
};
use arvi_trace::{Trace, TraceReplayer};
use arvi_workloads::Benchmark;

struct MachineSide {
    wheel_ns: f64,
    heap_ns: f64,
}

struct BranchSide {
    packed_ns: f64,
    scalar_ns: f64,
}

/// Times the packed vs scalar 2Bc-gskew (level-2 size) through the
/// machine-shaped delayed-update protocol ([`arvi_bench::run_delayed`])
/// over the same branch stream: both sides are trained over the stream
/// once (warm, steady-state tables), then timed over alternating
/// whole-stream passes (min of `reps` per side, pairwise interleaved
/// against host drift). The warm pass asserts the two sides' predicted
/// direction *streams* identical (order-sensitive hash, not just the
/// aggregate accuracy count).
fn branch_micro(stream: &[(u64, bool)], window: usize, reps: u32) -> BranchSide {
    // Warm pass doubles as the stream-identity assertion.
    let mut packed = TwoBcGskew::new(GskewConfig::level2());
    let mut scalar = ScalarTwoBcGskew::new(GskewConfig::level2());
    let p0 = run_delayed(&mut packed, stream, window);
    let s0 = run_delayed_scalar(&mut scalar, stream, window);
    assert_eq!(
        p0, s0,
        "packed gskew diverged from the scalar baseline on the branch stream"
    );

    let mut packed_s = f64::INFINITY;
    let mut scalar_s = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(run_delayed(&mut packed, stream, window));
        packed_s = packed_s.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        std::hint::black_box(run_delayed_scalar(&mut scalar, stream, window));
        scalar_s = scalar_s.min(t0.elapsed().as_secs_f64());
    }
    let n = stream.len().max(1) as f64;
    BranchSide {
        packed_ns: packed_s * 1e9 / n,
        scalar_ns: scalar_s * 1e9 / n,
    }
}

/// A synthetic table-pressure stream: `sites` distinct branch PCs in
/// seeded-random order with value-dependent outcomes. A site count in
/// the tens of thousands makes the working set span the whole level-2
/// table — the scalar layout streams 256 KB of counters through the
/// cache where the packed layout touches 32 KB; the recorded benchmark
/// streams concentrate on far fewer sites and fit either way.
fn pressure_stream(sites: u64, len: usize) -> Vec<(u64, bool)> {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pc = ((x >> 24) % sites) << 2;
            let taken = (x >> 60) & 0b11 != 0;
            (pc, taken)
        })
        .collect()
}

/// Times one predictor configuration through both machines over a shared
/// recording (interleaved so host drift hits both sides equally) and
/// asserts the two produce identical figures.
fn machine_micro(trace: &Arc<Trace>, config: PredictorConfig, spec: Spec) -> MachineSide {
    let insts = (spec.warmup + spec.measure) as f64;
    let name = intern_name(trace.name());
    let mut wheel_s = f64::INFINITY;
    let mut heap_s = f64::INFINITY;
    let mut wheel_window = None;
    let mut heap_window = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let w = simulate_source(
            name,
            TraceReplayer::new(Arc::clone(trace)),
            SimParams::for_depth(Depth::D20),
            config,
            spec.warmup,
            spec.measure,
        );
        wheel_s = wheel_s.min(t0.elapsed().as_secs_f64());
        wheel_window = Some(w.window);

        let t0 = Instant::now();
        let h = baseline::simulate_source_heap(
            name,
            TraceReplayer::new(Arc::clone(trace)),
            SimParams::for_depth(Depth::D20),
            config,
            spec.warmup,
            spec.measure,
        );
        heap_s = heap_s.min(t0.elapsed().as_secs_f64());
        heap_window = Some(h.window);
    }
    let (w, h) = (wheel_window.unwrap(), heap_window.unwrap());
    assert_eq!(
        (
            w.cycles,
            w.committed,
            w.cond_branches.correct(),
            w.overrides
        ),
        (
            h.cycles,
            h.committed,
            h.cond_branches.correct(),
            h.overrides
        ),
        "wheel machine diverged from heap baseline on {name} / {config}"
    );
    MachineSide {
        wheel_ns: wheel_s * 1e9 / insts,
        heap_ns: heap_s * 1e9 / insts,
    }
}

struct ProbeSide {
    off_ns: f64,
    counters_ns: f64,
    full_ns: f64,
}

/// Times the ARVI machine over a shared recording three ways — probe-off
/// (`NullProbe`), with the `CounterProbe` attached, and with the full
/// counters + per-site stack — interleaved so host drift hits all sides
/// equally, asserting every side produces identical figures.
fn probe_micro(trace: &Arc<Trace>, spec: Spec) -> ProbeSide {
    let insts = (spec.warmup + spec.measure) as f64;
    let name = intern_name(trace.name());
    let params = || SimParams::for_depth(Depth::D20);
    let config = PredictorConfig::ArviCurrent;
    let mut off_s = f64::INFINITY;
    let mut counters_s = f64::INFINITY;
    let mut full_s = f64::INFINITY;
    let mut off_window = None;
    let mut full_window = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let off = simulate_source(
            name,
            TraceReplayer::new(Arc::clone(trace)),
            params(),
            config,
            spec.warmup,
            spec.measure,
        );
        off_s = off_s.min(t0.elapsed().as_secs_f64());
        off_window = Some(off.window);

        let t0 = Instant::now();
        let (_, probe) = simulate_source_probed(
            name,
            TraceReplayer::new(Arc::clone(trace)),
            params(),
            config,
            spec.warmup,
            spec.measure,
            CounterProbe::new(),
        );
        counters_s = counters_s.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(probe.cycles);

        let t0 = Instant::now();
        let (full, probe) = simulate_source_probed(
            name,
            TraceReplayer::new(Arc::clone(trace)),
            params(),
            config,
            spec.warmup,
            spec.measure,
            (CounterProbe::new(), SiteProbe::new()),
        );
        full_s = full_s.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(probe.1.sites);
        full_window = Some(full.window);
    }
    let (o, f) = (off_window.unwrap(), full_window.unwrap());
    assert_eq!(
        (o.cycles, o.committed, o.cond_branches.correct()),
        (f.cycles, f.committed, f.cond_branches.correct()),
        "probed machine diverged from the probe-off machine on {name}"
    );
    ProbeSide {
        off_ns: off_s * 1e9 / insts,
        counters_ns: counters_s * 1e9 / insts,
        full_ns: full_s * 1e9 / insts,
    }
}

struct DdtSide {
    fast_ns: f64,
    naive_ns: f64,
}

/// Steady-state insert+commit cost of the optimized DDT vs the preserved
/// allocating baseline (paper shape: 256 slots x 320 registers).
fn ddt_micro(iters: u32) -> DdtSide {
    let cfg = DdtConfig {
        slots: 256,
        phys_regs: 320,
    };
    let dest = |i: u32| PhysReg(32 + (i % 280) as u16);

    let mut fast = Ddt::new(cfg);
    let mut naive = baseline::NaiveDdt::new(cfg);
    let mut fast_s = f64::INFINITY;
    let mut naive_s = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for i in 0..iters {
            if fast.is_full() {
                fast.commit_oldest();
            }
            std::hint::black_box(fast.insert(Some(dest(i)), [Some(dest(i + 1)), None]));
        }
        fast_s = fast_s.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        for i in 0..iters {
            if naive.is_full() {
                naive.commit_oldest();
            }
            std::hint::black_box(naive.insert(Some(dest(i)), [Some(dest(i + 1)), None]));
        }
        naive_s = naive_s.min(t0.elapsed().as_secs_f64());
    }
    DdtSide {
        fast_ns: fast_s * 1e9 / iters as f64,
        naive_ns: naive_s * 1e9 / iters as f64,
    }
}

/// The quick Figure-6 grid: every benchmark x configuration at 20
/// stages.
fn fig6_points() -> Vec<SweepPoint> {
    grid(&Workload::suite(), &[Depth::D20], &PredictorConfig::all())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = threads_from_args(&args);
    let trace_dir = trace_dir_from_args(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR9.json")
        .to_string();

    let (spec, micro_spec, ddt_iters) = if quick {
        (
            Spec {
                warmup: 5_000,
                measure: 15_000,
                seed: 42,
            },
            Spec {
                warmup: 10_000,
                measure: 90_000,
                seed: 42,
            },
            400_000,
        )
    } else {
        (
            Spec::quick(),
            Spec {
                warmup: 20_000,
                measure: 280_000,
                seed: 42,
            },
            2_000_000,
        )
    };

    // 1. Branch-path micro: packed vs preserved scalar predictor, over
    // the recorded m88ksim stream and a table-pressure stream.
    let trace = Arc::new(record_trace(
        &Workload::from(Benchmark::M88ksim),
        micro_spec,
    ));
    let reps = if quick { 7 } else { 15 };
    eprintln!(
        "perf_report: branch-path micro (packed vs scalar 2Bc-gskew, warm tables, min of {reps} alternating passes)..."
    );
    let branch = branch_micro(&conditional_branches(&trace), 8, reps);
    eprintln!(
        "  m88ksim stream: packed {:.1} ns/branch vs scalar {:.1} ns/branch ({:.2}x); streams identical",
        branch.packed_ns,
        branch.scalar_ns,
        branch.scalar_ns / branch.packed_ns,
    );
    let pressure = branch_micro(&pressure_stream(60_000, 200_000), 8, reps);
    eprintln!(
        "  pressure stream (60k sites): packed {:.1} ns/branch vs scalar {:.1} ns/branch ({:.2}x)",
        pressure.packed_ns,
        pressure.scalar_ns,
        pressure.scalar_ns / pressure.packed_ns,
    );

    // 2. Machine micro: wheel vs preserved heap baseline.
    eprintln!(
        "perf_report: machine micro (m88ksim, {} insts, wheel vs heap, best of 3 interleaved)...",
        trace_len(micro_spec)
    );
    let gskew = machine_micro(&trace, PredictorConfig::TwoLevelGskew, micro_spec);
    let arvi = machine_micro(&trace, PredictorConfig::ArviCurrent, micro_spec);
    eprintln!(
        "  gskew: wheel {:.0} ns/inst vs heap {:.0} ns/inst ({:.2}x) | \
         arvi: wheel {:.0} vs heap {:.0} ({:.2}x); figures identical",
        gskew.wheel_ns,
        gskew.heap_ns,
        gskew.heap_ns / gskew.wheel_ns,
        arvi.wheel_ns,
        arvi.heap_ns,
        arvi.heap_ns / arvi.wheel_ns,
    );

    // 3. DDT micro: optimized vs preserved naive baseline.
    eprintln!("perf_report: DDT micro ({ddt_iters} steady-state insert+commit iters)...");
    let ddt = ddt_micro(ddt_iters);
    eprintln!(
        "  insert+commit: fast {:.1} ns vs naive {:.1} ns ({:.2}x)",
        ddt.fast_ns,
        ddt.naive_ns,
        ddt.naive_ns / ddt.fast_ns
    );

    // 4. Quick fig6 sweep, replayed over shared traces, asserted
    // bit-identical to per-cell emulation.
    let points = fig6_points();
    eprintln!(
        "perf_report: quick fig6 grid ({} cells, {} threads): replay vs per-cell emulation...",
        points.len(),
        threads
    );
    let t0 = Instant::now();
    let emulated = run_sweep_emulated(&points, spec, threads, false);
    let emulated_s = t0.elapsed().as_secs_f64();
    let traces = TraceSet::record(&Workload::suite(), spec, threads, trace_dir.as_deref());
    let t0 = Instant::now();
    let replayed = run_sweep_with(&points, spec, threads, false, &traces);
    let replay_s = t0.elapsed().as_secs_f64();
    for (e, r) in emulated.iter().zip(&replayed) {
        assert_eq!(
            (e.window.cycles, e.window.committed),
            (r.window.cycles, r.window.committed),
            "trace replay diverged from live emulation on {} / {}",
            e.name,
            e.config
        );
    }
    let sweep_insts = (points.len() as u64 * (spec.warmup + spec.measure)) as f64;
    let sweep_ns = replay_s * 1e9 / sweep_insts;
    eprintln!(
        "  replayed sweep {replay_s:.2} s ({sweep_ns:.0} ns/inst overall) vs emulated {emulated_s:.2} s; bit-identical"
    );

    // 5. The same grid through the fault-isolated runner with per-cell
    // journaling: what does crash-safety cost on the happy path?
    let journal_path =
        std::env::temp_dir().join(format!("arvi-perf-sweep-{}.journal", std::process::id()));
    std::fs::remove_file(&journal_path).ok();
    let res = Resilience::new().with_journal(&journal_path);
    eprintln!("perf_report: same grid, fault-isolated + journaled (run_sweep_resilient)...");
    let t0 = Instant::now();
    let outcomes = run_sweep_resilient(&points, spec, threads, false, Some(&traces), &res);
    let resilient_s = t0.elapsed().as_secs_f64();
    let resilient =
        collect_results(&points, outcomes).expect("resilient sweep completed every cell");
    for (e, r) in replayed.iter().zip(&resilient) {
        assert_eq!(
            (e.window.cycles, e.window.committed),
            (r.window.cycles, r.window.committed),
            "resilient sweep diverged from the strict sweep on {} / {}",
            e.name,
            e.config
        );
    }
    std::fs::remove_file(&journal_path).ok();
    let resilient_overhead_pct = (resilient_s - replay_s) / replay_s * 100.0;
    eprintln!(
        "  resilient sweep {resilient_s:.2} s vs strict {replay_s:.2} s \
         ({resilient_overhead_pct:+.1}% overhead); bit-identical"
    );

    // 6. Probe overhead: the observability seam probe-off vs probe-on.
    eprintln!(
        "perf_report: probe overhead (ARVI machine, m88ksim, off vs counters vs counters+sites, best of 3 interleaved)..."
    );
    let probe = probe_micro(&trace, micro_spec);
    let counters_overhead_pct = (probe.counters_ns - probe.off_ns) / probe.off_ns * 100.0;
    let full_overhead_pct = (probe.full_ns - probe.off_ns) / probe.off_ns * 100.0;
    eprintln!(
        "  probe-off {:.0} ns/inst | counters {:.0} ns/inst ({counters_overhead_pct:+.1}%) | \
         counters+sites {:.0} ns/inst ({full_overhead_pct:+.1}%); figures identical",
        probe.off_ns, probe.counters_ns, probe.full_ns,
    );

    // 7. Grid-scale telemetry: the same quick fig6 grid through
    // run_obs_grid (counters + sites on every cell) vs the strict
    // probe-off replayed sweep.
    eprintln!(
        "perf_report: obs grid ({} cells, full counters+sites probes, {} threads)...",
        points.len(),
        threads
    );
    let t0 = Instant::now();
    let obs_grid = run_obs_grid(&points, spec, threads, Some(&traces), None, false);
    let obs_grid_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        obs_grid.completed,
        points.len(),
        "obs grid failed cells: {:?}",
        obs_grid.failed
    );
    let cell_sum: u64 = obs_grid.cells_committed.iter().flatten().sum();
    assert_eq!(
        obs_grid.counters.committed, cell_sum,
        "merged counter sums diverged from per-cell commit counts"
    );
    let obs_grid_ns = obs_grid_s * 1e9 / sweep_insts;
    let obs_grid_overhead_pct = (obs_grid_s - replay_s) / replay_s * 100.0;
    eprintln!(
        "  probed grid {obs_grid_s:.2} s ({obs_grid_ns:.0} ns/inst, \
         {obs_grid_overhead_pct:+.1}% vs strict sweep); merged sums check out"
    );

    // 8a. Sampled-vs-full error study: every suite benchmark and every
    // curated scenario (20-stage, ARVI current value) estimated at
    // 1-in-{2,4,8} sampling rates against its full-run ground truth.
    let err_workloads: Vec<Workload> = Workload::suite()
        .into_iter()
        .chain(Workload::curated_scenarios())
        .collect();
    let err_points = grid(
        &err_workloads,
        &[Depth::D20],
        &[PredictorConfig::ArviCurrent],
    );
    eprintln!(
        "perf_report: sampled-vs-full error study ({} cells: suite + curated scenarios)...",
        err_points.len()
    );
    let err_traces = TraceSet::record(&err_workloads, spec, threads, trace_dir.as_deref());
    let full = run_sweep_with(&err_points, spec, threads, false, &err_traces);
    let detail = (spec.measure / 40).max(1);
    // The study windows are short, so units get *full* functional
    // warming: a unit warm-up at least as long as the region means
    // every unit trains on its entire trace prefix, leaving only the
    // warm-model approximation and sampling variance in the error.
    let full_warm = spec.warmup + spec.measure;
    let mut rate_json = Vec::new();
    for k in [2u64, 4, 8] {
        let plan = SamplePlan::systematic(k, full_warm, detail);
        let t0 = Instant::now();
        let sweep = run_sweep_sampled(&err_points, spec, &plan, threads, false, &err_traces, None);
        let sampled_s = t0.elapsed().as_secs_f64();
        let mut rows = Vec::new();
        let mut covered = 0usize;
        let mut max_err = 0.0f64;
        let mut sum_err = 0.0f64;
        let mut units = 0usize;
        for (i, point) in err_points.iter().enumerate() {
            let report = sweep.reports[i]
                .as_ref()
                .expect("every error-study cell has a recording, so every cell samples");
            let full_ipc = full[i].window.ipc();
            let full_acc = full[i].window.cond_branches.rate();
            let rel_err = (report.ipc.mean - full_ipc).abs() / full_ipc * 100.0;
            let within = report.ipc.ci_contains(full_ipc);
            covered += within as usize;
            max_err = max_err.max(rel_err);
            sum_err += rel_err;
            units = report.units();
            rows.push(Json::obj([
                ("workload", Json::str(point.workload.name())),
                ("full_ipc", Json::Num(full_ipc)),
                ("sampled_ipc", Json::Num(report.ipc.mean)),
                ("ipc_rel_err_pct", Json::Num(rel_err)),
                ("ipc_ci_lo", Json::Num(report.ipc.ci_lo())),
                ("ipc_ci_hi", Json::Num(report.ipc.ci_hi())),
                ("within_ci", Json::Bool(within)),
                ("full_accuracy", Json::Num(full_acc)),
                ("sampled_accuracy", Json::Num(report.accuracy.mean)),
                (
                    "accuracy_abs_err",
                    Json::Num((report.accuracy.mean - full_acc).abs()),
                ),
            ]));
        }
        let cover = covered as f64 / err_points.len() as f64;
        eprintln!(
            "  1-in-{k} ({units} units/cell): mean |IPC err| {:.2}%, max {:.2}%, CI covers {}/{} cells, {:.2} s",
            sum_err / err_points.len() as f64,
            max_err,
            covered,
            err_points.len(),
            sampled_s,
        );
        rate_json.push(Json::obj([
            ("k", Json::Num(k as f64)),
            ("plan", Json::str(plan.to_string())),
            ("units_per_cell", Json::Num(units as f64)),
            ("coverage", Json::Num(1.0 / k as f64)),
            (
                "mean_abs_rel_err_pct",
                Json::Num(sum_err / err_points.len() as f64),
            ),
            ("max_abs_rel_err_pct", Json::Num(max_err)),
            ("ci_cover_fraction", Json::Num(cover)),
            ("sampled_s", Json::Num(sampled_s)),
            ("cells", Json::Arr(rows)),
        ]));
    }

    // 8b. The long-window speedup guardrail: one cell, run full-length
    // serially vs sampled at 1-in-8 with per-unit fan-out. This is the
    // case interval sampling exists for — a window too long to wait on
    // serially, turned into embarrassingly parallel units. The cell is
    // the stationary history-3 scenario: the ratio estimator's
    // assumptions hold there, so the measured error is the sampling
    // machinery's own bias, not program phase structure (the suite
    // benchmarks' phase behaviour is quantified honestly in 8a). The
    // plan's 200k-instruction warm-up covers the slowest-filling
    // microarchitectural state and its 200k detail windows amortize
    // the warm cost at 1-in-8 coverage, which is what pushes the
    // serial work reduction past 4x even on a single core. Same window
    // in quick and full mode — a guardrail metric must not change
    // meaning with the mode.
    let long_spec = Spec {
        warmup: 20_000,
        measure: 8_000_000,
        seed: 42,
    };
    let long_workload =
        Workload::scenario(arvi_synth::find("history-3").expect("curated scenario exists"));
    eprintln!(
        "perf_report: long-window cell (history-3, {} measured insts): full serial vs sampled 1-in-8 on {} threads...",
        long_spec.measure, threads
    );
    let long_trace = Arc::new(record_trace(&long_workload, long_spec));
    let long_params = SimParams::for_depth(Depth::D20);
    let long_plan = SamplePlan::systematic(8, 200_000, 200_000);
    let mut full_long_s = f64::INFINITY;
    let mut sampled_long_s = f64::INFINITY;
    let mut full_long_ipc = 0.0;
    let mut long_report = None;
    for _ in 0..2 {
        let t0 = Instant::now();
        let r = run_one_traced(
            &long_trace,
            Depth::D20,
            PredictorConfig::ArviCurrent,
            long_spec,
        );
        full_long_s = full_long_s.min(t0.elapsed().as_secs_f64());
        full_long_ipc = r.window.ipc();

        let t0 = Instant::now();
        let report = sample_region(
            &long_trace,
            &long_params,
            PredictorConfig::ArviCurrent,
            &long_plan,
            long_spec.warmup,
            long_spec.measure,
            long_spec.seed,
            threads,
        )
        .expect("sampling the long window");
        sampled_long_s = sampled_long_s.min(t0.elapsed().as_secs_f64());
        long_report = Some(report);
    }
    let long_report = long_report.unwrap();
    let sampled_speedup = full_long_s / sampled_long_s;
    let sampled_ipc_abs_error =
        (long_report.ipc.mean - full_long_ipc).abs() / full_long_ipc * 100.0;
    let long_within = long_report.ipc.ci_contains(full_long_ipc);
    eprintln!(
        "  full serial {full_long_s:.2} s (IPC {full_long_ipc:.4}) vs sampled {sampled_long_s:.2} s \
         (IPC {:.4} ± {:.4}, {} units): {sampled_speedup:.1}x speedup, |IPC err| {sampled_ipc_abs_error:.2}%, \
         true value {} the 95% CI",
        long_report.ipc.mean,
        long_report.ipc.ci_half_width(),
        long_report.units(),
        if long_within { "inside" } else { "OUTSIDE" },
    );

    let side = |m: &MachineSide| {
        Json::obj([
            ("wheel_ns_per_inst", Json::Num(m.wheel_ns)),
            ("heap_baseline_ns_per_inst", Json::Num(m.heap_ns)),
            ("speedup_vs_heap", Json::Num(m.heap_ns / m.wheel_ns)),
            ("cycle_identical", Json::Bool(true)),
        ])
    };
    let report = Json::obj([
        ("pr", Json::Num(9.0)),
        (
            "title",
            Json::str("sampled simulation: interval sampling, intra-run parallelism and CIs"),
        ),
        (
            "host_cores",
            Json::Num(arvi_bench::default_threads() as f64),
        ),
        ("quick", Json::Bool(quick)),
        (
            "branch_path",
            Json::obj([
                ("workload", Json::str("m88ksim")),
                ("update_window_branches", Json::Num(8.0)),
                ("packed_ns_per_branch", Json::Num(branch.packed_ns)),
                ("scalar_baseline_ns_per_branch", Json::Num(branch.scalar_ns)),
                (
                    "speedup_vs_scalar",
                    Json::Num(branch.scalar_ns / branch.packed_ns),
                ),
                ("stream_identical", Json::Bool(true)),
                (
                    "pressure",
                    Json::obj([
                        ("sites", Json::Num(60_000.0)),
                        ("packed_ns_per_branch", Json::Num(pressure.packed_ns)),
                        (
                            "scalar_baseline_ns_per_branch",
                            Json::Num(pressure.scalar_ns),
                        ),
                        (
                            "speedup_vs_scalar",
                            Json::Num(pressure.scalar_ns / pressure.packed_ns),
                        ),
                    ]),
                ),
            ]),
        ),
        (
            "machine",
            Json::obj([
                ("workload", Json::str("m88ksim")),
                (
                    "insts",
                    Json::Num((micro_spec.warmup + micro_spec.measure) as f64),
                ),
                ("depth_stages", Json::Num(20.0)),
                ("gskew", side(&gskew)),
                ("arvi_current", side(&arvi)),
            ]),
        ),
        (
            "ddt",
            Json::obj([
                ("iters", Json::Num(ddt_iters as f64)),
                ("fast_ns_per_insert", Json::Num(ddt.fast_ns)),
                ("naive_ns_per_insert", Json::Num(ddt.naive_ns)),
                ("speedup_vs_naive", Json::Num(ddt.naive_ns / ddt.fast_ns)),
            ]),
        ),
        (
            "sweep",
            Json::obj([
                (
                    "grid",
                    Json::str("fig6 quick (8 benchmarks x 4 configs, 20-stage)"),
                ),
                ("points", Json::Num(points.len() as f64)),
                ("threads", Json::Num(threads as f64)),
                ("replayed_s", Json::Num(replay_s)),
                ("emulated_s", Json::Num(emulated_s)),
                ("ns_per_inst", Json::Num(sweep_ns)),
                ("bit_identical", Json::Bool(true)),
                ("resilient_s", Json::Num(resilient_s)),
                ("resilient_overhead_pct", Json::Num(resilient_overhead_pct)),
                ("resilient_bit_identical", Json::Bool(true)),
            ]),
        ),
        (
            "probe",
            Json::obj([
                ("workload", Json::str("m88ksim")),
                ("config", Json::str("arvi_current")),
                (
                    "insts",
                    Json::Num((micro_spec.warmup + micro_spec.measure) as f64),
                ),
                ("off_ns_per_inst", Json::Num(probe.off_ns)),
                ("counters_ns_per_inst", Json::Num(probe.counters_ns)),
                ("counters_overhead_pct", Json::Num(counters_overhead_pct)),
                ("full_ns_per_inst", Json::Num(probe.full_ns)),
                ("full_overhead_pct", Json::Num(full_overhead_pct)),
                ("bit_identical", Json::Bool(true)),
            ]),
        ),
        (
            "obs_grid",
            Json::obj([
                (
                    "grid",
                    Json::str("fig6 quick (8 benchmarks x 4 configs, 20-stage)"),
                ),
                ("cells", Json::Num(points.len() as f64)),
                ("threads", Json::Num(threads as f64)),
                ("probed_s", Json::Num(obs_grid_s)),
                ("ns_per_inst", Json::Num(obs_grid_ns)),
                (
                    "overhead_pct_vs_strict_sweep",
                    Json::Num(obs_grid_overhead_pct),
                ),
                ("counter_sums_match_cells", Json::Bool(true)),
            ]),
        ),
        (
            "sampled",
            Json::obj([
                (
                    "error_study",
                    Json::obj([
                        (
                            "grid",
                            Json::str("suite + curated scenarios (20-stage, arvi current value)"),
                        ),
                        ("cells", Json::Num(err_points.len() as f64)),
                        ("detail_insts", Json::Num(detail as f64)),
                        ("rates", Json::Arr(rate_json)),
                    ]),
                ),
                (
                    "long_window",
                    Json::obj([
                        ("workload", Json::str("history-3")),
                        ("measure_insts", Json::Num(long_spec.measure as f64)),
                        ("plan", Json::str(long_plan.to_string())),
                        ("threads", Json::Num(threads as f64)),
                        ("full_serial_s", Json::Num(full_long_s)),
                        ("sampled_s", Json::Num(sampled_long_s)),
                        ("speedup", Json::Num(sampled_speedup)),
                        ("full_ipc", Json::Num(full_long_ipc)),
                        ("sampled_ipc", Json::Num(long_report.ipc.mean)),
                        (
                            "ipc_ci_half_width",
                            Json::Num(long_report.ipc.ci_half_width()),
                        ),
                        ("ipc_abs_err_pct", Json::Num(sampled_ipc_abs_error)),
                        ("within_ci", Json::Bool(long_within)),
                        ("units", Json::Num(long_report.units() as f64)),
                    ]),
                ),
            ]),
        ),
        // Flat metrics for the CI perf guardrail (perf_guard).
        (
            "guardrail",
            Json::obj([
                ("branch_gskew_ns_per_branch", Json::Num(branch.packed_ns)),
                (
                    "branch_gskew_speedup_vs_scalar",
                    Json::Num(branch.scalar_ns / branch.packed_ns),
                ),
                (
                    "branch_pressure_speedup_vs_scalar",
                    Json::Num(pressure.scalar_ns / pressure.packed_ns),
                ),
                ("machine_gskew_ns_per_inst", Json::Num(gskew.wheel_ns)),
                ("machine_arvi_ns_per_inst", Json::Num(arvi.wheel_ns)),
                (
                    "machine_gskew_speedup_vs_heap",
                    Json::Num(gskew.heap_ns / gskew.wheel_ns),
                ),
                (
                    "machine_arvi_speedup_vs_heap",
                    Json::Num(arvi.heap_ns / arvi.wheel_ns),
                ),
                ("ddt_insert_ns", Json::Num(ddt.fast_ns)),
                (
                    "ddt_insert_speedup_vs_naive",
                    Json::Num(ddt.naive_ns / ddt.fast_ns),
                ),
                ("sweep_ns_per_inst", Json::Num(sweep_ns)),
                ("sampled_speedup_vs_full", Json::Num(sampled_speedup)),
                ("sampled_ipc_abs_error", Json::Num(sampled_ipc_abs_error)),
            ]),
        ),
    ]);
    write_report(std::path::Path::new(&out_path), &report).expect("write BENCH json");
    eprintln!("perf_report: wrote {out_path}");
    println!("{}", report.render());
}

//! Performance report: quantifies the record-once / replay-many trace
//! subsystem and emits a machine-readable `BENCH_PR2.json` so the perf
//! trajectory is tracked PR over PR (PR 1's DDT/parallel-sweep numbers
//! live on in `BENCH_PR1.json` and the criterion suite).
//!
//! 1. **Stream codec** — per-instruction wall cost of live emulation vs
//!    recording (emulate + encode) vs replay (chunk decode from the
//!    shared in-memory trace), plus the encoded density in bytes per
//!    instruction.
//! 2. **Sweep** — the quick Figure-6 grid (8 benchmarks x 4 configs,
//!    20-stage) run with per-cell re-emulation versus record-once /
//!    replay-many, asserting the two produce bit-identical results.
//!    Reported both ways: including the one-time recording cost, and
//!    replay-only (the steady state once traces are on disk via
//!    `--trace-dir`, where later runs skip recording entirely).
//!
//! Usage: `perf_report [--quick] [--threads N] [--trace-dir DIR] [--out PATH]`

use std::sync::Arc;
use std::time::Instant;

use arvi_bench::{
    grid, run_sweep_emulated, run_sweep_with, threads_from_args, trace_dir_from_args, trace_len,
    write_report, Json, Spec, SweepPoint, TraceSet, Workload,
};
use arvi_isa::Emulator;
use arvi_sim::{Depth, PredictorConfig};
use arvi_trace::{Trace, TraceReplayer};
use arvi_workloads::Benchmark;

struct StreamResult {
    insts: u64,
    emulate_ns: f64,
    record_ns: f64,
    replay_ns: f64,
    bytes_per_inst: f64,
}

/// Times the three ways of producing the committed stream for one
/// workload window.
fn stream_micro(bench: Benchmark, seed: u64, insts: u64) -> StreamResult {
    // Live emulation, the per-cell baseline.
    let mut emu = Emulator::new(bench.program(seed));
    let t0 = Instant::now();
    for _ in 0..insts {
        std::hint::black_box(emu.step().expect("workload runs indefinitely"));
    }
    let emulate_ns = t0.elapsed().as_secs_f64() * 1e9 / insts as f64;

    // Record once (emulate + encode + checksum).
    let emu = Emulator::new(bench.program(seed));
    let t0 = Instant::now();
    let trace = Arc::new(Trace::record(emu, insts, bench.name(), seed));
    let record_ns = t0.elapsed().as_secs_f64() * 1e9 / insts as f64;
    let bytes_per_inst = trace.encoded_bytes() as f64 / insts as f64;

    // Replay many (chunk-at-a-time decode of the shared recording).
    let replayer = TraceReplayer::new(Arc::clone(&trace));
    let t0 = Instant::now();
    let mut n = 0u64;
    for d in replayer {
        std::hint::black_box(d);
        n += 1;
    }
    assert_eq!(n, insts);
    let replay_ns = t0.elapsed().as_secs_f64() * 1e9 / insts as f64;

    StreamResult {
        insts,
        emulate_ns,
        record_ns,
        replay_ns,
        bytes_per_inst,
    }
}

/// The quick Figure-6 grid: every benchmark x configuration at 20
/// stages.
fn fig6_points() -> Vec<SweepPoint> {
    grid(&Workload::suite(), &[Depth::D20], &PredictorConfig::all())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = threads_from_args(&args);
    let trace_dir = trace_dir_from_args(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR2.json")
        .to_string();

    let spec = if quick {
        Spec {
            warmup: 5_000,
            measure: 15_000,
            seed: 42,
        }
    } else {
        Spec::quick()
    };

    let stream_insts = trace_len(spec);
    eprintln!("perf_report: stream codec micro (m88ksim, {stream_insts} insts, median of 3)...");
    // The shared container host is noisy; report the run with the median
    // replay cost.
    let mut runs: Vec<StreamResult> = (0..3)
        .map(|_| stream_micro(Benchmark::M88ksim, spec.seed, stream_insts))
        .collect();
    runs.sort_by(|a, b| a.replay_ns.total_cmp(&b.replay_ns));
    let s = runs.remove(1);
    let stream_speedup = s.emulate_ns / s.replay_ns;
    eprintln!(
        "  emulate {:.1} ns/inst | record {:.1} ns/inst | replay {:.1} ns/inst \
         ({stream_speedup:.2}x vs emulate) | {:.2} B/inst",
        s.emulate_ns, s.record_ns, s.replay_ns, s.bytes_per_inst
    );

    let points = fig6_points();
    eprintln!(
        "perf_report: quick fig6 grid ({} cells, {} threads): per-cell emulation vs shared trace replay...",
        points.len(),
        threads
    );
    let t0 = Instant::now();
    let emulated = run_sweep_emulated(&points, spec, threads, false);
    let emulated_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let traces = TraceSet::record(&Workload::suite(), spec, threads, trace_dir.as_deref());
    let record_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let replayed = run_sweep_with(&points, spec, threads, false, &traces);
    let replay_s = t0.elapsed().as_secs_f64();

    for (e, r) in emulated.iter().zip(&replayed) {
        assert_eq!(
            (
                e.window.cycles,
                e.window.committed,
                e.window.cond_branches.correct()
            ),
            (
                r.window.cycles,
                r.window.committed,
                r.window.cond_branches.correct()
            ),
            "trace replay diverged from live emulation on {} / {}",
            e.name,
            e.config
        );
    }
    let speedup_replay_only = emulated_s / replay_s;
    let speedup_with_record = emulated_s / (record_s + replay_s);
    eprintln!(
        "  emulated {emulated_s:.2} s -> record {record_s:.2} s + replay {replay_s:.2} s \
         ({speedup_with_record:.2}x incl. recording, {speedup_replay_only:.2}x replay-only); \
         results bit-identical"
    );

    let report = Json::obj([
        ("pr", Json::Num(2.0)),
        (
            "title",
            Json::str("record-once / replay-many trace subsystem"),
        ),
        (
            "stream",
            Json::obj([
                ("workload", Json::str("m88ksim")),
                ("insts", Json::Num(s.insts as f64)),
                ("emulate_ns_per_inst", Json::Num(s.emulate_ns)),
                ("record_ns_per_inst", Json::Num(s.record_ns)),
                ("replay_ns_per_inst", Json::Num(s.replay_ns)),
                ("encoded_bytes_per_inst", Json::Num(s.bytes_per_inst)),
                ("replay_vs_emulate_speedup", Json::Num(stream_speedup)),
            ]),
        ),
        (
            "sweep",
            Json::obj([
                (
                    "host_cores",
                    Json::Num(arvi_bench::default_threads() as f64),
                ),
                (
                    "grid",
                    Json::str("fig6 quick (8 benchmarks x 4 configs, 20-stage)"),
                ),
                ("points", Json::Num(points.len() as f64)),
                ("warmup", Json::Num(spec.warmup as f64)),
                ("measure", Json::Num(spec.measure as f64)),
                ("threads", Json::Num(threads as f64)),
                ("emulated_s", Json::Num(emulated_s)),
                ("record_s", Json::Num(record_s)),
                ("replay_s", Json::Num(replay_s)),
                ("speedup_including_record", Json::Num(speedup_with_record)),
                ("speedup_replay_only", Json::Num(speedup_replay_only)),
                ("bit_identical", Json::Bool(true)),
            ]),
        ),
    ]);
    write_report(std::path::Path::new(&out_path), &report).expect("write BENCH json");
    eprintln!("perf_report: wrote {out_path}");
    println!("{}", report.render());
}

//! Characterizes every predictor across the synthetic-scenario grid and
//! emits the paper-style separation evidence as JSON + a markdown table
//! (`BENCH_PR3.json` by default).
//!
//! Two layers, both fed from one shared recording per scenario
//! (record-once / replay-many):
//!
//! 1. **Standalone direction predictors** — Bimodal, Gshare, Local and
//!    2Bc-gskew run over the recorded conditional-branch stream with
//!    immediate update: the predictor-only view, no pipeline effects.
//! 2. **Machine configurations** — the full timing simulator at 20
//!    stages for each `PredictorConfig` (two-level 2Bc-gskew baseline
//!    vs the DDT-based ARVI paths), giving accuracy and normalized IPC.
//!
//! The headline check mirrors the paper's qualitative claim: on
//! data-dependent-branch scenarios the ARVI path must beat the **best**
//! baseline from either layer, while on fixed-bias scenarios every
//! predictor converges to the bias.
//!
//! Usage: `synth_report [--quick] [--threads N] [--trace-dir DIR] [--out PATH]
//!                      [--scenario NAME_OR_SPEC]... [--scenario-file FILE]
//!                      [--probe counters,sites,trace] [--obs-out FILE]
//!                      [--trace-cycles START:END] [--top-sites N]
//!                      [--list-scenarios] [--list-benchmarks]`

use std::sync::Arc;

use arvi_bench::{
    grid, handle_list_flags, maybe_obs_pass, run_sweep_with, scenario_workloads_from_args,
    threads_from_args, trace_dir_from_args, write_report, Json, Spec, TraceSet, Workload,
};
use arvi_predict::{Bimodal, DirectionPredictor, Gshare, GskewConfig, Local, TwoBcGskew};
use arvi_sim::{Depth, PredictorConfig, SimResult};
use arvi_trace::{Trace, TraceReplayer};

/// The standalone baselines, freshly constructed per scenario. Sizes are
/// in the 32 KB class of the machine's level-2 tables (reported as
/// `storage_bits` in the JSON).
fn standalone_baselines() -> Vec<Box<dyn DirectionPredictor>> {
    vec![
        Box::new(Bimodal::new(17)),
        Box::new(Gshare::new(17, 13)),
        Box::new(Local::new(12, 10, 14)),
        Box::new(TwoBcGskew::new(GskewConfig::level2())),
    ]
}

/// Accuracy of one standalone predictor over the recorded stream:
/// branches inside the warmup train but do not count.
fn standalone_accuracy(
    predictor: &mut dyn DirectionPredictor,
    trace: &Arc<Trace>,
    spec: Spec,
) -> f64 {
    let mut correct = 0u64;
    let mut total = 0u64;
    for d in TraceReplayer::new(Arc::clone(trace)) {
        let Some(branch) = d.branch else { continue };
        if !branch.conditional {
            continue;
        }
        let pc = d.byte_pc();
        let p = predictor.predict(pc);
        predictor.spec_push(branch.taken);
        predictor.update(pc, &p, branch.taken);
        if d.seq >= spec.warmup {
            correct += (p.taken == branch.taken) as u64;
            total += 1;
        }
        if d.seq >= spec.warmup + spec.measure {
            break;
        }
    }
    correct as f64 / total.max(1) as f64
}

struct ScenarioReport {
    workload: Workload,
    /// `(name, storage_bits, accuracy)` per standalone baseline.
    standalone: Vec<(&'static str, usize, f64)>,
    /// Machine results in `PredictorConfig::all()` order.
    machine: Vec<SimResult>,
}

impl ScenarioReport {
    fn class(&self) -> &'static str {
        self.workload
            .as_scenario()
            .map(|s| s.branch.tag())
            .unwrap_or("bench")
    }

    fn machine_accuracy(&self, config: PredictorConfig) -> f64 {
        let ci = PredictorConfig::all()
            .iter()
            .position(|&c| c == config)
            .expect("known config");
        self.machine[ci].accuracy()
    }

    /// The best non-ARVI accuracy across both layers.
    fn best_baseline(&self) -> f64 {
        self.standalone
            .iter()
            .map(|&(_, _, acc)| acc)
            .chain([self.machine_accuracy(PredictorConfig::TwoLevelGskew)])
            .fold(0.0, f64::max)
    }

    /// ARVI-current accuracy minus the best baseline.
    fn margin(&self) -> f64 {
        self.machine_accuracy(PredictorConfig::ArviCurrent) - self.best_baseline()
    }

    /// Max pairwise accuracy spread across the four machine
    /// configurations (the convergence measure for bias scenarios: on an
    /// irreducible bias the ARVI paths must not separate from the
    /// two-level baseline). Standalone predictors are excluded — a lone
    /// gshare is *expected* to dilute a pure bias with history noise.
    fn spread(&self) -> f64 {
        let accs: Vec<f64> = self.machine.iter().map(|r| r.accuracy()).collect();
        let lo = accs.iter().copied().fold(1.0, f64::min);
        let hi = accs.iter().copied().fold(0.0, f64::max);
        hi - lo
    }
}

fn markdown_table(reports: &[ScenarioReport]) -> String {
    let mut out = String::new();
    out.push_str(
        "| scenario | class | bimodal | gshare | local | 2Bc-gskew | 2-level gskew | \
         arvi current | arvi perfect | margin |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
    for r in reports {
        out.push_str(&format!(
            "| {} | {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {:+.4} |\n",
            r.workload.name(),
            r.class(),
            r.standalone[0].2,
            r.standalone[1].2,
            r.standalone[2].2,
            r.standalone[3].2,
            r.machine_accuracy(PredictorConfig::TwoLevelGskew),
            r.machine_accuracy(PredictorConfig::ArviCurrent),
            r.machine_accuracy(PredictorConfig::ArviPerfect),
            r.margin(),
        ));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if handle_list_flags(&args) {
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let threads = threads_from_args(&args);
    let trace_dir = trace_dir_from_args(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR3.json")
        .to_string();
    let spec = if quick {
        Spec::quick()
    } else {
        Spec::default()
    };

    let workloads = match scenario_workloads_from_args(&args) {
        Ok(Some(w)) => w,
        Ok(None) => Workload::curated_scenarios(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "synth_report: {} scenarios x ({} standalone + {} machine configs), \
         {}+{} window, {threads} threads",
        workloads.len(),
        standalone_baselines().len(),
        PredictorConfig::all().len(),
        spec.warmup,
        spec.measure,
    );

    // One recording per scenario feeds both layers and all configs.
    let traces = TraceSet::record(&workloads, spec, threads, trace_dir.as_deref());
    let points = grid(&workloads, &[Depth::D20], &PredictorConfig::all());
    let machine = run_sweep_with(&points, spec, threads, true, &traces);

    let configs = PredictorConfig::all().len();
    let reports: Vec<ScenarioReport> = workloads
        .iter()
        .enumerate()
        .map(|(wi, workload)| {
            let trace = traces.get(workload).expect("recorded above");
            let standalone = standalone_baselines()
                .iter_mut()
                .map(|p| {
                    (
                        p.name(),
                        p.storage_bits(),
                        standalone_accuracy(p.as_mut(), trace, spec),
                    )
                })
                .collect();
            ScenarioReport {
                workload: workload.clone(),
                standalone,
                machine: machine[wi * configs..(wi + 1) * configs].to_vec(),
            }
        })
        .collect();

    println!("## Synthetic-scenario predictor characterization (20-stage)\n");
    println!("{}", markdown_table(&reports));

    // The paper-style qualitative separation.
    let datadep: Vec<&ScenarioReport> = reports.iter().filter(|r| r.class() == "datadep").collect();
    let bias: Vec<&ScenarioReport> = reports.iter().filter(|r| r.class() == "bias").collect();
    let min_margin = datadep
        .iter()
        .map(|r| r.margin())
        .fold(f64::INFINITY, f64::min);
    let max_spread = bias.iter().map(|r| r.spread()).fold(0.0, f64::max);
    if !datadep.is_empty() {
        println!(
            "separation: min ARVI margin over best baseline on datadep scenarios = {min_margin:+.4}"
        );
    }
    if !bias.is_empty() {
        println!(
            "convergence: max machine-config spread on fixed-bias scenarios = {max_spread:.4}"
        );
    }

    let scenario_json: Vec<Json> = reports
        .iter()
        .map(|r| {
            Json::obj([
                ("name", Json::str(r.workload.name())),
                (
                    "spec",
                    match r.workload.as_scenario() {
                        Some(s) => Json::str(s.to_string()),
                        None => Json::Null,
                    },
                ),
                ("class", Json::str(r.class())),
                (
                    "standalone",
                    Json::Arr(
                        r.standalone
                            .iter()
                            .map(|&(name, bits, acc)| {
                                Json::obj([
                                    ("predictor", Json::str(name)),
                                    ("storage_bits", Json::Num(bits as f64)),
                                    ("accuracy", Json::Num(acc)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "machine",
                    Json::Arr(
                        r.machine
                            .iter()
                            .map(|m| {
                                Json::obj([
                                    ("config", Json::str(m.config.label())),
                                    ("accuracy", Json::Num(m.accuracy())),
                                    ("ipc", Json::Num(m.ipc())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("best_baseline", Json::Num(r.best_baseline())),
                ("arvi_margin", Json::Num(r.margin())),
                ("spread", Json::Num(r.spread())),
            ])
        })
        .collect();

    let report = Json::obj([
        ("pr", Json::Num(3.0)),
        (
            "title",
            Json::str("arvi-synth scenario grid: predictor characterization"),
        ),
        ("depth", Json::str("20-stage")),
        ("warmup", Json::Num(spec.warmup as f64)),
        ("measure", Json::Num(spec.measure as f64)),
        ("seed", Json::Num(spec.seed as f64)),
        ("threads", Json::Num(threads as f64)),
        ("scenarios", Json::Arr(scenario_json)),
        (
            "separation",
            Json::obj([
                ("datadep_min_arvi_margin", Json::Num(min_margin)),
                ("bias_max_spread", Json::Num(max_spread)),
                // Only claim the separation when both halves of the
                // evidence were actually measured: a scenario set with
                // no datadep (or no bias) scenarios must not report a
                // vacuous `true` (min_margin folds from +inf, max_spread
                // from 0.0).
                (
                    "qualitative_separation",
                    Json::Bool(
                        !datadep.is_empty()
                            && !bias.is_empty()
                            && min_margin > 0.0
                            && max_spread < 0.05,
                    ),
                ),
            ]),
        ),
    ]);
    write_report(std::path::Path::new(&out_path), &report).expect("write BENCH json");
    eprintln!("synth_report: wrote {out_path}");

    // The characterization's anchor cell: 20-stage, ARVI current value.
    maybe_obs_pass(
        &args,
        &workloads,
        Depth::D20,
        PredictorConfig::ArviCurrent,
        spec,
        Some(&traces),
    );
}

//! Regenerates the paper's configuration tables (Tables 1-4).

fn main() {
    for (title, table) in arvi_bench::paper_tables() {
        println!("== {title} ==\n{}\n", table.to_text());
    }
}

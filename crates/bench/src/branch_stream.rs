//! Shared branch-stream plumbing for the branch-path measurement
//! surfaces (`perf_report`'s branch micro and the `branch_path`
//! criterion group): one stream extraction and one delayed-update
//! protocol driver, so the guardrail and the bench can never drift
//! onto different protocols. (`tests/predictor_equivalence.rs` keeps
//! its own *lockstep* loop on purpose — it asserts per-branch equality
//! with branch-index diagnostics, which a one-predictor-at-a-time
//! driver cannot express — but shares the stream extraction.)

use std::collections::VecDeque;

use arvi_predict::{DirectionPredictor, Prediction};
use arvi_trace::{Trace, TraceReader};

use crate::baseline::ScalarDirectionPredictor;

/// The recorded conditional-branch stream of a trace, as
/// `(byte_pc, taken)` pairs.
pub fn conditional_branches(trace: &Trace) -> Vec<(u64, bool)> {
    TraceReader::new(trace)
        .filter_map(|d| {
            let b = d.branch?;
            b.conditional.then_some((d.byte_pc(), b.taken))
        })
        .collect()
}

/// The outcome of one pass over a branch stream: the aggregate
/// accuracy count plus an order-sensitive FNV-1a hash of the emitted
/// direction stream, so two passes can be compared branch-for-branch
/// without retaining both streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRun {
    /// Correct predictions.
    pub correct: u64,
    /// FNV-1a over the predicted directions, in stream order.
    pub stream_hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_step(h: u64, bit: bool) -> u64 {
    (h ^ (bit as u64 + 1)).wrapping_mul(FNV_PRIME)
}

/// Drives a packed (index-carrying) predictor over `stream` with the
/// machine-shaped delayed-update protocol: history advances
/// speculatively at prediction, training drains from a FIFO `window`
/// branches later (the commit-order decision queue), and the tail is
/// drained at end of stream. `window == 0` degenerates to immediate
/// update.
pub fn run_delayed<P: DirectionPredictor>(
    p: &mut P,
    stream: &[(u64, bool)],
    window: usize,
) -> StreamRun {
    let mut in_flight: VecDeque<(u64, bool, Prediction)> = VecDeque::new();
    let mut correct = 0u64;
    let mut hash = FNV_OFFSET;
    for &(pc, taken) in stream {
        let d = p.predict(pc);
        p.spec_push(taken);
        correct += (d.taken == taken) as u64;
        hash = fnv_step(hash, d.taken);
        in_flight.push_back((pc, taken, d));
        if in_flight.len() > window {
            let (cpc, ct, cd) = in_flight.pop_front().expect("non-empty");
            p.update(cpc, &cd, ct);
        }
    }
    while let Some((cpc, ct, cd)) = in_flight.pop_front() {
        p.update(cpc, &cd, ct);
    }
    StreamRun {
        correct,
        stream_hash: hash,
    }
}

/// [`run_delayed`] for the preserved scalar (checkpoint-re-hashing)
/// baselines — same protocol, same hash, so the two sides' `StreamRun`s
/// are directly comparable.
pub fn run_delayed_scalar<S: ScalarDirectionPredictor>(
    p: &mut S,
    stream: &[(u64, bool)],
    window: usize,
) -> StreamRun {
    let mut in_flight: VecDeque<(u64, bool, u64)> = VecDeque::new();
    let mut correct = 0u64;
    let mut hash = FNV_OFFSET;
    for &(pc, taken) in stream {
        let (dir, ckpt) = p.predict(pc);
        p.spec_push(taken);
        correct += (dir == taken) as u64;
        hash = fnv_step(hash, dir);
        in_flight.push_back((pc, taken, ckpt));
        if in_flight.len() > window {
            let (cpc, ct, cc) = in_flight.pop_front().expect("non-empty");
            p.update(cpc, cc, ct);
        }
    }
    while let Some((cpc, ct, cc)) = in_flight.pop_front() {
        p.update(cpc, cc, ct);
    }
    StreamRun {
        correct,
        stream_hash: hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::ScalarTwoBcGskew;
    use arvi_predict::{GskewConfig, TwoBcGskew};

    fn noise_stream(n: usize) -> Vec<(u64, bool)> {
        let mut x = 0x9E37_79B9u64;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((x >> 20) & 0xFFF) << 2, (x >> 40) & 0b11 != 0)
            })
            .collect()
    }

    #[test]
    fn hash_is_order_sensitive() {
        assert_ne!(
            fnv_step(fnv_step(FNV_OFFSET, true), false),
            fnv_step(fnv_step(FNV_OFFSET, false), true)
        );
    }

    #[test]
    fn packed_and_scalar_drivers_agree() {
        let stream = noise_stream(5_000);
        for window in [0usize, 8] {
            let packed = run_delayed(&mut TwoBcGskew::new(GskewConfig::level1()), &stream, window);
            let scalar = run_delayed_scalar(
                &mut ScalarTwoBcGskew::new(GskewConfig::level1()),
                &stream,
                window,
            );
            assert_eq!(packed, scalar, "window {window}");
        }
    }

    #[test]
    fn window_zero_is_immediate_update() {
        let stream = noise_stream(2_000);
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        let delayed = run_delayed(&mut p, &stream, 0);
        let (correct, total) =
            arvi_predict::traits::run_immediate(&mut TwoBcGskew::new(GskewConfig::level1()), {
                stream.iter().copied()
            });
        assert_eq!(total, stream.len() as u64);
        assert_eq!(delayed.correct, correct);
    }
}

//! Structured execution telemetry for sweeps.
//!
//! Two surfaces, both opt-in from the CLI:
//!
//! - `--events-out PATH`: an append-only JSONL span log. Every line is
//!   one self-contained object `{"t_us":..,"event":..,...}` — cell
//!   start/end (with record/replay/live phase and duration), resume
//!   hits, trace quarantines, record-phase spans, sweep boundaries.
//!   One event per line means a torn write (crash mid-append) damages
//!   at most the final line, same contract as the sweep journal.
//! - `--metrics-out PATH`: a Prometheus-style text exposition rewritten
//!   after every sweep — the scrape surface a future `arvi-serve`
//!   schedules against. Counters are cumulative over the process, so a
//!   binary that runs several grids (e.g. `experiments`) exports the
//!   union.
//!
//! Telemetry never fails a sweep: emission errors warn on stderr and
//! the run continues. Only *opening* the sinks (at flag-parse time) is
//! an error the user sees as such.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::report::{io_error_at, write_text, Json};

/// An append-only JSONL event log. Timestamps are microseconds since
/// the log was opened (monotonic clock — wall time would make reruns
/// incomparable and is deliberately absent).
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    start: Instant,
    file: Mutex<std::fs::File>,
}

impl EventLog {
    /// Opens (truncating) the log at `path`, creating missing parent
    /// directories. Errors carry the offending path.
    pub fn create(path: &Path) -> std::io::Result<EventLog> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| io_error_at(parent, e))?;
        }
        let file = std::fs::File::create(path).map_err(|e| io_error_at(path, e))?;
        Ok(EventLog {
            path: path.to_path_buf(),
            start: Instant::now(),
            file: Mutex::new(file),
        })
    }

    /// Where the log writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event line. Write failures warn rather than fail —
    /// losing telemetry must never lose sweep results.
    pub fn emit(&self, event: &str, fields: Vec<(String, Json)>) {
        let mut obj = vec![
            (
                "t_us".to_string(),
                Json::Num(self.start.elapsed().as_micros() as f64),
            ),
            ("event".to_string(), Json::str(event)),
        ];
        obj.extend(fields);
        let line = Json::Obj(obj).render_compact();
        let mut f = self.file.lock().unwrap();
        if let Err(e) = writeln!(f, "{line}").and_then(|()| f.flush()) {
            eprintln!(
                "warning: event log write failed ({}: {e}); continuing",
                self.path.display()
            );
        }
    }
}

/// Cumulative sweep metrics behind the Prometheus export.
#[derive(Debug, Default)]
struct MetricsAgg {
    sweeps: u64,
    /// Cells by normalized outcome label, first-seen order.
    cells: Vec<(String, u64)>,
    cell_seconds_sum: f64,
    cell_seconds_count: u64,
    resumed: u64,
    /// Degraded cells by degradation tag.
    degraded: Vec<(String, u64)>,
    quarantines: u64,
    record_seconds: f64,
}

fn bump(rows: &mut Vec<(String, u64)>, key: &str) {
    match rows.iter_mut().find(|(k, _)| k == key) {
        Some((_, n)) => *n += 1,
        None => rows.push((key.to_string(), 1)),
    }
}

/// The telemetry sinks a resilient sweep reports into: an optional
/// event log and an optional metrics file. Shared (`Arc`) between the
/// sweep layer and the trace recorder; all methods are no-ops for
/// sinks that were not requested.
#[derive(Debug, Default)]
pub struct SweepTelemetry {
    events: Option<EventLog>,
    metrics_path: Option<PathBuf>,
    agg: Mutex<MetricsAgg>,
}

impl SweepTelemetry {
    /// Builds telemetry from the CLI paths; `None` for both is a valid
    /// (fully inert) instance.
    pub fn from_paths(
        events: Option<&Path>,
        metrics: Option<&Path>,
    ) -> std::io::Result<SweepTelemetry> {
        Ok(SweepTelemetry {
            events: events.map(EventLog::create).transpose()?,
            metrics_path: metrics.map(Path::to_path_buf),
            agg: Mutex::new(MetricsAgg::default()),
        })
    }

    /// The event log, if one was requested.
    pub fn events(&self) -> Option<&EventLog> {
        self.events.as_ref()
    }

    /// Emits an event (no-op without an event log).
    pub fn event(&self, name: &str, fields: Vec<(String, Json)>) {
        if let Some(log) = &self.events {
            log.emit(name, fields);
        }
    }

    /// Records one finished cell: outcome label (normalized, e.g.
    /// `"ok"`), duration if known, whether it was a resume hit, and the
    /// degradation tag if any.
    pub fn cell_finished(
        &self,
        outcome: &str,
        duration: Option<Duration>,
        resumed: bool,
        degraded: Option<&str>,
    ) {
        let mut agg = self.agg.lock().unwrap();
        bump(&mut agg.cells, outcome);
        if let Some(d) = duration {
            agg.cell_seconds_sum += d.as_secs_f64();
            agg.cell_seconds_count += 1;
        }
        if resumed {
            agg.resumed += 1;
        }
        if let Some(tag) = degraded {
            bump(&mut agg.degraded, tag);
        }
    }

    /// Records (and logs) a trace quarantine.
    pub fn quarantine(&self, file: &str, error: &str, action: &str) {
        self.agg.lock().unwrap().quarantines += 1;
        self.event(
            "quarantine",
            vec![
                ("file".to_string(), Json::str(file)),
                ("error".to_string(), Json::str(error)),
                ("action".to_string(), Json::str(action)),
            ],
        );
    }

    /// Records (and logs) a completed trace-record phase.
    pub fn record_phase(&self, workloads: usize, elapsed: Duration) {
        self.agg.lock().unwrap().record_seconds += elapsed.as_secs_f64();
        self.event(
            "record_end",
            vec![
                ("workloads".to_string(), Json::Num(workloads as f64)),
                ("dur_us".to_string(), Json::Num(elapsed.as_micros() as f64)),
            ],
        );
    }

    /// Marks one sweep finished and rewrites the metrics file (if
    /// requested) with the cumulative counters.
    pub fn sweep_finished(&self) {
        self.agg.lock().unwrap().sweeps += 1;
        if let Some(path) = &self.metrics_path {
            if let Err(e) = write_text(path, &self.render_prometheus()) {
                eprintln!("warning: metrics write failed ({e}); continuing");
            }
        }
    }

    /// The cumulative counters in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let agg = self.agg.lock().unwrap();
        let mut out = String::new();
        out.push_str("# HELP arvi_sweeps_total Sweeps completed by this process.\n");
        out.push_str("# TYPE arvi_sweeps_total counter\n");
        let _ = writeln!(out, "arvi_sweeps_total {}", agg.sweeps);
        out.push_str("# HELP arvi_sweep_cells_total Grid cells by outcome.\n");
        out.push_str("# TYPE arvi_sweep_cells_total counter\n");
        for (label, n) in &agg.cells {
            let _ = writeln!(out, "arvi_sweep_cells_total{{outcome=\"{label}\"}} {n}");
        }
        out.push_str("# HELP arvi_sweep_cell_duration_seconds Simulated-cell wall time.\n");
        out.push_str("# TYPE arvi_sweep_cell_duration_seconds summary\n");
        let _ = writeln!(
            out,
            "arvi_sweep_cell_duration_seconds_sum {:.6}",
            agg.cell_seconds_sum
        );
        let _ = writeln!(
            out,
            "arvi_sweep_cell_duration_seconds_count {}",
            agg.cell_seconds_count
        );
        out.push_str("# HELP arvi_sweep_resumed_cells_total Cells satisfied from a journal.\n");
        out.push_str("# TYPE arvi_sweep_resumed_cells_total counter\n");
        let _ = writeln!(out, "arvi_sweep_resumed_cells_total {}", agg.resumed);
        out.push_str("# HELP arvi_sweep_degraded_cells_total Cells that ran degraded.\n");
        out.push_str("# TYPE arvi_sweep_degraded_cells_total counter\n");
        for (tag, n) in &agg.degraded {
            let _ = writeln!(out, "arvi_sweep_degraded_cells_total{{kind=\"{tag}\"}} {n}");
        }
        out.push_str("# HELP arvi_trace_quarantines_total Corrupt traces quarantined.\n");
        out.push_str("# TYPE arvi_trace_quarantines_total counter\n");
        let _ = writeln!(out, "arvi_trace_quarantines_total {}", agg.quarantines);
        out.push_str("# HELP arvi_record_phase_seconds_total Trace-record wall time.\n");
        out.push_str("# TYPE arvi_record_phase_seconds_total counter\n");
        let _ = writeln!(
            out,
            "arvi_record_phase_seconds_total {:.6}",
            agg.record_seconds
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("arvi-events-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn event_lines_are_json() {
        let dir = tmpdir("lines");
        let path = dir.join("nested/events.jsonl");
        let log = EventLog::create(&path).expect("create makes parents");
        log.emit("sweep_start", vec![("cells".to_string(), Json::Num(4.0))]);
        log.emit("cell_end", vec![("outcome".to_string(), Json::str("ok"))]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = Json::parse(line).expect("valid JSON line");
            assert!(v.num("t_us").is_some(), "{line}");
            assert!(v.get("event").is_some(), "{line}");
        }
        assert_eq!(Json::parse(lines[0]).unwrap().num("cells"), Some(4.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_error_names_the_path() {
        // A path whose parent is a regular file cannot be created.
        let dir = tmpdir("err");
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("file");
        std::fs::write(&blocker, "x").unwrap();
        let bad = blocker.join("events.jsonl");
        let err = EventLog::create(&bad).unwrap_err();
        assert!(
            err.to_string().contains("file"),
            "error should name the path: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prometheus_export_accumulates() {
        let t = SweepTelemetry::from_paths(None, None).unwrap();
        t.cell_finished("ok", Some(Duration::from_millis(10)), false, None);
        t.cell_finished(
            "ok",
            Some(Duration::from_millis(20)),
            true,
            Some("live-emulation"),
        );
        t.cell_finished("panicked", None, false, None);
        t.quarantine("t.trace", "bad magic", "re-recorded");
        t.record_phase(3, Duration::from_millis(5));
        t.sweep_finished();
        let text = t.render_prometheus();
        assert!(text.contains("arvi_sweeps_total 1"), "{text}");
        assert!(
            text.contains("arvi_sweep_cells_total{outcome=\"ok\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("arvi_sweep_cells_total{outcome=\"panicked\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("arvi_sweep_cell_duration_seconds_count 2"),
            "{text}"
        );
        assert!(text.contains("arvi_sweep_resumed_cells_total 1"), "{text}");
        assert!(
            text.contains("arvi_sweep_degraded_cells_total{kind=\"live-emulation\"} 1"),
            "{text}"
        );
        assert!(text.contains("arvi_trace_quarantines_total 1"), "{text}");
    }
}

//! The perf-guardrail evaluation: compares a `perf_report` JSON against
//! the checked-in baseline, metric by metric. The `perf_guard` binary is
//! a thin shell over [`evaluate_guardrail`]; the logic lives here so the
//! band arithmetic and failure messages are unit-testable.

use crate::report::Json;

/// One metric's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricStatus {
    /// Within the warn band.
    Ok,
    /// Past warn, within fail.
    Warn,
    /// Past the fail band — gates the build.
    Fail,
    /// The report has no value for this baseline metric — also gates.
    Missing,
}

/// One baseline metric compared against the report.
#[derive(Debug, Clone)]
pub struct MetricRow {
    /// Metric key (`guardrail.<key>` in the report).
    pub key: String,
    /// Baseline reference value.
    pub baseline: f64,
    /// The report's value (`None` when missing).
    pub current: Option<f64>,
    /// Regression in percent — positive means worse than baseline,
    /// whatever the metric's direction.
    pub regression_pct: Option<f64>,
    /// Warn threshold in percent.
    pub warn_pct: f64,
    /// Fail threshold in percent.
    pub fail_pct: f64,
    /// The verdict.
    pub status: MetricStatus,
}

impl MetricRow {
    /// The failure message for a gating row: names the metric, the
    /// regression, the band it broke, and both values. `None` for
    /// ok/warn rows.
    pub fn failure(&self) -> Option<String> {
        match (self.status, self.current, self.regression_pct) {
            (MetricStatus::Fail, Some(current), Some(reg)) => Some(format!(
                "metric `{}` regressed {reg:.1}% (fail band >{:.0}%): \
                 baseline {:.4}, current {current:.4}",
                self.key, self.fail_pct, self.baseline
            )),
            (MetricStatus::Missing, _, _) => Some(format!(
                "metric `{}` missing from the report's guardrail section \
                 (baseline {:.4})",
                self.key, self.baseline
            )),
            _ => None,
        }
    }
}

/// The full guardrail comparison.
#[derive(Debug, Clone)]
pub struct GuardOutcome {
    /// One row per baseline metric, in baseline order.
    pub rows: Vec<MetricRow>,
}

impl GuardOutcome {
    /// The worst status across all rows ([`MetricStatus::Ok`] when the
    /// baseline is empty).
    pub fn worst(&self) -> MetricStatus {
        self.rows
            .iter()
            .map(|r| r.status)
            .max()
            .unwrap_or(MetricStatus::Ok)
    }

    /// Whether the build must fail.
    pub fn gates(&self) -> bool {
        self.worst() >= MetricStatus::Fail
    }

    /// Every gating row's named failure message.
    pub fn failures(&self) -> Vec<String> {
        self.rows.iter().filter_map(MetricRow::failure).collect()
    }

    /// The markdown delta table plus verdict line (piped into
    /// `$GITHUB_STEP_SUMMARY` by CI).
    pub fn to_markdown(&self, report_path: &str, baseline_path: &str) -> String {
        let mut out = format!("## Perf guardrail ({report_path} vs {baseline_path})\n\n");
        out.push_str("| metric | baseline | current | regression | status |\n");
        out.push_str("|--------|---------:|--------:|-----------:|--------|\n");
        for r in &self.rows {
            let status = match r.status {
                MetricStatus::Ok => "✅ ok".to_string(),
                MetricStatus::Warn => format!("⚠️ warn (>{:.0}%)", r.warn_pct),
                MetricStatus::Fail => format!("❌ fail (>{:.0}%)", r.fail_pct),
                MetricStatus::Missing => "❌ missing".to_string(),
            };
            match (r.current, r.regression_pct) {
                (Some(current), Some(reg)) => out.push_str(&format!(
                    "| `{}` | {:.2} | {current:.2} | {reg:+.1}% | {status} |\n",
                    r.key, r.baseline
                )),
                _ => out.push_str(&format!(
                    "| `{}` | {:.2} | — | — | {status} |\n",
                    r.key, r.baseline
                )),
            }
        }
        out.push('\n');
        out.push_str(match self.worst() {
            MetricStatus::Ok => "All metrics within tolerance.",
            MetricStatus::Warn => "Warnings only — within the fail band, watch the trend.",
            _ => "Perf regression beyond the fail band.",
        });
        out.push('\n');
        for failure in self.failures() {
            out.push_str(&format!("- {failure}\n"));
        }
        out
    }
}

/// Compares `report` (a `perf_report` JSON with a `guardrail` section)
/// against `baseline` (a `metrics` array of
/// `{key, baseline, direction, warn_pct, fail_pct}` objects). Errors
/// name the malformed baseline entry; a metric absent from the report
/// is a [`MetricStatus::Missing`] row, not an error.
pub fn evaluate_guardrail(report: &Json, baseline: &Json) -> Result<GuardOutcome, String> {
    let Some(Json::Arr(metrics)) = baseline.get("metrics") else {
        return Err("baseline has no `metrics` array".to_string());
    };
    let mut rows = Vec::with_capacity(metrics.len());
    for (i, m) in metrics.iter().enumerate() {
        let key = match m.get("key") {
            Some(Json::Str(k)) => k.clone(),
            _ => return Err(format!("baseline metric {i} has no `key`")),
        };
        let field = |name: &str| {
            m.num(name)
                .ok_or_else(|| format!("baseline metric `{key}` has no numeric `{name}`"))
        };
        let base = field("baseline")?;
        let warn_pct = field("warn_pct")?;
        let fail_pct = field("fail_pct")?;
        let higher_is_better = matches!(m.get("direction"), Some(Json::Str(d)) if d == "higher");

        let (current, regression_pct, status) = match report.num(&format!("guardrail.{key}")) {
            None => (None, None, MetricStatus::Missing),
            Some(current) => {
                // Positive regression = worse than baseline, in percent.
                let reg = if higher_is_better {
                    (base - current) / base * 100.0
                } else {
                    (current - base) / base * 100.0
                };
                let status = if reg > fail_pct {
                    MetricStatus::Fail
                } else if reg > warn_pct {
                    MetricStatus::Warn
                } else {
                    MetricStatus::Ok
                };
                (Some(current), Some(reg), status)
            }
        };
        rows.push(MetricRow {
            key,
            baseline: base,
            current,
            regression_pct,
            warn_pct,
            fail_pct,
            status,
        });
    }
    Ok(GuardOutcome { rows })
}

/// Renders the `regressions` array of a `bench_history` JSON (see
/// [`crate::history::HistoryReport::to_json`]) as human trend lines.
/// Non-gating — trends advise, the baseline gate decides — so a missing
/// or malformed document yields one line saying so rather than an
/// error.
pub fn trend_flags(history: &Json) -> Vec<String> {
    let Some(Json::Arr(regressions)) = history.get("regressions") else {
        return vec![
            "trend data has no `regressions` array (not a bench_history JSON?)".to_string(),
        ];
    };
    regressions
        .iter()
        .map(|r| {
            let key = match r.get("key") {
                Some(Json::Str(k)) => k.as_str(),
                _ => "?",
            };
            format!(
                "trend: `{key}` moved {:+.1}% between PR{} and PR{} (noise band ±{:.1}%)",
                r.num("change_pct").unwrap_or(0.0),
                r.num("from_pr").unwrap_or(0.0) as u64,
                r.num("to_pr").unwrap_or(0.0) as u64,
                r.num("band_pct").unwrap_or(0.0),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Json {
        Json::parse(
            r#"{"metrics":[
                {"key":"wheel_speedup_quick","baseline":2.0,"direction":"higher",
                 "warn_pct":10,"fail_pct":25},
                {"key":"machine_ns_per_cycle","baseline":100.0,"direction":"lower",
                 "warn_pct":50,"fail_pct":150}
            ]}"#,
        )
        .unwrap()
    }

    fn report(speedup: f64, ns: f64) -> Json {
        Json::parse(&format!(
            r#"{{"guardrail":{{"wheel_speedup_quick":{speedup},"machine_ns_per_cycle":{ns}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn within_band_passes() {
        let out = evaluate_guardrail(&report(1.95, 110.0), &baseline()).unwrap();
        assert_eq!(out.worst(), MetricStatus::Ok);
        assert!(!out.gates());
        assert!(out.failures().is_empty());
        let md = out.to_markdown("r.json", "b.json");
        assert!(md.contains("All metrics within tolerance"), "{md}");
    }

    #[test]
    fn failure_names_metric_and_band() {
        // Speedup 2.0 -> 1.2 is a 40% regression on a higher-is-better
        // metric with a 25% fail band.
        let out = evaluate_guardrail(&report(1.2, 100.0), &baseline()).unwrap();
        assert!(out.gates());
        let failures = out.failures();
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("metric `wheel_speedup_quick` regressed 40.0%"),
            "{}",
            failures[0]
        );
        assert!(failures[0].contains("(fail band >25%)"), "{}", failures[0]);
        assert!(
            failures[0].contains("baseline 2.0000, current 1.2000"),
            "{}",
            failures[0]
        );
        let md = out.to_markdown("r.json", "b.json");
        assert!(md.contains("Perf regression beyond the fail band"), "{md}");
        assert!(md.contains("regressed 40.0%"), "{md}");
    }

    #[test]
    fn warn_band_does_not_gate() {
        // ns 100 -> 180: +80%, past warn (50) but inside fail (150).
        let out = evaluate_guardrail(&report(2.0, 180.0), &baseline()).unwrap();
        assert_eq!(out.worst(), MetricStatus::Warn);
        assert!(!out.gates());
        assert!(out.failures().is_empty());
    }

    #[test]
    fn missing_metric_gates_with_name() {
        let report = Json::parse(r#"{"guardrail":{"machine_ns_per_cycle":100.0}}"#).unwrap();
        let out = evaluate_guardrail(&report, &baseline()).unwrap();
        assert!(out.gates());
        let failures = out.failures();
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("metric `wheel_speedup_quick` missing"),
            "{}",
            failures[0]
        );
    }

    #[test]
    fn malformed_baseline_is_a_named_error() {
        let bad = Json::parse(r#"{"metrics":[{"key":"x","baseline":1.0}]}"#).unwrap();
        let err = evaluate_guardrail(&report(2.0, 100.0), &bad).unwrap_err();
        assert!(
            err.contains("metric `x` has no numeric `warn_pct`"),
            "{err}"
        );
        let none = Json::parse(r#"{"other":1}"#).unwrap();
        assert!(evaluate_guardrail(&report(2.0, 100.0), &none).is_err());
    }

    #[test]
    fn trend_flags_render_regressions() {
        let history = Json::parse(
            r#"{"regressions":[{"key":"x_ns","change_pct":22.5,"band_pct":10.0,
                "from_pr":6,"to_pr":7}]}"#,
        )
        .unwrap();
        let flags = trend_flags(&history);
        assert_eq!(flags.len(), 1);
        assert!(
            flags[0].contains("`x_ns` moved +22.5% between PR6 and PR7"),
            "{}",
            flags[0]
        );
        let empty = Json::parse(r#"{"regressions":[]}"#).unwrap();
        assert!(trend_flags(&empty).is_empty());
        let bad = Json::parse(r#"{"other":1}"#).unwrap();
        assert_eq!(
            trend_flags(&bad).len(),
            1,
            "malformed input is one advisory line"
        );
    }
}

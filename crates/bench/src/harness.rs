//! Experiment driver: one function per paper artifact.
//!
//! The Figure-5/6 grids fan out over the multi-threaded sweep runner in
//! [`crate::sweep`]; results are assembled in deterministic grid order,
//! so parallel output is identical to a sequential run.

use std::sync::Arc;

use arvi_sim::{
    intern_name, simulate, simulate_source, Depth, PredictorConfig, SimParams, SimResult,
};
use arvi_stats::{amean, Table};
use arvi_trace::{Trace, TraceReplayer};
use arvi_workloads::Benchmark;

use arvi_sampling::SamplePlan;

use crate::resilience::{collect_results, run_sweep_resilient, Resilience, SweepIncomplete};
use crate::sampling::{run_sweep_sampled, sample_ci_table};
use crate::sweep::{default_threads, grid, run_sweep, run_sweep_with, TraceSet};
use crate::workload::Workload;

/// Sweep parameters: instruction windows and the workload input seed.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// Warmup instructions (excluded from measurement).
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
    /// Workload input seed.
    pub seed: u64,
}

impl Default for Spec {
    /// The default experiment window: 100k warmup + 500k measured.
    fn default() -> Spec {
        Spec {
            warmup: 100_000,
            measure: 500_000,
            seed: 42,
        }
    }
}

impl Spec {
    /// A fast window for smoke tests and `cargo bench` figure replays.
    pub fn quick() -> Spec {
        Spec {
            warmup: 20_000,
            measure: 80_000,
            seed: 42,
        }
    }
}

/// Runs one (workload, depth, configuration) cell with live emulation.
pub fn run_one(
    workload: &Workload,
    depth: Depth,
    config: PredictorConfig,
    spec: Spec,
) -> SimResult {
    use arvi_workloads::WorkloadSource;
    simulate(
        workload.program(spec.seed),
        SimParams::for_depth(depth),
        config,
        spec.warmup,
        spec.measure,
    )
}

/// Runs one cell by replaying a shared recording instead of emulating;
/// bit-identical to [`run_one`] on the trace's workload (the timing
/// model sees the same committed stream either way).
///
/// # Panics
///
/// Panics if the recording is too short for `spec`'s window — a short
/// trace would otherwise end the run early and silently report a
/// truncated measurement window as if it were the full one.
pub fn run_one_traced(
    trace: &Arc<Trace>,
    depth: Depth,
    config: PredictorConfig,
    spec: Spec,
) -> SimResult {
    let needed = crate::sweep::trace_len(spec);
    assert!(
        trace.len() >= needed,
        "trace {} holds {} instructions but the {}+{} window (plus fetch-ahead slack) needs {needed} \
         — it was recorded under a smaller spec",
        trace.name(),
        trace.len(),
        spec.warmup,
        spec.measure,
    );
    simulate_source(
        intern_name(trace.name()),
        TraceReplayer::new(Arc::clone(trace)),
        SimParams::for_depth(depth),
        config,
        spec.warmup,
        spec.measure,
    )
}

/// Figure 5: (a) the fraction of load branches per workload at each
/// pipeline depth, and (b) prediction accuracy of calculated versus load
/// branches (20-stage, ARVI current value) — returns the two tables.
pub fn fig5_tables(spec: Spec, progress: bool) -> (Table, Table) {
    fig5_tables_threaded(spec, progress, default_threads())
}

/// [`fig5_tables`] with an explicit worker count (`1` = sequential).
/// Records each benchmark's trace once in memory; use
/// [`fig5_tables_with`] to share recordings across figures.
pub fn fig5_tables_threaded(spec: Spec, progress: bool, threads: usize) -> (Table, Table) {
    fig5_tables_over(&Workload::suite(), spec, progress, threads, None)
}

/// [`fig5_tables`] over a pre-recorded [`TraceSet`].
pub fn fig5_tables_with(
    spec: Spec,
    progress: bool,
    threads: usize,
    traces: &TraceSet,
) -> (Table, Table) {
    fig5_tables_over(&Workload::suite(), spec, progress, threads, Some(traces))
}

/// [`fig5_tables`] over an explicit workload list (suite benchmarks,
/// synthetic scenarios, or any mix).
pub fn fig5_tables_over(
    workloads: &[Workload],
    spec: Spec,
    progress: bool,
    threads: usize,
    traces: Option<&TraceSet>,
) -> (Table, Table) {
    let depths = Depth::all();
    let points = grid(workloads, &depths, &[PredictorConfig::ArviCurrent]);
    let results = match traces {
        Some(traces) => run_sweep_with(&points, spec, threads, progress, traces),
        None => run_sweep(&points, spec, threads, progress),
    };
    fig5_assemble(workloads, &depths, &results)
}

/// [`fig5_tables_over`] on the fault-isolated sweep runner: cell
/// failures are collected into a [`SweepIncomplete`] (naming every
/// failed cell, with a resume hint) instead of aborting the process,
/// and completed cells are journaled/resumed per `res`.
pub fn fig5_tables_resilient(
    workloads: &[Workload],
    spec: Spec,
    progress: bool,
    threads: usize,
    traces: Option<&TraceSet>,
    res: &Resilience,
) -> Result<(Table, Table), SweepIncomplete> {
    let depths = Depth::all();
    let points = grid(workloads, &depths, &[PredictorConfig::ArviCurrent]);
    let outcomes = run_sweep_resilient(&points, spec, threads, progress, traces, res);
    if let Some(summary) = crate::resilience::outcome_summary(&outcomes) {
        eprintln!("{summary}");
    }
    if let Some(timing) =
        crate::resilience::timing_summary(&outcomes, traces.map(|t| t.record_elapsed()))
    {
        eprintln!("{timing}");
    }
    let results = collect_results(&points, outcomes)?;
    Ok(fig5_assemble(workloads, &depths, &results))
}

/// [`fig5_tables_over`] under interval sampling: every cell estimates
/// its window from `plan`'s units over the shared recording (see
/// [`crate::sampling::run_sweep_sampled`]). Returns the two Figure-5
/// tables plus the per-cell confidence-interval table.
pub fn fig5_tables_sampled(
    workloads: &[Workload],
    spec: Spec,
    plan: &SamplePlan,
    progress: bool,
    threads: usize,
    traces: &TraceSet,
    res: Option<&Resilience>,
) -> Result<(Table, Table, Table), SweepIncomplete> {
    let depths = Depth::all();
    let points = grid(workloads, &depths, &[PredictorConfig::ArviCurrent]);
    let sweep = run_sweep_sampled(&points, spec, plan, threads, progress, traces, res);
    if let Some(summary) = crate::resilience::outcome_summary(&sweep.outcomes) {
        eprintln!("{summary}");
    }
    let ci = sample_ci_table(&points, &sweep);
    let results = collect_results(&points, sweep.outcomes)?;
    let (fig5a, fig5b) = fig5_assemble(workloads, &depths, &results);
    Ok((fig5a, fig5b, ci))
}

/// Builds the two Figure-5 tables from grid-ordered results (the shared
/// tail of the strict and resilient paths).
fn fig5_assemble(
    workloads: &[Workload],
    depths: &[Depth],
    results: &[SimResult],
) -> (Table, Table) {
    let mut fig5a = Table::new(vec![
        "workload".into(),
        "20-cycle".into(),
        "40-cycle".into(),
        "60-cycle".into(),
    ]);
    let mut fig5b = Table::new(vec![
        "workload".into(),
        "calc branch".into(),
        "load branch".into(),
    ]);
    for (wi, workload) in workloads.iter().enumerate() {
        let per_depth = &results[wi * depths.len()..(wi + 1) * depths.len()];
        let mut row = vec![workload.name().to_string()];
        row.extend(
            per_depth
                .iter()
                .map(|r| format!("{:.3}", r.load_branch_fraction())),
        );
        fig5a.row(row);
        let d20 = &per_depth[0];
        fig5b.row(vec![
            workload.name().to_string(),
            format!("{:.4}", d20.window.calc_class.rate()),
            format!("{:.4}", d20.window.load_class.rate()),
        ]);
    }
    (fig5a, fig5b)
}

/// The full Figure 6 dataset for one pipeline depth.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// Pipeline depth simulated.
    pub depth: Depth,
    /// Workloads swept, one per results row.
    pub workloads: Vec<Workload>,
    /// Per-workload, per-configuration results, `results[workload][config]`
    /// in `workloads` x `PredictorConfig::all()` order.
    pub results: Vec<Vec<SimResult>>,
}

impl Fig6Data {
    /// Runs the sweep on all available cores.
    pub fn collect(depth: Depth, spec: Spec, progress: bool) -> Fig6Data {
        Fig6Data::collect_threaded(depth, spec, progress, default_threads())
    }

    /// [`Fig6Data::collect`] with an explicit worker count (`1` =
    /// sequential). Records each benchmark's trace once in memory; use
    /// [`Fig6Data::collect_with`] to share recordings across depths.
    pub fn collect_threaded(depth: Depth, spec: Spec, progress: bool, threads: usize) -> Fig6Data {
        Fig6Data::collect_over(&Workload::suite(), depth, spec, progress, threads, None)
    }

    /// [`Fig6Data::collect`] over a pre-recorded [`TraceSet`].
    pub fn collect_with(
        depth: Depth,
        spec: Spec,
        progress: bool,
        threads: usize,
        traces: &TraceSet,
    ) -> Fig6Data {
        Fig6Data::collect_over(
            &Workload::suite(),
            depth,
            spec,
            progress,
            threads,
            Some(traces),
        )
    }

    /// [`Fig6Data::collect`] over an explicit workload list (suite
    /// benchmarks, synthetic scenarios, or any mix).
    pub fn collect_over(
        workloads: &[Workload],
        depth: Depth,
        spec: Spec,
        progress: bool,
        threads: usize,
        traces: Option<&TraceSet>,
    ) -> Fig6Data {
        let points = grid(workloads, &[depth], &PredictorConfig::all());
        let flat = match traces {
            Some(traces) => run_sweep_with(&points, spec, threads, progress, traces),
            None => run_sweep(&points, spec, threads, progress),
        };
        Fig6Data::assemble(workloads, depth, flat)
    }

    /// [`Fig6Data::collect_over`] on the fault-isolated sweep runner:
    /// cell failures become a [`SweepIncomplete`] instead of aborting
    /// the process, and completed cells are journaled/resumed per `res`.
    pub fn collect_resilient(
        workloads: &[Workload],
        depth: Depth,
        spec: Spec,
        progress: bool,
        threads: usize,
        traces: Option<&TraceSet>,
        res: &Resilience,
    ) -> Result<Fig6Data, SweepIncomplete> {
        let points = grid(workloads, &[depth], &PredictorConfig::all());
        let outcomes = run_sweep_resilient(&points, spec, threads, progress, traces, res);
        if let Some(summary) = crate::resilience::outcome_summary(&outcomes) {
            eprintln!("{summary}");
        }
        if let Some(timing) =
            crate::resilience::timing_summary(&outcomes, traces.map(|t| t.record_elapsed()))
        {
            eprintln!("{timing}");
        }
        let flat = collect_results(&points, outcomes)?;
        Ok(Fig6Data::assemble(workloads, depth, flat))
    }

    /// [`Fig6Data::collect_over`] under interval sampling (see
    /// [`crate::sampling::run_sweep_sampled`]): returns the dataset plus
    /// the per-cell confidence-interval table.
    #[allow(clippy::too_many_arguments)]
    pub fn collect_sampled(
        workloads: &[Workload],
        depth: Depth,
        spec: Spec,
        plan: &SamplePlan,
        progress: bool,
        threads: usize,
        traces: &TraceSet,
        res: Option<&Resilience>,
    ) -> Result<(Fig6Data, Table), SweepIncomplete> {
        let points = grid(workloads, &[depth], &PredictorConfig::all());
        let sweep = run_sweep_sampled(&points, spec, plan, threads, progress, traces, res);
        if let Some(summary) = crate::resilience::outcome_summary(&sweep.outcomes) {
            eprintln!("{summary}");
        }
        let ci = sample_ci_table(&points, &sweep);
        let flat = collect_results(&points, sweep.outcomes)?;
        Ok((Fig6Data::assemble(workloads, depth, flat), ci))
    }

    /// Splits flat grid-ordered results per workload (the shared tail
    /// of the strict and resilient paths).
    fn assemble(workloads: &[Workload], depth: Depth, mut flat: Vec<SimResult>) -> Fig6Data {
        let configs = PredictorConfig::all();
        let mut results = Vec::new();
        for _ in workloads {
            let rest = flat.split_off(configs.len());
            results.push(flat);
            flat = rest;
        }
        Fig6Data {
            depth,
            workloads: workloads.to_vec(),
            results,
        }
    }

    /// The prediction-accuracy table (Figure 6 a/c/e).
    pub fn accuracy_table(&self) -> Table {
        let mut headers = vec!["workload".to_string()];
        headers.extend(PredictorConfig::all().iter().map(|c| c.label().to_string()));
        let mut t = Table::new(headers);
        for (wi, workload) in self.workloads.iter().enumerate() {
            let mut row = vec![workload.name().to_string()];
            for r in &self.results[wi] {
                row.push(format!("{:.4}", r.accuracy()));
            }
            t.row(row);
        }
        t
    }

    /// The normalized-IPC table with the paper's `average` row (Figure 6
    /// b/d/f); IPC is normalized to the two-level 2Bc-gskew baseline.
    pub fn normalized_ipc_table(&self) -> Table {
        let mut headers = vec!["workload".to_string()];
        headers.extend(PredictorConfig::all().iter().map(|c| c.label().to_string()));
        let mut t = Table::new(headers);
        let mut sums = vec![Vec::new(); PredictorConfig::all().len()];
        for (wi, workload) in self.workloads.iter().enumerate() {
            let base = self.results[wi][0].ipc();
            let mut row = vec![workload.name().to_string()];
            for (ci, r) in self.results[wi].iter().enumerate() {
                let norm = r.ipc() / base;
                sums[ci].push(norm);
                row.push(format!("{norm:.3}"));
            }
            t.row(row);
        }
        let mut avg_row = vec!["average".to_string()];
        for s in &sums {
            avg_row.push(format!("{:.3}", amean(s)));
        }
        t.row(avg_row);
        t
    }

    /// Mean normalized IPC for a configuration (the paper's headline
    /// statistic; e.g. "+12.6%" = 1.126 for ARVI current value at 20
    /// stages).
    pub fn mean_normalized_ipc(&self, config: PredictorConfig) -> f64 {
        let ci = PredictorConfig::all()
            .iter()
            .position(|&c| c == config)
            .expect("known config");
        let norms: Vec<f64> = self
            .results
            .iter()
            .map(|per| per[ci].ipc() / per[0].ipc())
            .collect();
        amean(&norms)
    }
}

/// Figure 6 tables for one depth: `(accuracy, normalized IPC)`.
pub fn fig6_tables(depth: Depth, spec: Spec, progress: bool) -> (Table, Table) {
    let data = Fig6Data::collect(depth, spec, progress);
    (data.accuracy_table(), data.normalized_ipc_table())
}

/// Renders the paper's configuration tables (1, 2, 3 and 4) from the
/// actual structures in this codebase, so the printed numbers are the
/// ones the simulator really uses.
pub fn paper_tables() -> Vec<(String, Table)> {
    let mut out = Vec::new();

    // Table 1: ARVI access steps.
    let mut t1 = Table::new(vec!["step".into(), "action".into()]);
    for (i, action) in [
        "Read the data dependence chain from the DDT for the branch",
        "Generate the register set from the dependence chain (RSE)",
        "In parallel, generate the index (XOR of register values) and the ID-sum tag",
        "Index the BVIT, compare the ID and depth tags, return a prediction",
    ]
    .iter()
    .enumerate()
    {
        t1.row(vec![format!("{}", i + 1), action.to_string()]);
    }
    out.push(("Table 1: ARVI access details".into(), t1));

    // Table 2: architectural parameters (rendered from SimParams).
    let p20 = SimParams::for_depth(Depth::D20);
    let p40 = SimParams::for_depth(Depth::D40);
    let p60 = SimParams::for_depth(Depth::D60);
    let mut t2 = Table::new(vec!["parameter".into(), "value".into()]);
    t2.row(vec![
        "fetch, decode width".into(),
        format!("{} instructions", p20.fetch_width),
    ]);
    t2.row(vec!["ROB entries".into(), format!("{}", p20.rob_entries)]);
    t2.row(vec![
        "load/store queue entries".into(),
        format!("{}", p20.lsq_entries),
    ]);
    t2.row(vec![
        "integer units".into(),
        format!("{} ALUs, {} mult/div", p20.int_alus, p20.int_muldiv),
    ]);
    t2.row(vec![
        "instruction TLB".into(),
        format!(
            "{} entries ({}-way), {} B pages, {} cycle miss",
            p20.itlb.entries, p20.itlb.ways, p20.itlb.page_bytes, p20.tlb_miss_penalty
        ),
    ]);
    t2.row(vec![
        "data TLB".into(),
        format!(
            "{} entries ({}-way), {} B pages, {} cycle miss",
            p20.dtlb.entries, p20.dtlb.ways, p20.dtlb.page_bytes, p20.tlb_miss_penalty
        ),
    ]);
    t2.row(vec![
        "L1 I-cache".into(),
        format!(
            "{} KB, {}-way, {} B line, {{{}, {}, {}}} cycles",
            p20.l1i.size_bytes / 1024,
            p20.l1i.ways,
            p20.l1i.line_bytes,
            p20.l1_latency,
            p40.l1_latency,
            p60.l1_latency
        ),
    ]);
    t2.row(vec![
        "L1 D-cache".into(),
        format!(
            "{} KB, {}-way, {} B line, {{{}, {}, {}}} cycles",
            p20.l1d.size_bytes / 1024,
            p20.l1d.ways,
            p20.l1d.line_bytes,
            p20.l1_latency,
            p40.l1_latency,
            p60.l1_latency
        ),
    ]);
    t2.row(vec![
        "L2 unified".into(),
        format!(
            "{} KB, {}-way, {} B line, {{{}, {}, {}}} cycles",
            p20.l2.size_bytes / 1024,
            p20.l2.ways,
            p20.l2.line_bytes,
            p20.l2_latency,
            p40.l2_latency,
            p60.l2_latency
        ),
    ]);
    t2.row(vec![
        "memory latency".into(),
        format!(
            "{{{}, {}, {}}} cycles initial",
            p20.mem_latency, p40.mem_latency, p60.mem_latency
        ),
    ]);
    out.push((
        "Table 2: architectural parameters (latencies for 20/40/60-stage pipelines)".into(),
        t2,
    ));

    // Table 3: benchmark suite.
    let mut t3 = Table::new(vec![
        "benchmark".into(),
        "paper window (M instr)".into(),
        "this repro (warmup+measured)".into(),
    ]);
    for b in Benchmark::all() {
        let (lo, hi) = b.paper_window_m();
        let (w, m) = b.default_window();
        t3.row(vec![
            b.name().into(),
            format!("{lo}M-{hi}M"),
            format!("{}k + {}k", w / 1000, m / 1000),
        ]);
    }
    out.push(("Table 3: SPEC95 integer benchmarks".into(), t3));

    // Table 4: predictor access latencies.
    let mut t4 = Table::new(vec![
        "predictor".into(),
        "size".into(),
        "20-cycle".into(),
        "40-cycle".into(),
        "60-cycle".into(),
    ]);
    t4.row(vec![
        "Level-1 hybrid".into(),
        "4 KB".into(),
        "1".into(),
        "1".into(),
        "1".into(),
    ]);
    t4.row(vec![
        "Level-2 hybrid".into(),
        "32 KB".into(),
        format!("{}", p20.l2_pred_latency),
        format!("{}", p40.l2_pred_latency),
        format!("{}", p60.l2_pred_latency),
    ]);
    t4.row(vec![
        "Level-2 ARVI".into(),
        "32 KB".into(),
        format!("{}", p20.arvi_latency),
        format!("{}", p40.arvi_latency),
        format!("{}", p60.arvi_latency),
    ]);
    out.push(("Table 4: predictor access latencies (cycles)".into(), t4));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults() {
        let s = Spec::default();
        assert_eq!(s.warmup, 100_000);
        assert!(Spec::quick().measure < s.measure);
    }

    #[test]
    fn paper_tables_render() {
        let tables = paper_tables();
        assert_eq!(tables.len(), 4);
        assert!(tables[1].1.to_text().contains("ROB entries"));
        assert!(tables[3].1.to_text().contains("Level-2 ARVI"));
        // Table 4 carries the paper's latency scaling.
        assert!(tables[3].1.to_csv().contains("Level-2 ARVI,32 KB,6,12,18"));
    }

    #[test]
    fn run_one_produces_window() {
        let spec = Spec {
            warmup: 5_000,
            measure: 20_000,
            seed: 1,
        };
        let r = run_one(
            &Benchmark::Vortex.into(),
            Depth::D20,
            PredictorConfig::TwoLevelGskew,
            spec,
        );
        // Commit width allows up to 3 instructions of slack at each
        // window boundary.
        assert!(r.window.committed >= 20_000 - 6);
        assert!(r.ipc() > 0.1);
    }
}

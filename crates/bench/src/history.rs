//! Bench-trajectory analytics over the checked-in `BENCH_PR<N>.json`
//! reports.
//!
//! Every PR lands a `perf_report` snapshot; this module parses all of
//! them, tracks each guardrail metric *across* PRs, and flags the
//! latest PR when a metric moved outside its noise band — the
//! trend-level complement to `perf_guard`'s absolute baseline gate
//! (which only sees one report at a time and cannot tell "slow drift"
//! from "this PR regressed it").
//!
//! Noise bands are derived from the history itself: a metric's band is
//! the wider of the baseline's warn band and twice the coefficient of
//! variation of its historical values (excluding the newest point, so
//! the point being judged does not widen its own band).
//!
//! Files are ordered by the PR number in the *filename*, not the `pr`
//! field inside — at least one checked-in report carries a stale field.

use std::path::Path;

use arvi_stats::{change_percent, cv_percent};

use crate::report::{io_error_at, Json};

/// One parsed `BENCH_PR<N>.json`.
#[derive(Debug)]
pub struct BenchFile {
    /// PR number, parsed from the filename.
    pub pr: u64,
    /// The filename (for messages).
    pub file: String,
    /// The parsed report.
    pub json: Json,
}

/// One guardrail metric's trajectory across the PR history.
#[derive(Debug)]
pub struct MetricTrend {
    /// Metric key (`guardrail.<key>` in the reports).
    pub key: String,
    /// Whether larger values are better (from the baseline's
    /// `direction`, else inferred: `speedup` keys are higher-is-better,
    /// everything else lower).
    pub higher_is_better: bool,
    /// The noise band in percent: `max(baseline warn_pct, 2 × CV)` of
    /// the historical values.
    pub band_pct: f64,
    /// `(pr, value)` per history file, `None` where the report predates
    /// the metric.
    pub series: Vec<(u64, Option<f64>)>,
    /// Percent change of the newest value vs the previous one
    /// (positive = increased), `None` without two points.
    pub change_pct: Option<f64>,
    /// Whether the newest change moves in the worse direction beyond
    /// the band.
    pub flagged: bool,
}

/// The full trend report over a PR history.
#[derive(Debug)]
pub struct HistoryReport {
    /// PR numbers in history order.
    pub prs: Vec<u64>,
    /// One trend per guardrail key, in first-appearance order.
    pub trends: Vec<MetricTrend>,
}

/// Loads every `BENCH_PR<N>.json` under `dir`, ordered by the filename
/// PR number. Non-matching files (`BENCH_BASELINE.json`, sources) are
/// ignored; a matching file that does not parse is an error naming the
/// file. An empty history is fine (the caller decides whether that's
/// an error).
pub fn load_bench_history(dir: &Path) -> Result<Vec<BenchFile>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}", io_error_at(dir, e)))?;
    let mut files: Vec<BenchFile> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}", io_error_at(dir, e)))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(pr) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let path = entry.path();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}", io_error_at(&path, e)))?;
        let json =
            Json::parse(&text).map_err(|e| format!("{}: malformed JSON: {e}", path.display()))?;
        files.push(BenchFile {
            pr,
            file: name,
            json,
        });
    }
    files.sort_by_key(|f| f.pr);
    Ok(files)
}

fn direction_of(key: &str, baseline: Option<&Json>) -> bool {
    if let Some(Json::Arr(metrics)) = baseline.and_then(|b| b.get("metrics")) {
        for m in metrics {
            if matches!(m.get("key"), Some(Json::Str(k)) if k == key) {
                return matches!(m.get("direction"), Some(Json::Str(d)) if d == "higher");
            }
        }
    }
    key.contains("speedup")
}

fn warn_band_of(key: &str, baseline: Option<&Json>) -> Option<f64> {
    let Some(Json::Arr(metrics)) = baseline.and_then(|b| b.get("metrics")) else {
        return None;
    };
    metrics
        .iter()
        .find(|m| matches!(m.get("key"), Some(Json::Str(k)) if k == key))
        .and_then(|m| m.num("warn_pct"))
}

/// Builds the trend report: guardrail keys in first-appearance order
/// across the PR-ordered `files`, one [`MetricTrend`] each. `baseline`
/// (the `BENCH_BASELINE.json` document) supplies directions and warn
/// bands when given; without it, directions are inferred from key names
/// and the band floor is 10%.
pub fn bench_history(files: &[BenchFile], baseline: Option<&Json>) -> HistoryReport {
    let prs: Vec<u64> = files.iter().map(|f| f.pr).collect();
    // Keys in first-appearance order across the history.
    let mut keys: Vec<String> = Vec::new();
    for f in files {
        if let Some(Json::Obj(fields)) = f.json.get("guardrail") {
            for (k, v) in fields {
                if matches!(v, Json::Num(_)) && !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
        }
    }
    let trends = keys
        .into_iter()
        .map(|key| {
            let series: Vec<(u64, Option<f64>)> = files
                .iter()
                .map(|f| (f.pr, f.json.num(&format!("guardrail.{key}"))))
                .collect();
            let values: Vec<(u64, f64)> = series
                .iter()
                .filter_map(|(pr, v)| v.map(|v| (*pr, v)))
                .collect();
            // The band judges the newest point, so it is derived from
            // the points before it.
            let historical: Vec<f64> = values
                .iter()
                .take(values.len().saturating_sub(1))
                .map(|(_, v)| *v)
                .collect();
            let band_pct = warn_band_of(&key, baseline)
                .unwrap_or(10.0)
                .max(2.0 * cv_percent(&historical));
            let higher_is_better = direction_of(&key, baseline);
            let change_pct = (values.len() >= 2).then(|| {
                let (_, prev) = values[values.len() - 2];
                let (_, last) = values[values.len() - 1];
                change_percent(prev, last)
            });
            let flagged = change_pct.is_some_and(|c| {
                if higher_is_better {
                    c < -band_pct
                } else {
                    c > band_pct
                }
            });
            MetricTrend {
                key,
                higher_is_better,
                band_pct,
                series,
                change_pct,
                flagged,
            }
        })
        .collect();
    HistoryReport { prs, trends }
}

impl HistoryReport {
    /// The PRs a flagged change happened between: `(from, to)` of the
    /// trend's last two valued points.
    fn endpoints(trend: &MetricTrend) -> Option<(u64, u64)> {
        let valued: Vec<u64> = trend
            .series
            .iter()
            .filter_map(|(pr, v)| v.map(|_| *pr))
            .collect();
        match valued.as_slice() {
            [.., from, to] => Some((*from, *to)),
            _ => None,
        }
    }

    /// Trends whose newest change regressed beyond the noise band.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricTrend> {
        self.trends.iter().filter(|t| t.flagged)
    }

    /// Markdown trend table: one row per metric, one column per PR,
    /// with the latest change, band and verdict.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("## Bench trajectory (guardrail metrics across PRs)\n\n");
        out.push_str("| metric |");
        for pr in &self.prs {
            out.push_str(&format!(" PR{pr} |"));
        }
        out.push_str(" Δ last | band | trend |\n|---|");
        for _ in &self.prs {
            out.push_str("---:|");
        }
        out.push_str("---:|---:|---|\n");
        for t in &self.trends {
            out.push_str(&format!("| `{}` |", t.key));
            for (_, v) in &t.series {
                match v {
                    Some(v) => out.push_str(&format!(" {v:.3} |")),
                    None => out.push_str(" — |"),
                }
            }
            let arrow = match t.change_pct {
                Some(c) => format!("{c:+.1}%"),
                None => "—".to_string(),
            };
            let verdict = if t.flagged {
                "🔺 regressed"
            } else if t.change_pct.is_some() {
                "✅ in band"
            } else {
                "—"
            };
            out.push_str(&format!(" {arrow} | ±{:.1}% | {verdict} |\n", t.band_pct));
        }
        let flagged: Vec<&MetricTrend> = self.regressions().collect();
        out.push('\n');
        if flagged.is_empty() {
            out.push_str("No guardrail metric regressed beyond its noise band in the latest PR.\n");
        } else {
            for t in flagged {
                let (from, to) = HistoryReport::endpoints(t).unwrap_or((0, 0));
                out.push_str(&format!(
                    "- `{}` moved {:+.1}% between PR{from} and PR{to} \
                     (band ±{:.1}%, {} is better)\n",
                    t.key,
                    t.change_pct.unwrap_or(0.0),
                    t.band_pct,
                    if t.higher_is_better {
                        "higher"
                    } else {
                        "lower"
                    }
                ));
            }
        }
        out
    }

    /// JSON rendering; the `regressions` array is what
    /// `perf_guard --trends` and [`crate::guard::trend_flags`] consume.
    pub fn to_json(&self) -> Json {
        let trends = self
            .trends
            .iter()
            .map(|t| {
                Json::obj([
                    ("key", Json::str(t.key.as_str())),
                    (
                        "direction",
                        Json::str(if t.higher_is_better {
                            "higher"
                        } else {
                            "lower"
                        }),
                    ),
                    ("band_pct", Json::Num(t.band_pct)),
                    (
                        "series",
                        Json::Arr(
                            t.series
                                .iter()
                                .map(|(pr, v)| {
                                    Json::obj([
                                        ("pr", Json::Num(*pr as f64)),
                                        ("value", v.map_or(Json::Null, Json::Num)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("change_pct", t.change_pct.map_or(Json::Null, Json::Num)),
                    ("flagged", Json::Bool(t.flagged)),
                ])
            })
            .collect();
        let regressions = self
            .regressions()
            .map(|t| {
                let (from, to) = HistoryReport::endpoints(t).unwrap_or((0, 0));
                Json::obj([
                    ("key", Json::str(t.key.as_str())),
                    ("change_pct", Json::Num(t.change_pct.unwrap_or(0.0))),
                    ("band_pct", Json::Num(t.band_pct)),
                    ("from_pr", Json::Num(from as f64)),
                    ("to_pr", Json::Num(to as f64)),
                ])
            })
            .collect();
        Json::obj([
            (
                "prs",
                Json::Arr(self.prs.iter().map(|pr| Json::Num(*pr as f64)).collect()),
            ),
            ("metrics", Json::Arr(trends)),
            ("regressions", Json::Arr(regressions)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(pr: u64, guardrail: &str) -> BenchFile {
        BenchFile {
            pr,
            file: format!("BENCH_PR{pr}.json"),
            json: Json::parse(&format!(r#"{{"pr":{pr},"guardrail":{guardrail}}}"#)).unwrap(),
        }
    }

    #[test]
    fn tracks_keys_across_prs_and_tolerates_gaps() {
        let files = vec![
            file(5, r#"{"a_ns":10.0}"#),
            file(6, r#"{"a_ns":10.5,"b_speedup":2.0}"#),
            file(7, r#"{"a_ns":10.2,"b_speedup":2.1}"#),
        ];
        let report = bench_history(&files, None);
        assert_eq!(report.prs, vec![5, 6, 7]);
        assert_eq!(report.trends.len(), 2);
        let a = &report.trends[0];
        assert_eq!(a.key, "a_ns");
        assert!(!a.higher_is_better);
        assert_eq!(
            a.series,
            vec![(5, Some(10.0)), (6, Some(10.5)), (7, Some(10.2))]
        );
        assert!(!a.flagged, "-2.9% on a lower-is-better metric is fine");
        let b = &report.trends[1];
        assert!(b.higher_is_better, "speedup keys infer higher-is-better");
        assert_eq!(b.series[0], (5, None), "pre-metric PRs render as gaps");
        let md = report.to_markdown();
        assert!(md.contains("| PR5 |"), "{md}");
        assert!(md.contains("No guardrail metric regressed"), "{md}");
    }

    #[test]
    fn flags_a_regression_beyond_the_band() {
        let files = vec![
            file(5, r#"{"x_ns":10.0}"#),
            file(6, r#"{"x_ns":10.1}"#),
            file(7, r#"{"x_ns":14.0}"#),
        ];
        let report = bench_history(&files, None);
        let t = &report.trends[0];
        assert!(t.change_pct.unwrap() > 38.0);
        assert!(t.flagged, "+39% on a quiet lower-is-better series");
        let j = report.to_json();
        let Some(Json::Arr(regressions)) = j.get("regressions") else {
            panic!("regressions array missing: {}", j.render_compact());
        };
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].num("from_pr"), Some(6.0));
        assert_eq!(regressions[0].num("to_pr"), Some(7.0));
        let md = report.to_markdown();
        assert!(md.contains("🔺 regressed"), "{md}");
        assert!(md.contains("between PR6 and PR7"), "{md}");
    }

    #[test]
    fn noisy_series_widen_their_band() {
        // ±20% swings historically: the same +25% jump that would flag
        // a quiet series stays inside the noise band here.
        let files = vec![
            file(1, r#"{"x_ns":10.0}"#),
            file(2, r#"{"x_ns":14.0}"#),
            file(3, r#"{"x_ns":9.0}"#),
            file(4, r#"{"x_ns":13.5}"#),
            file(5, r#"{"x_ns":16.8}"#),
        ];
        let report = bench_history(&files, None);
        let t = &report.trends[0];
        assert!(t.band_pct > 30.0, "band {}", t.band_pct);
        assert!(!t.flagged);
    }

    #[test]
    fn baseline_supplies_direction_and_band_floor() {
        let baseline = Json::parse(
            r#"{"metrics":[{"key":"odd","baseline":2.0,"direction":"higher",
                "warn_pct":25,"fail_pct":50}]}"#,
        )
        .unwrap();
        let files = vec![file(6, r#"{"odd":2.0}"#), file(7, r#"{"odd":1.7}"#)];
        let report = bench_history(&files, Some(&baseline));
        let t = &report.trends[0];
        assert!(t.higher_is_better, "direction comes from the baseline");
        assert!((t.band_pct - 25.0).abs() < 1e-9, "warn band is the floor");
        assert!(!t.flagged, "-15% is inside the 25% band");
    }

    #[test]
    fn ordering_comes_from_filenames() {
        let dir = std::env::temp_dir().join(format!("arvi_hist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The `pr` field inside lies (PR 6's checked-in report says 5);
        // the filename is the truth.
        std::fs::write(
            dir.join("BENCH_PR10.json"),
            r#"{"pr":9,"guardrail":{"x":1.0}}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_PR9.json"),
            r#"{"pr":9,"guardrail":{"x":2.0}}"#,
        )
        .unwrap();
        std::fs::write(dir.join("BENCH_BASELINE.json"), r#"{"metrics":[]}"#).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let files = load_bench_history(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(files.len(), 2, "only BENCH_PR<N>.json files count");
        assert_eq!(files[0].pr, 9);
        assert_eq!(files[1].pr, 10);
        assert_eq!(files[1].file, "BENCH_PR10.json");
    }

    #[test]
    fn degrades_gracefully_below_two_reports() {
        // Zero reports: empty table skeleton, no trends, no regressions.
        let empty = bench_history(&[], None);
        assert!(empty.prs.is_empty());
        assert!(empty.trends.is_empty());
        assert_eq!(empty.regressions().count(), 0);
        let md = empty.to_markdown();
        assert!(md.contains("## Bench trajectory"), "{md}");
        assert!(md.contains("No guardrail metric regressed"), "{md}");
        let j = empty.to_json();
        assert!(matches!(j.get("regressions"), Some(Json::Arr(r)) if r.is_empty()));

        // One report: a column but no deltas, nothing flagged.
        let one = bench_history(&[file(9, r#"{"x_ns":10.0,"y_speedup":4.0}"#)], None);
        assert_eq!(one.prs, vec![9]);
        assert_eq!(one.trends.len(), 2);
        for t in &one.trends {
            assert!(t.change_pct.is_none(), "no delta from a single point");
            assert!(!t.flagged);
        }
        let md = one.to_markdown();
        assert!(md.contains("| PR9 |"), "{md}");
        assert!(md.contains("No guardrail metric regressed"), "{md}");
    }

    #[test]
    fn load_error_names_the_path() {
        let dir = std::env::temp_dir().join(format!("arvi_hist_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_PR3.json"), "{not json").unwrap();
        let err = load_bench_history(&dir).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(err.contains("BENCH_PR3.json"), "{err}");
    }
}

//! # arvi-bench
//!
//! The experiment harness of the ARVI reproduction: regenerates every
//! table and figure of the paper's evaluation (see DESIGN.md §5 for the
//! experiment index).
//!
//! Binaries:
//!
//! * `tables` — Tables 1–4 (design/configuration tables).
//! * `fig5` — Figure 5(a) load-branch fractions and 5(b) per-class
//!   accuracy.
//! * `fig6` — Figure 6 prediction accuracy and normalized IPC for all
//!   four configurations at a given pipeline depth.
//! * `experiments` — the full sweep, emitting every figure and the
//!   headline averages.
//! * `perf_report` — quantifies the zero-allocation hot path against the
//!   preserved naive baseline and the parallel sweep against the
//!   sequential one, emitting a machine-readable `BENCH_*.json`.
//!
//! Experiment grids fan out over [`sweep::par_map`]: every
//! `(benchmark, depth, configuration)` cell is an independent
//! deterministic simulation, and results are returned in grid order, so
//! parallel sweeps are bit-identical to sequential ones. All binaries
//! accept `--threads N` (default: all cores; `1` = sequential).
//!
//! Criterion microbenchmarks (under `benches/`) measure the hardware
//! structures themselves (DDT insert/chain-read, RSE extraction, BVIT
//! lookup, predictor throughput, emulator and whole-machine speed).

pub mod baseline;
pub mod harness;
pub mod report;
pub mod sweep;

pub use harness::{
    fig5_tables, fig5_tables_threaded, fig6_tables, paper_tables, run_one, Fig6Data, Spec,
};
pub use report::{write_report, Json};
pub use sweep::{default_threads, full_grid, par_map, run_sweep, SweepPoint};

/// Parses a `--threads N` argument pair out of `args`, defaulting to all
/// cores.
pub fn threads_from_args(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(default_threads)
}

//! # arvi-bench
//!
//! The experiment harness of the ARVI reproduction: regenerates every
//! table and figure of the paper's evaluation (see DESIGN.md §5 for the
//! experiment index).
//!
//! Binaries:
//!
//! * `tables` — Tables 1–4 (design/configuration tables).
//! * `fig5` — Figure 5(a) load-branch fractions and 5(b) per-class
//!   accuracy.
//! * `fig6` — Figure 6 prediction accuracy and normalized IPC for all
//!   four configurations at a given pipeline depth.
//! * `experiments` — the full sweep, emitting every figure and the
//!   headline averages.
//! * `perf_report` — quantifies the hot paths (calendar-queue machine
//!   vs the preserved heap baseline, DDT vs the naive baseline, the
//!   replayed sweep), emitting a machine-readable `BENCH_*.json` whose
//!   `guardrail` section feeds the CI perf gate.
//! * `perf_guard` — the CI perf-regression gate: compares a fresh
//!   `perf_report` JSON against the checked-in `BENCH_BASELINE.json`
//!   with per-metric tolerance bands and prints a markdown delta
//!   table.
//! * `synth_report` — characterizes every predictor (standalone
//!   baselines + machine configurations) across the curated
//!   synthetic-scenario grid, emitting `BENCH_PR3.json` and a markdown
//!   table with the paper-style separation summary.
//!
//! Experiment grids fan out over [`sweep::par_map`]: every
//! `(benchmark, depth, configuration)` cell is an independent
//! deterministic simulation, and results are returned in grid order, so
//! parallel sweeps are bit-identical to sequential ones. All binaries
//! accept `--threads N` (default: all cores; `1` = sequential).
//!
//! Grids are record-once / replay-many (PR 2): each distinct
//! `(benchmark, seed, window)` workload is emulated exactly once into a
//! shared `arvi_trace::Trace` ([`sweep::TraceSet`]) and every cell
//! replays it — bit-identically to live emulation. The experiment
//! binaries (`fig5`, `fig6`, `experiments`, `perf_report`) also accept
//! `--trace-dir DIR` to persist recordings and reload them on later
//! runs instead of re-emulating.
//!
//! Grids sweep [`Workload`]s — suite benchmarks or `arvi-synth`
//! scenarios. The experiment binaries select scenarios with
//! `--scenario NAME_OR_SPEC` / `--scenario-file FILE` and enumerate
//! the registries with `--list-scenarios` / `--list-benchmarks`.
//!
//! The experiment binaries also accept the observability flags
//! (`--probe counters,sites,trace`, `--obs-out FILE`,
//! `--trace-cycles START:END`, `--top-sites N`): when present, an extra
//! probed pass runs after the tables and emits counter histograms,
//! per-branch-site attribution and/or a Chrome trace — see [`obs`].
//!
//! Criterion microbenchmarks (under `benches/`) measure the hardware
//! structures themselves (DDT insert/chain-read, RSE extraction, BVIT
//! lookup, predictor throughput, emulator and whole-machine speed).

pub mod baseline;
mod baseline_machine;
mod baseline_predict;
pub mod branch_stream;
pub mod events;
pub mod guard;
pub mod harness;
pub mod history;
pub mod obs;
pub mod obs_grid;
pub mod report;
pub mod resilience;
pub mod sampling;
pub mod sweep;
pub mod workload;

pub use branch_stream::{conditional_branches, run_delayed, run_delayed_scalar, StreamRun};
pub use events::{EventLog, SweepTelemetry};
pub use guard::{evaluate_guardrail, trend_flags, GuardOutcome, MetricRow, MetricStatus};
pub use harness::{
    fig5_tables, fig5_tables_over, fig5_tables_resilient, fig5_tables_sampled,
    fig5_tables_threaded, fig5_tables_with, fig6_tables, paper_tables, run_one, run_one_traced,
    Fig6Data, Spec,
};
pub use history::{bench_history, load_bench_history, BenchFile, HistoryReport, MetricTrend};
pub use obs::{maybe_obs_pass, obs_from_args, run_obs_pass, ObsConfig, ObsReport, WorkloadObs};
pub use obs_grid::{
    attribution_diff, counters_from_json, counters_to_json, maybe_obs_grid, obs_grid_json,
    run_obs_grid, sites_from_json, sites_to_json, Attribution, ObsGrid, ObsGroup, SiteDelta,
    WorkloadAttribution,
};
pub use report::{write_report, write_text, Json};
pub use resilience::{
    cell_fingerprint, collect_results, outcome_summary, run_sweep_resilient, timing_summary,
    CellOutcome, CellSuccess, Degradation, FaultKind, FaultPlan, FaultyIo, Resilience,
    SweepIncomplete, SweepJournal,
};
pub use sampling::{
    run_sweep_sampled, sample_ci_table, sample_plan_from_args, unit_fingerprint, SampledSweep,
};
pub use sweep::{
    default_threads, distinct_workloads, full_grid, grid, par_map, par_map_caught, record_trace,
    run_sweep, run_sweep_emulated, run_sweep_with, trace_file_name, trace_len, try_record_trace,
    SweepPoint, TraceProvenance, TraceSet, TRACE_SLACK,
};
pub use workload::Workload;

use arvi_synth::ScenarioSpec;
use arvi_workloads::Benchmark;

/// Parses a `--threads N` argument pair out of `args`, defaulting to all
/// cores.
pub fn threads_from_args(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(default_threads)
}

/// Parses a `--trace-dir DIR` argument pair out of `args`: the directory
/// experiment binaries persist workload recordings to (and reload them
/// from) instead of re-emulating on every run.
pub fn trace_dir_from_args(args: &[String]) -> Option<std::path::PathBuf> {
    args.iter()
        .position(|a| a == "--trace-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Parses the fault-tolerance flags out of `args`:
///
/// * `--journal FILE` — append completed sweep cells to `FILE` (the
///   sweep journal) as they finish.
/// * `--resume` — restore completed cells from the journal instead of
///   re-running them. Implies a journal; without `--journal` it
///   defaults to `sweep.journal` inside `--trace-dir` (or the current
///   directory without one).
/// * `--fault-plan FILE` — inject the deterministic faults listed in
///   `FILE` (see [`FaultPlan::parse`] for the line syntax).
/// * `--deadline-ms N` — soft per-cell deadline; slower cells are
///   reported as timed out and their results discarded.
/// * `--events-out FILE` — write a JSONL span log of sweep execution
///   events (cell start/end, record/replay/live phase, quarantines,
///   resume hits) to `FILE`.
/// * `--metrics-out FILE` — write cumulative sweep counters to `FILE`
///   in Prometheus text exposition format after every sweep.
///
/// Returns `Ok(None)` when none of the flags are present (callers run
/// the strict, fail-fast sweep), `Ok(Some(policy))` otherwise — the
/// telemetry flags alone select the resilient runner, since only it
/// emits events.
pub fn resilience_from_args(args: &[String]) -> Result<Option<Resilience>, String> {
    let value_of = |flag: &str| -> Result<Option<&String>, String> {
        match args.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => args
                .get(i + 1)
                .filter(|v| !v.starts_with('-'))
                .map(Some)
                .ok_or_else(|| format!("{flag} needs a value")),
        }
    };
    let journal = value_of("--journal")?;
    let resume = args.iter().any(|a| a == "--resume");
    let plan_path = value_of("--fault-plan")?;
    let deadline_ms = value_of("--deadline-ms")?
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--deadline-ms: not a number: `{v}`"))
        })
        .transpose()?;
    let events_out = value_of("--events-out")?;
    let metrics_out = value_of("--metrics-out")?;
    if journal.is_none()
        && !resume
        && plan_path.is_none()
        && deadline_ms.is_none()
        && events_out.is_none()
        && metrics_out.is_none()
    {
        return Ok(None);
    }
    let mut res = Resilience::new();
    if events_out.is_some() || metrics_out.is_some() {
        let telemetry = SweepTelemetry::from_paths(
            events_out.map(std::path::Path::new),
            metrics_out.map(std::path::Path::new),
        )
        .map_err(|e| format!("cannot open telemetry sink: {e}"))?;
        res.telemetry = Some(std::sync::Arc::new(telemetry));
    }
    res.journal = match journal {
        Some(path) => Some(std::path::PathBuf::from(path)),
        // --resume without --journal: the conventional location.
        None if resume => Some(
            trace_dir_from_args(args)
                .unwrap_or_default()
                .join("sweep.journal"),
        ),
        None => None,
    };
    res.resume = resume;
    res.deadline = deadline_ms.map(std::time::Duration::from_millis);
    if let Some(path) = plan_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        res.plan = Some(std::sync::Arc::new(FaultPlan::parse(&text)?));
    }
    Ok(Some(res))
}

/// Parses the scenario-selection flags out of `args`:
///
/// * `--scenario X` (repeatable) — `X` is a curated scenario name
///   (`--list-scenarios`), or a full quoted spec line
///   (`"name branch=datadep:64 chain=8"`; recognized by containing
///   whitespace or `=`). A bare name that is not curated runs as a
///   knobless spec line (all defaults), with a note on stderr.
/// * `--scenario-file FILE` — a scenario file, one spec line each
///   (`arvi_synth::parse_scenarios` syntax: `#` comments, blank lines).
///
/// Returns `Ok(None)` when no scenario flag is present (callers fall
/// back to the benchmark suite), `Ok(Some(workloads))` otherwise.
pub fn scenario_workloads_from_args(args: &[String]) -> Result<Option<Vec<Workload>>, String> {
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    let mut any = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => {
                any = true;
                let v = args
                    .get(i + 1)
                    // A following flag means the value was forgotten —
                    // without this, `--scenario --quick` would run a
                    // default-knob scenario literally named `--quick`.
                    .filter(|v| !v.starts_with('-'))
                    .ok_or("--scenario needs a name or spec line")?;
                let spec = if v.contains(|c: char| c.is_whitespace() || c == '=') {
                    v.parse::<ScenarioSpec>().map_err(|e| e.to_string())?
                } else {
                    match arvi_synth::find(v) {
                        Some(spec) => spec,
                        // A bare name that is not curated is still a
                        // valid knobless spec line — accept it (with a
                        // note, in case it was a curated-name typo).
                        None => {
                            let spec = v.parse::<ScenarioSpec>().map_err(|_| {
                                format!(
                                    "unknown scenario `{v}` — not a curated name \
                                     (see --list-scenarios) nor a valid spec line"
                                )
                            })?;
                            eprintln!(
                                "note: `{v}` is not a curated scenario; \
                                 running it as a spec line with default knobs"
                            );
                            spec
                        }
                    }
                };
                specs.push(spec);
                i += 2;
            }
            "--scenario-file" => {
                any = true;
                let path = args
                    .get(i + 1)
                    .filter(|v| !v.starts_with('-'))
                    .ok_or("--scenario-file needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                specs.extend(arvi_synth::parse_scenarios(&text).map_err(|e| e.to_string())?);
                i += 2;
            }
            _ => i += 1,
        }
    }
    if !any {
        return Ok(None);
    }
    for (i, a) in specs.iter().enumerate() {
        if specs[..i].iter().any(|b| b.name == a.name) {
            return Err(format!("duplicate scenario name `{}`", a.name));
        }
    }
    Ok(Some(specs.into_iter().map(Workload::scenario).collect()))
}

/// The workload set selected by `args`: the named scenarios when any
/// scenario flag is present, the benchmark suite otherwise. Prints the
/// error and exits on a malformed scenario flag.
pub fn workloads_from_args(args: &[String]) -> Vec<Workload> {
    match scenario_workloads_from_args(args) {
        Ok(Some(workloads)) => workloads,
        Ok(None) => Workload::suite(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Handles the discoverability flags `--list-scenarios` /
/// `--list-benchmarks`: prints the requested registries and returns
/// `true` if either was present (the caller should exit).
pub fn handle_list_flags(args: &[String]) -> bool {
    let scenarios = args.iter().any(|a| a == "--list-scenarios");
    let benchmarks = args.iter().any(|a| a == "--list-benchmarks");
    if benchmarks {
        println!("suite benchmarks:");
        for b in Benchmark::all() {
            println!("  {}", b.name());
        }
    }
    if scenarios {
        println!("curated scenarios (pass a name to --scenario; the full line form works too):");
        for line in arvi_synth::CURATED {
            println!("  {line}");
        }
    }
    scenarios || benchmarks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_scenario_flags_means_suite() {
        assert_eq!(
            scenario_workloads_from_args(&args(&["--quick", "--threads", "2"])).unwrap(),
            None
        );
        assert_eq!(workloads_from_args(&args(&["--quick"])), Workload::suite());
    }

    #[test]
    fn curated_names_and_spec_lines_mix() {
        let w = scenario_workloads_from_args(&args(&[
            "--scenario",
            "datadep-deep",
            "--scenario",
            "mine branch=periodic:6 chain=3",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].name(), "datadep-deep");
        assert_eq!(w[1].name(), "mine");
        assert!(matches!(
            w[1].as_scenario().unwrap().branch,
            arvi_synth::BranchClass::Periodic { period: 6 }
        ));
    }

    #[test]
    fn bare_uncurated_name_becomes_a_knobless_spec() {
        let w = scenario_workloads_from_args(&args(&["--scenario", "mine"]))
            .unwrap()
            .unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].name(), "mine");
        assert_eq!(w[0].as_scenario().unwrap().chain_depth, 2, "default knobs");
    }

    #[test]
    fn scenario_errors_are_reported() {
        // Neither a curated name nor a valid spec line (unsafe name).
        assert!(
            scenario_workloads_from_args(&args(&["--scenario", "no/pe"]))
                .unwrap_err()
                .contains("unknown scenario")
        );
        assert!(scenario_workloads_from_args(&args(&["--scenario"]))
            .unwrap_err()
            .contains("needs a name"));
        // A forgotten value followed by another flag must not become a
        // scenario named after the flag.
        assert!(
            scenario_workloads_from_args(&args(&["--scenario", "--quick"]))
                .unwrap_err()
                .contains("needs a name")
        );
        assert!(
            scenario_workloads_from_args(&args(&["--scenario-file", "--quick"]))
                .unwrap_err()
                .contains("needs a path")
        );
        assert!(scenario_workloads_from_args(&args(&[
            "--scenario",
            "a branch=bias:100",
            "--scenario",
            "a branch=bias:50",
        ]))
        .unwrap_err()
        .contains("duplicate"));
    }

    #[test]
    fn resilience_flags_parse() {
        assert_eq!(
            resilience_from_args(&args(&["--quick", "--threads", "2"]))
                .unwrap()
                .map(|_| ()),
            None
        );
        let r = resilience_from_args(&args(&["--journal", "j.log"]))
            .unwrap()
            .unwrap();
        assert_eq!(r.journal.as_deref(), Some(std::path::Path::new("j.log")));
        assert!(!r.resume);
        assert!(r.rerecord && r.live_fallback, "graceful defaults");
        // --resume defaults the journal into the trace dir.
        let r = resilience_from_args(&args(&["--resume", "--trace-dir", "traces"]))
            .unwrap()
            .unwrap();
        assert!(r.resume);
        assert_eq!(
            r.journal.as_deref(),
            Some(std::path::Path::new("traces/sweep.journal"))
        );
        let r = resilience_from_args(&args(&["--deadline-ms", "1500"]))
            .unwrap()
            .unwrap();
        assert_eq!(r.deadline, Some(std::time::Duration::from_millis(1500)));
        assert!(resilience_from_args(&args(&["--journal"])).is_err());
        assert!(resilience_from_args(&args(&["--deadline-ms", "soon"])).is_err());
        assert!(resilience_from_args(&args(&["--fault-plan", "/nonexistent/plan"])).is_err());
    }

    #[test]
    fn telemetry_flags_select_the_resilient_runner() {
        let dir = std::env::temp_dir().join(format!("arvi-telflag-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let events = dir.join("events.jsonl");
        let r = resilience_from_args(&args(&["--events-out", events.to_str().unwrap()]))
            .unwrap()
            .expect("--events-out alone enables resilience");
        let t = r.telemetry.as_ref().expect("telemetry configured");
        assert_eq!(t.events().unwrap().path(), events);
        assert!(events.exists(), "log created eagerly, with parents");
        // Metrics alone also counts; no event log in that case.
        let metrics = dir.join("metrics.prom");
        let r = resilience_from_args(&args(&["--metrics-out", metrics.to_str().unwrap()]))
            .unwrap()
            .unwrap();
        assert!(r.telemetry.as_ref().unwrap().events().is_none());
        assert!(resilience_from_args(&args(&["--events-out"])).is_err());
        // An unopenable sink is a flag error, and it names the path.
        std::fs::write(dir.join("blocker"), "x").unwrap();
        let err = resilience_from_args(&args(&[
            "--events-out",
            dir.join("blocker/e.jsonl").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("blocker"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_plan_flag_loads_and_validates() {
        let dir = std::env::temp_dir().join(format!("arvi-resflag-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.faults");
        std::fs::write(&path, "panic-cell 0\nkill-after 2\n").unwrap();
        let r = resilience_from_args(&args(&["--fault-plan", path.to_str().unwrap()]))
            .unwrap()
            .unwrap();
        assert_eq!(r.plan.as_ref().unwrap().len(), 2);
        std::fs::write(&path, "warp-core-breach 1\n").unwrap();
        assert!(
            resilience_from_args(&args(&["--fault-plan", path.to_str().unwrap()]))
                .unwrap_err()
                .contains("unknown fault kind")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scenario_file_flag_loads_specs() {
        let dir = std::env::temp_dir().join(format!("arvi-lib-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suite.scenarios");
        std::fs::write(
            &path,
            "# two
one branch=datadep:8
two branch=bias:75
",
        )
        .unwrap();
        let w = scenario_workloads_from_args(&args(&["--scenario-file", path.to_str().unwrap()]))
            .unwrap()
            .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w[1].name(), "two");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! # arvi-bench
//!
//! The experiment harness of the ARVI reproduction: regenerates every
//! table and figure of the paper's evaluation (see DESIGN.md §5 for the
//! experiment index).
//!
//! Binaries:
//!
//! * `tables` — Tables 1–4 (design/configuration tables).
//! * `fig5` — Figure 5(a) load-branch fractions and 5(b) per-class
//!   accuracy.
//! * `fig6` — Figure 6 prediction accuracy and normalized IPC for all
//!   four configurations at a given pipeline depth.
//! * `experiments` — the full sweep, emitting every figure and the
//!   headline averages.
//!
//! Criterion microbenchmarks (under `benches/`) measure the hardware
//! structures themselves (DDT insert/chain-read, RSE extraction, BVIT
//! lookup, predictor throughput, emulator and whole-machine speed).

pub mod harness;

pub use harness::{fig5_tables, fig6_tables, paper_tables, run_one, Fig6Data, Spec};

//! # arvi-bench
//!
//! The experiment harness of the ARVI reproduction: regenerates every
//! table and figure of the paper's evaluation (see DESIGN.md §5 for the
//! experiment index).
//!
//! Binaries:
//!
//! * `tables` — Tables 1–4 (design/configuration tables).
//! * `fig5` — Figure 5(a) load-branch fractions and 5(b) per-class
//!   accuracy.
//! * `fig6` — Figure 6 prediction accuracy and normalized IPC for all
//!   four configurations at a given pipeline depth.
//! * `experiments` — the full sweep, emitting every figure and the
//!   headline averages.
//! * `perf_report` — quantifies the record-once/replay-many trace
//!   subsystem (replay vs per-cell re-emulation, stream codec
//!   throughput), emitting a machine-readable `BENCH_*.json`.
//!
//! Experiment grids fan out over [`sweep::par_map`]: every
//! `(benchmark, depth, configuration)` cell is an independent
//! deterministic simulation, and results are returned in grid order, so
//! parallel sweeps are bit-identical to sequential ones. All binaries
//! accept `--threads N` (default: all cores; `1` = sequential).
//!
//! Grids are record-once / replay-many (PR 2): each distinct
//! `(benchmark, seed, window)` workload is emulated exactly once into a
//! shared `arvi_trace::Trace` ([`sweep::TraceSet`]) and every cell
//! replays it — bit-identically to live emulation. The experiment
//! binaries (`fig5`, `fig6`, `experiments`, `perf_report`) also accept
//! `--trace-dir DIR` to persist recordings and reload them on later
//! runs instead of re-emulating.
//!
//! Criterion microbenchmarks (under `benches/`) measure the hardware
//! structures themselves (DDT insert/chain-read, RSE extraction, BVIT
//! lookup, predictor throughput, emulator and whole-machine speed).

pub mod baseline;
pub mod harness;
pub mod report;
pub mod sweep;

pub use harness::{
    fig5_tables, fig5_tables_threaded, fig5_tables_with, fig6_tables, paper_tables, run_one,
    run_one_traced, Fig6Data, Spec,
};
pub use report::{write_report, Json};
pub use sweep::{
    default_threads, distinct_benches, full_grid, par_map, record_trace, run_sweep,
    run_sweep_emulated, run_sweep_with, trace_file_name, trace_len, SweepPoint, TraceSet,
    TRACE_SLACK,
};

/// Parses a `--threads N` argument pair out of `args`, defaulting to all
/// cores.
pub fn threads_from_args(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(default_threads)
}

/// Parses a `--trace-dir DIR` argument pair out of `args`: the directory
/// experiment binaries persist workload recordings to (and reload them
/// from) instead of re-emulating on every run.
pub fn trace_dir_from_args(args: &[String]) -> Option<std::path::PathBuf> {
    args.iter()
        .position(|a| a == "--trace-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

//! The experiment binaries' observability pass: `--probe`, `--obs-out`,
//! `--trace-cycles`, `--top-sites`.
//!
//! The figure sweeps themselves always run unprobed (the [`NullProbe`]
//! machine — bit-identical and perf-guarded). When any probe flag is
//! present, the binary runs one *extra* probed pass per workload after
//! the tables — at the figure's anchor depth/configuration, replaying
//! the shared recordings when available — and renders the telemetry as
//! markdown (stdout) or compact JSON (`--obs-out`).
//!
//! [`NullProbe`]: arvi_obs::NullProbe

use std::path::PathBuf;

use arvi_obs::{ChromeTracer, CounterProbe, SiteProbe};
use arvi_sim::{intern_name, simulate_source_probed, Depth, PredictorConfig, SimParams, SimResult};
use arvi_workloads::WorkloadSource;

use crate::harness::Spec;
use crate::report::{write_text, Json};
use crate::sweep::TraceSet;
use crate::workload::Workload;

/// Which probes an observability pass runs and where output goes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// `--probe counters`: merged counter/histogram telemetry.
    pub counters: bool,
    /// `--probe sites`: per-branch-PC attribution tables.
    pub sites: bool,
    /// `--trace-cycles START:END` (or `--probe trace` with it): the
    /// traced cycle window.
    pub trace: Option<(u64, u64)>,
    /// `--obs-out PATH`: write compact JSON here (and the Chrome trace
    /// beside it as `<PATH minus extension>.trace.json`) instead of
    /// printing markdown.
    pub out: Option<PathBuf>,
    /// `--top-sites N` rows in site tables (default 10).
    pub top_sites: usize,
    /// `--obs-grid PATH`: probe *every* cell of the sweep (not just the
    /// anchor pass) and write the merged grid rollup here — see
    /// [`crate::obs_grid`].
    pub grid: Option<PathBuf>,
}

impl ObsConfig {
    /// Where the Chrome trace document goes (requires `out`).
    pub fn trace_path(&self) -> Option<PathBuf> {
        match (&self.trace, &self.out) {
            (Some(_), Some(out)) => Some(out.with_extension("trace.json")),
            _ => None,
        }
    }
}

/// Parses the observability flags out of `args`:
///
/// * `--probe LIST` — comma-separated probe set: `counters`, `sites`,
///   `trace` (e.g. `--probe counters,sites`).
/// * `--obs-out PATH` — write compact JSON to `PATH` (and the Chrome
///   trace to `<PATH minus extension>.trace.json`) instead of markdown
///   on stdout.
/// * `--trace-cycles START:END` — the traced cycle window; implies
///   `--probe trace`. Required when `trace` is requested, and requires
///   `--obs-out` (a trace only exists as a file).
/// * `--top-sites N` — rows in per-site tables (default 10).
/// * `--obs-grid PATH` — run counter+site probes over every cell of
///   the sweep and write the merged `obs_grid.json` rollup to `PATH`
///   (works with or without the anchor-pass flags above).
///
/// Returns `Ok(None)` when no observability flag is present.
pub fn obs_from_args(args: &[String]) -> Result<Option<ObsConfig>, String> {
    let value_of = |flag: &str| -> Result<Option<&String>, String> {
        match args.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => args
                .get(i + 1)
                .filter(|v| !v.starts_with('-'))
                .map(Some)
                .ok_or_else(|| format!("{flag} needs a value")),
        }
    };
    let probe = value_of("--probe")?;
    let trace_cycles = value_of("--trace-cycles")?;
    let out = value_of("--obs-out")?;
    let top_sites = value_of("--top-sites")?;
    let grid = value_of("--obs-grid")?;
    if probe.is_none() && trace_cycles.is_none() && grid.is_none() {
        if out.is_some() || top_sites.is_some() {
            return Err("--obs-out/--top-sites need --probe, --trace-cycles or --obs-grid".into());
        }
        return Ok(None);
    }
    if out.is_some() && probe.is_none() && trace_cycles.is_none() {
        return Err(
            "--obs-out needs --probe or --trace-cycles (the grid rollup goes to --obs-grid)".into(),
        );
    }
    let mut cfg = ObsConfig {
        top_sites: 10,
        ..ObsConfig::default()
    };
    if let Some(list) = probe {
        for p in list.split(',') {
            match p.trim() {
                "counters" => cfg.counters = true,
                "sites" => cfg.sites = true,
                "trace" => cfg.trace = Some((0, 0)), // window filled below
                "" => {}
                other => {
                    return Err(format!(
                        "--probe: unknown probe `{other}` (expected counters, sites, trace)"
                    ))
                }
            }
        }
    }
    match trace_cycles {
        Some(win) => {
            let (a, b) = win
                .split_once(':')
                .ok_or_else(|| format!("--trace-cycles: expected START:END, got `{win}`"))?;
            let start: u64 = a
                .parse()
                .map_err(|_| format!("--trace-cycles: bad start `{a}`"))?;
            let end: u64 = b
                .parse()
                .map_err(|_| format!("--trace-cycles: bad end `{b}`"))?;
            if end <= start {
                return Err(format!("--trace-cycles: empty window {start}:{end}"));
            }
            cfg.trace = Some((start, end));
        }
        None if cfg.trace.is_some() => {
            return Err("--probe trace needs --trace-cycles START:END".into())
        }
        None => {}
    }
    if cfg.trace.is_some() && out.is_none() {
        return Err("--trace-cycles needs --obs-out (the trace is written beside it)".into());
    }
    cfg.out = out.map(PathBuf::from);
    cfg.grid = grid.map(PathBuf::from);
    if let Some(n) = top_sites {
        cfg.top_sites = n
            .parse()
            .map_err(|_| format!("--top-sites: not a number: `{n}`"))?;
    }
    Ok(Some(cfg))
}

/// Telemetry gathered from one workload's probed run.
#[derive(Debug)]
pub struct WorkloadObs {
    /// The workload's name.
    pub name: String,
    /// The run the probes observed (IPC/accuracy context for reports).
    pub result: SimResult,
    /// Counter/histogram telemetry.
    pub counters: CounterProbe,
    /// Per-branch-site attribution.
    pub sites: SiteProbe,
    /// Windowed event trace (empty when tracing was off).
    pub tracer: ChromeTracer,
}

/// The output of [`run_obs_pass`]: per-workload telemetry plus the
/// cross-workload counter merge.
#[derive(Debug)]
pub struct ObsReport {
    /// Depth the pass ran at.
    pub depth: Depth,
    /// Configuration the pass ran under.
    pub config: PredictorConfig,
    /// Counters summed over every workload.
    pub merged: CounterProbe,
    /// Per-workload telemetry, in workload order.
    pub workloads: Vec<WorkloadObs>,
}

/// Runs the probed pass: one simulation per workload at
/// (`depth`, `config`) with all three probes attached, replaying shared
/// recordings when `traces` has them (live emulation otherwise).
pub fn run_obs_pass(
    workloads: &[Workload],
    depth: Depth,
    config: PredictorConfig,
    spec: Spec,
    cfg: &ObsConfig,
    traces: Option<&TraceSet>,
) -> ObsReport {
    let mut report = ObsReport {
        depth,
        config,
        merged: CounterProbe::new(),
        workloads: Vec::with_capacity(workloads.len()),
    };
    for (wi, workload) in workloads.iter().enumerate() {
        let (start, end) = cfg.trace.unwrap_or((0, 0));
        let mut tracer = if cfg.trace.is_some() {
            ChromeTracer::new(start, end)
        } else {
            // No window: records nothing, costs a range check per hook.
            ChromeTracer::with_capacity(0, 0, 0)
        };
        tracer.pid = wi as u32 + 1;
        let probe = ((CounterProbe::new(), SiteProbe::new()), tracer);
        let name = intern_name(workload.name());
        let params = SimParams::for_depth(depth);
        let (result, ((counters, sites), tracer)) = match traces.and_then(|t| t.replayer(workload))
        {
            Some(replayer) => simulate_source_probed(
                name,
                replayer,
                params,
                config,
                spec.warmup,
                spec.measure,
                probe,
            ),
            None => simulate_source_probed(
                name,
                arvi_isa::Emulator::new(workload.program(spec.seed)),
                params,
                config,
                spec.warmup,
                spec.measure,
                probe,
            ),
        };
        report.merged.merge(&counters);
        report.workloads.push(WorkloadObs {
            name: workload.name().to_string(),
            result,
            counters,
            sites,
            tracer,
        });
    }
    report
}

impl ObsReport {
    /// The markdown rendering selected by `cfg` (counters and/or site
    /// tables).
    pub fn to_markdown(&self, cfg: &ObsConfig) -> String {
        let mut out = format!(
            "## Observability ({} depth {}, {} workloads)\n",
            self.config.label(),
            self.depth.stages(),
            self.workloads.len()
        );
        if cfg.counters {
            out.push_str("\n### Counters (merged over workloads)\n\n");
            out.push_str(&self.merged.to_markdown());
        }
        if cfg.sites {
            for w in &self.workloads {
                out.push_str(&format!(
                    "\n### Top mispredicting sites: {} (final accuracy {:.2}%)\n\n",
                    w.name,
                    w.result.accuracy() * 100.0
                ));
                out.push_str(&w.sites.to_markdown(cfg.top_sites));
            }
        }
        if let Some((start, end)) = cfg.trace {
            let events: usize = self.workloads.iter().map(|w| w.tracer.len()).sum();
            let dropped: u64 = self.workloads.iter().map(|w| w.tracer.dropped).sum();
            out.push_str(&format!(
                "\ntrace window [{start}, {end}): {events} events ({dropped} dropped)\n"
            ));
        }
        out
    }

    /// The compact-JSON rendering selected by `cfg` (everything except
    /// the Chrome trace, which is its own document — see
    /// [`ObsReport::render_trace`]).
    pub fn to_json(&self, cfg: &ObsConfig) -> Json {
        let mut fields = vec![
            ("config", Json::str(self.config.label())),
            ("depth", Json::Num(self.depth.stages() as f64)),
        ];
        if cfg.counters {
            fields.push((
                "counters",
                Json::parse(&self.merged.to_json()).expect("CounterProbe emits valid JSON"),
            ));
        }
        let mut per = Vec::new();
        for w in &self.workloads {
            let mut wf = vec![
                ("name".to_string(), Json::str(&w.name)),
                ("ipc".to_string(), Json::Num(w.result.ipc())),
                ("accuracy".to_string(), Json::Num(w.result.accuracy())),
            ];
            if cfg.counters {
                wf.push((
                    "counters".to_string(),
                    Json::parse(&w.counters.to_json()).expect("CounterProbe emits valid JSON"),
                ));
            }
            if cfg.sites {
                wf.push((
                    "sites".to_string(),
                    Json::parse(&w.sites.to_json(cfg.top_sites))
                        .expect("SiteProbe emits valid JSON"),
                ));
            }
            per.push(Json::Obj(wf));
        }
        fields.push(("workloads", Json::Arr(per)));
        if let Some((start, end)) = cfg.trace {
            fields.push((
                "trace",
                Json::obj([
                    ("start", Json::Num(start as f64)),
                    ("end", Json::Num(end as f64)),
                    (
                        "events",
                        Json::Num(
                            self.workloads.iter().map(|w| w.tracer.len()).sum::<usize>() as f64
                        ),
                    ),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// The merged Chrome trace document over every workload.
    pub fn render_trace(&self) -> String {
        ChromeTracer::render_merged(self.workloads.iter().map(|w| (w.name.as_str(), &w.tracer)))
    }

    /// Emits the pass per `cfg`: markdown to stdout without `--obs-out`,
    /// JSON files with it (plus the Chrome trace beside, when traced).
    pub fn emit(&self, cfg: &ObsConfig) -> std::io::Result<()> {
        match &cfg.out {
            None => println!("{}", self.to_markdown(cfg)),
            Some(path) => {
                write_text(path, &(self.to_json(cfg).render_compact() + "\n"))?;
                eprintln!("observability JSON written to {}", path.display());
                if let Some(trace_path) = cfg.trace_path() {
                    write_text(&trace_path, &self.render_trace())?;
                    eprintln!("chrome trace written to {}", trace_path.display());
                }
            }
        }
        Ok(())
    }
}

/// Runs and emits the observability pass when `args` ask for one;
/// exits with code 2 on malformed flags. The experiment binaries call
/// this once after their tables, at their figure's anchor
/// depth/configuration. An `--obs-grid`-only invocation selects no
/// anchor pass — the grid rollup is emitted by
/// [`crate::obs_grid::maybe_obs_grid`] instead.
pub fn maybe_obs_pass(
    args: &[String],
    workloads: &[Workload],
    depth: Depth,
    config: PredictorConfig,
    spec: Spec,
    traces: Option<&TraceSet>,
) {
    let cfg = match obs_from_args(args) {
        Ok(None) => return,
        Ok(Some(cfg)) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if !cfg.counters && !cfg.sites && cfg.trace.is_none() {
        return;
    }
    let report = run_obs_pass(workloads, depth, config, spec, &cfg, traces);
    if let Err(e) = report.emit(&cfg) {
        eprintln!("error: cannot write observability output: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_workloads::Benchmark;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        assert_eq!(obs_from_args(&args(&["--quick"])).unwrap(), None);
        let cfg = obs_from_args(&args(&["--probe", "counters,sites", "--top-sites", "5"]))
            .unwrap()
            .unwrap();
        assert!(cfg.counters && cfg.sites);
        assert_eq!(cfg.trace, None);
        assert_eq!(cfg.top_sites, 5);
        let cfg = obs_from_args(&args(&[
            "--probe",
            "trace",
            "--trace-cycles",
            "100:900",
            "--obs-out",
            "obs.json",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.trace, Some((100, 900)));
        assert_eq!(cfg.trace_path().unwrap(), PathBuf::from("obs.trace.json"));
        // --trace-cycles alone implies the trace probe.
        let cfg = obs_from_args(&args(&["--trace-cycles", "0:10", "--obs-out", "o.json"]))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.trace, Some((0, 10)));
        // --obs-grid works alone (no anchor-pass probes selected) and
        // alongside the anchor-pass flags.
        let cfg = obs_from_args(&args(&["--obs-grid", "grid.json"]))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.grid, Some(PathBuf::from("grid.json")));
        assert!(!cfg.counters && !cfg.sites && cfg.trace.is_none());
        let cfg = obs_from_args(&args(&[
            "--probe",
            "counters",
            "--obs-grid",
            "grid.json",
            "--top-sites",
            "7",
        ]))
        .unwrap()
        .unwrap();
        assert!(cfg.counters);
        assert_eq!(cfg.grid, Some(PathBuf::from("grid.json")));
        assert_eq!(cfg.top_sites, 7);
    }

    #[test]
    fn flag_errors() {
        for bad in [
            vec!["--probe", "bogus"],
            vec!["--probe"],
            vec!["--probe", "trace"],                        // no window
            vec!["--trace-cycles", "5:5", "--obs-out", "o"], // empty window
            vec!["--trace-cycles", "10"],                    // malformed
            vec!["--trace-cycles", "0:10"],                  // no --obs-out
            vec!["--obs-out", "x.json"],                     // no probe selected
            vec!["--top-sites", "3"],                        // no probe selected
            vec!["--probe", "counters", "--top-sites", "many"],
            vec!["--obs-grid"], // missing value
            // --obs-out is the anchor pass's sink; grid-only runs have
            // no anchor pass to write.
            vec!["--obs-grid", "g.json", "--obs-out", "x.json"],
        ] {
            assert!(obs_from_args(&args(&bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn pass_collects_and_renders() {
        let spec = Spec {
            warmup: 2_000,
            measure: 8_000,
            seed: 42,
        };
        let cfg = ObsConfig {
            counters: true,
            sites: true,
            trace: Some((1_000, 2_000)),
            out: None,
            top_sites: 3,
            grid: None,
        };
        let workloads = [Workload::from(Benchmark::Li)];
        let report = run_obs_pass(
            &workloads,
            Depth::D20,
            PredictorConfig::ArviCurrent,
            spec,
            &cfg,
            None,
        );
        assert_eq!(report.workloads.len(), 1);
        let w = &report.workloads[0];
        assert!(w.counters.committed >= 10_000, "{}", w.counters.committed);
        assert!(w.counters.branches > 0);
        assert!(w.sites.sites > 0);
        assert!(!w.tracer.is_empty(), "trace window saw no events");
        assert_eq!(report.merged.committed, w.counters.committed);

        let md = report.to_markdown(&cfg);
        assert!(md.contains("### Counters"), "{md}");
        assert!(md.contains("Top mispredicting sites: li"), "{md}");

        let json = report.to_json(&cfg).render_compact();
        let parsed = Json::parse(&json).expect("obs JSON parses");
        assert!(parsed.get("counters").is_some());
        assert!(parsed.get("workloads").is_some());
        assert_eq!(parsed.num("trace.start"), Some(1_000.0));

        let trace = report.render_trace();
        Json::parse(&trace).expect("chrome trace JSON parses");
        assert!(trace.contains("process_name"));
    }
}

//! Grid-scale telemetry: probe every cell of a sweep and merge.
//!
//! The anchor pass ([`crate::obs`]) observes one `(depth, config)`
//! point per workload. This module promotes the probe seam to the whole
//! grid: [`run_obs_grid`] re-runs every [`SweepPoint`] with the
//! counter+site probes attached — replaying the shared recordings, with
//! the same per-cell panic isolation, kill handling and journal/resume
//! semantics as the resilient sweep — and merges the telemetry per
//! `(workload, config)` group and grid-wide into one `obs_grid.json`
//! rollup ([`obs_grid_json`]).
//!
//! Merged probes need full-fidelity serialization (the lossy
//! `CounterProbe::to_json` folds idle cycles into its issue buckets and
//! cannot be inverted): [`counters_to_json`]/[`counters_from_json`] and
//! [`sites_to_json`]/[`sites_from_json`] round-trip exactly, which is
//! what makes a resumed grid byte-identical to an uninterrupted one.
//! Site tables render sorted by PC and groups merge in point order, so
//! the rollup is also byte-identical across worker counts.
//!
//! [`attribution_diff`] is the differential pass over the merged site
//! tables: per workload, the branch PCs the ARVI configuration *fixes*
//! and *breaks* versus the best baseline config — the falsifiable
//! "where does ARVI win" table, consumed by the `obs_report` binary.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use arvi_obs::counters::ISSUE_BUCKETS;
use arvi_obs::{CounterProbe, Log2Hist, SiteProbe, SiteStats};
use arvi_sim::{intern_name, simulate_source_probed, PredictorConfig, SimParams};
use arvi_workloads::WorkloadSource;

use crate::harness::Spec;
use crate::obs::obs_from_args;
use crate::report::{io_error_at, write_text, Json};
use crate::resilience::{cell_fingerprint, panic_message, Resilience};
use crate::sweep::{trace_len, SweepPoint, TraceSet};

/// The probes collected from one grid cell.
#[derive(Debug, Clone)]
struct CellObs {
    counters: CounterProbe,
    sites: SiteProbe,
}

enum ObsCell {
    Ok { obs: Box<CellObs>, resumed: bool },
    Failed { reason: String },
}

/// Merged telemetry for one `(workload, config)` group of the grid
/// (summed over every depth/cell of that pair, in point order).
#[derive(Debug)]
pub struct ObsGroup {
    /// The workload's name.
    pub workload: String,
    /// The predictor configuration.
    pub config: PredictorConfig,
    /// Cells merged into this group.
    pub cells: usize,
    /// Counter/histogram telemetry summed over the group.
    pub counters: CounterProbe,
    /// Site tables unioned over the group.
    pub sites: SiteProbe,
}

/// The output of [`run_obs_grid`]: per-group and grid-wide merges plus
/// per-cell accounting.
#[derive(Debug)]
pub struct ObsGrid {
    /// The window every cell ran under.
    pub spec: Spec,
    /// Cells in the grid.
    pub total: usize,
    /// Cells that produced telemetry (simulated or restored).
    pub completed: usize,
    /// Cells restored from the obs journal instead of re-simulated.
    pub resumed: usize,
    /// Failed/skipped cells: `(index, point, reason)`.
    pub failed: Vec<(usize, String, String)>,
    /// Per-`(workload, config)` merges, in first-appearance order over
    /// the point list.
    pub groups: Vec<ObsGroup>,
    /// Counters summed over the whole grid.
    pub counters: CounterProbe,
    /// Site tables unioned over the whole grid.
    pub sites: SiteProbe,
    /// Per-cell committed-instruction counts (`None` for failed cells)
    /// — the ground truth the merged sums are checked against.
    pub cells_committed: Vec<Option<u64>>,
}

/// Append-only journal of completed obs cells, stored beside the sweep
/// journal as `<journal>.obs` (same line discipline: header comment,
/// then one `<fingerprint-hex16> <compact-json>` line per cell).
struct ObsJournal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl ObsJournal {
    fn open_append(path: &Path, spec: Spec) -> std::io::Result<ObsJournal> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| io_error_at(parent, e))?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_error_at(path, e))?;
        if file.metadata().map_err(|e| io_error_at(path, e))?.len() == 0 {
            writeln!(
                file,
                "# arvi obs journal v1 seed={} warmup={} measure={}",
                spec.seed, spec.warmup, spec.measure
            )
            .map_err(|e| io_error_at(path, e))?;
        }
        Ok(ObsJournal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    fn append(&self, fingerprint: u64, obs: &CellObs) {
        let entry = Json::obj([
            ("counters", counters_to_json(&obs.counters)),
            ("sites", sites_to_json(&obs.sites)),
        ]);
        let line = format!("{fingerprint:016x} {}", entry.render_compact());
        let mut file = self.file.lock().expect("obs journal writer panicked");
        if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
            eprintln!(
                "warning: cannot append to obs journal {}: {e}",
                self.path.display()
            );
        }
    }

    fn load(path: &Path) -> HashMap<u64, CellObs> {
        let mut entries = HashMap::new();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(_) => return entries,
        };
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parsed = line.split_once(' ').and_then(|(fp, json)| {
                let fp = u64::from_str_radix(fp, 16).ok()?;
                let entry = Json::parse(json).ok()?;
                Some((
                    fp,
                    CellObs {
                        counters: counters_from_json(entry.get("counters")?)?,
                        sites: sites_from_json(entry.get("sites")?)?,
                    },
                ))
            });
            match parsed {
                Some((fp, obs)) => {
                    entries.insert(fp, obs);
                }
                None => eprintln!(
                    "warning: obs journal {}: skipping malformed line {} \
                     (torn write from an interrupted run?)",
                    path.display(),
                    ln + 1
                ),
            }
        }
        entries
    }
}

/// The obs journal's conventional location beside a sweep journal.
fn obs_journal_path(sweep_journal: &Path) -> PathBuf {
    let mut os = sweep_journal.as_os_str().to_os_string();
    os.push(".obs");
    PathBuf::from(os)
}

/// Probes every grid point (counter + site probes, always both) and
/// merges the telemetry. Mirrors the resilient sweep runner: cells run
/// under `catch_unwind` on up to `threads` workers, a
/// [`crate::resilience::FaultKind::KillAfter`] plan stops dispatch, and
/// with a journal configured ([`Resilience::journal`] — the obs journal
/// lives beside it as `<journal>.obs`) completed cells are appended as
/// they finish and restored on [`Resilience::resume`]. Restored
/// telemetry is byte-identical to re-simulated telemetry — the
/// serialization is full-fidelity by construction.
pub fn run_obs_grid(
    points: &[SweepPoint],
    spec: Spec,
    threads: usize,
    traces: Option<&TraceSet>,
    res: Option<&Resilience>,
    progress: bool,
) -> ObsGrid {
    let journal_path = res.and_then(|r| r.journal.as_deref()).map(obs_journal_path);
    let prior = match (&journal_path, res.is_some_and(|r| r.resume)) {
        (Some(path), true) => ObsJournal::load(path),
        _ => HashMap::new(),
    };
    let journal = journal_path.as_ref().and_then(|path| {
        ObsJournal::open_append(path, spec)
            .map_err(|e| eprintln!("warning: cannot open obs journal: {e} (continuing without)"))
            .ok()
    });
    let plan = res.and_then(|r| r.plan.as_deref());
    let telemetry = res.and_then(|r| r.telemetry.as_deref());

    let threads = threads.clamp(1, points.len().max(1));
    let start = Instant::now();
    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ObsCell>>> = points.iter().map(|_| Mutex::new(None)).collect();
    let worker = || loop {
        if plan.is_some_and(|p| p.kill_now(completed.load(Ordering::Acquire))) {
            break;
        }
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(point) = points.get(i) else { break };
        if progress {
            eprintln!("obs grid: {point}");
        }
        if let Some(t) = telemetry {
            t.event(
                "cell_start",
                vec![
                    ("pass".to_string(), Json::str("obs")),
                    ("cell".to_string(), Json::Num(i as f64)),
                    ("point".to_string(), Json::str(point.to_string())),
                ],
            );
        }
        let cell = run_obs_cell(point, spec, traces, &prior);
        if let ObsCell::Ok {
            obs,
            resumed: false,
        } = &cell
        {
            if let Some(journal) = &journal {
                journal.append(cell_fingerprint(point, spec), obs);
            }
        }
        if let Some(t) = telemetry {
            let outcome = match &cell {
                ObsCell::Ok { resumed: true, .. } => "ok-resumed",
                ObsCell::Ok { .. } => "ok",
                ObsCell::Failed { .. } => "failed",
            };
            t.event(
                "cell_end",
                vec![
                    ("pass".to_string(), Json::str("obs")),
                    ("cell".to_string(), Json::Num(i as f64)),
                    ("point".to_string(), Json::str(point.to_string())),
                    ("outcome".to_string(), Json::str(outcome)),
                ],
            );
        }
        *slots[i].lock().expect("obs slot") = Some(cell);
        completed.fetch_add(1, Ordering::Release);
    };
    if threads == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }

    // Merge sequentially in point order: the rollup is deterministic
    // regardless of which worker finished which cell first.
    let mut grid = ObsGrid {
        spec,
        total: points.len(),
        completed: 0,
        resumed: 0,
        failed: Vec::new(),
        groups: Vec::new(),
        counters: CounterProbe::new(),
        sites: SiteProbe::new(),
        cells_committed: vec![None; points.len()],
    };
    for (i, (point, slot)) in points.iter().zip(slots).enumerate() {
        let cell = slot.into_inner().expect("obs slot");
        match cell {
            Some(ObsCell::Ok { obs, resumed }) => {
                grid.completed += 1;
                grid.resumed += resumed as usize;
                grid.cells_committed[i] = Some(obs.counters.committed);
                grid.counters.merge(&obs.counters);
                grid.sites.merge(&obs.sites);
                let name = point.workload.name();
                match grid
                    .groups
                    .iter_mut()
                    .find(|g| g.workload == name && g.config == point.config)
                {
                    Some(g) => {
                        g.cells += 1;
                        g.counters.merge(&obs.counters);
                        g.sites.merge(&obs.sites);
                    }
                    None => grid.groups.push(ObsGroup {
                        workload: name.to_string(),
                        config: point.config,
                        cells: 1,
                        counters: obs.counters,
                        sites: obs.sites,
                    }),
                }
            }
            Some(ObsCell::Failed { reason }) => grid.failed.push((i, point.to_string(), reason)),
            None => grid.failed.push((
                i,
                point.to_string(),
                "skipped (run stopped before dispatch)".to_string(),
            )),
        }
    }
    if let Some(t) = telemetry {
        t.event(
            "obs_grid_end",
            vec![
                ("cells".to_string(), Json::Num(grid.total as f64)),
                ("completed".to_string(), Json::Num(grid.completed as f64)),
                (
                    "dur_us".to_string(),
                    Json::Num(start.elapsed().as_micros() as f64),
                ),
            ],
        );
    }
    grid
}

fn run_obs_cell(
    point: &SweepPoint,
    spec: Spec,
    traces: Option<&TraceSet>,
    prior: &HashMap<u64, CellObs>,
) -> ObsCell {
    if let Some(obs) = prior.get(&cell_fingerprint(point, spec)) {
        return ObsCell::Ok {
            obs: Box::new(obs.clone()),
            resumed: true,
        };
    }
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let probe = (CounterProbe::new(), SiteProbe::new());
        let name = intern_name(point.workload.name());
        let params = SimParams::for_depth(point.depth);
        let replayer = traces.and_then(|t| {
            t.get(&point.workload)
                .filter(|tr| tr.len() >= trace_len(spec))
                .and_then(|_| t.replayer(&point.workload))
        });
        let (_, (counters, sites)) = match replayer {
            Some(replayer) => simulate_source_probed(
                name,
                replayer,
                params,
                point.config,
                spec.warmup,
                spec.measure,
                probe,
            ),
            None => simulate_source_probed(
                name,
                arvi_isa::Emulator::new(point.workload.program(spec.seed)),
                params,
                point.config,
                spec.warmup,
                spec.measure,
                probe,
            ),
        };
        CellObs { counters, sites }
    }));
    match attempt {
        Ok(obs) => ObsCell::Ok {
            obs: Box::new(obs),
            resumed: false,
        },
        Err(payload) => ObsCell::Failed {
            reason: format!("panicked: {}", panic_message(payload.as_ref())),
        },
    }
}

fn n(v: u64) -> Json {
    Json::Num(v as f64)
}

fn u(j: &Json, path: &str) -> Option<u64> {
    j.num(path).filter(|v| *v >= 0.0).map(|v| v as u64)
}

fn hist_to_json(h: &Log2Hist) -> Json {
    Json::obj([
        ("sum", n(h.sum())),
        ("max", n(h.max())),
        (
            "buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .map(|(lo, count)| Json::Arr(vec![n(lo), n(count)]))
                    .collect(),
            ),
        ),
    ])
}

fn hist_from_json(j: &Json) -> Option<Log2Hist> {
    let sum = u(j, "sum")?;
    let max = u(j, "max")?;
    let Some(Json::Arr(rows)) = j.get("buckets") else {
        return None;
    };
    let mut buckets = Vec::with_capacity(rows.len());
    for row in rows {
        let Json::Arr(pair) = row else { return None };
        match (pair.first(), pair.get(1)) {
            (Some(Json::Num(lo)), Some(Json::Num(count))) => {
                buckets.push((*lo as u64, *count as u64));
            }
            _ => return None,
        }
    }
    Some(Log2Hist::from_parts(buckets, sum, max))
}

/// Full-fidelity [`CounterProbe`] serialization: every scalar counter,
/// the raw issue state, each histogram's exact parts, and the cache
/// snapshot. Unlike `CounterProbe::to_json` (a report surface that
/// derives issue utilization), this is invertible via
/// [`counters_from_json`].
pub fn counters_to_json(c: &CounterProbe) -> Json {
    let (issue_counts, issue_cycles, issue_width) = c.issue_state();
    Json::obj([
        ("cycles", n(c.cycles)),
        ("fetched", n(c.fetched)),
        ("committed", n(c.committed)),
        ("writebacks", n(c.writebacks)),
        ("branches", n(c.branches)),
        ("mispredicts", n(c.mispredicts)),
        (
            "issue",
            Json::obj([
                (
                    "counts",
                    Json::Arr(issue_counts.iter().map(|&v| n(v)).collect()),
                ),
                ("cycles", n(issue_cycles)),
                ("width", n(issue_width as u64)),
            ]),
        ),
        (
            "hist",
            Json::Obj(
                c.histograms()
                    .into_iter()
                    .map(|(name, h)| (name.to_string(), hist_to_json(h)))
                    .collect(),
            ),
        ),
        (
            "cache",
            Json::Obj(
                c.cache
                    .rows()
                    .into_iter()
                    .map(|(name, hits, misses)| {
                        (name.to_string(), Json::Arr(vec![n(hits), n(misses)]))
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Inverse of [`counters_to_json`]; `None` on any malformed field.
pub fn counters_from_json(j: &Json) -> Option<CounterProbe> {
    let mut c = CounterProbe::new();
    c.cycles = u(j, "cycles")?;
    c.fetched = u(j, "fetched")?;
    c.committed = u(j, "committed")?;
    c.writebacks = u(j, "writebacks")?;
    c.branches = u(j, "branches")?;
    c.mispredicts = u(j, "mispredicts")?;
    let Some(Json::Arr(items)) = j.get("issue.counts") else {
        return None;
    };
    if items.len() != ISSUE_BUCKETS {
        return None;
    }
    let mut counts = [0u64; ISSUE_BUCKETS];
    for (slot, item) in counts.iter_mut().zip(items) {
        match item {
            Json::Num(v) => *slot = *v as u64,
            _ => return None,
        }
    }
    c.restore_issue_state(counts, u(j, "issue.cycles")?, u(j, "issue.width")? as u32);
    for (name, h) in c.histograms_mut() {
        *h = hist_from_json(j.get("hist")?.get(name)?)?;
    }
    let pair = |key: &str| -> Option<(u64, u64)> {
        match j.get("cache")?.get(key)? {
            Json::Arr(v) if v.len() == 2 => match (&v[0], &v[1]) {
                (Json::Num(a), Json::Num(b)) => Some((*a as u64, *b as u64)),
                _ => None,
            },
            _ => None,
        }
    };
    c.cache.l1i = pair("l1i")?;
    c.cache.l1d = pair("l1d")?;
    c.cache.l2 = pair("l2")?;
    c.cache.itlb = pair("itlb")?;
    c.cache.dtlb = pair("dtlb")?;
    Some(c)
}

/// Full-fidelity [`SiteProbe`] serialization: the whole table, one
/// `[pc, total, final_correct, l1_correct, overrides,
/// overrides_correcting, confident, confident_wrong, bvit_hits,
/// load_class]` row per site, sorted by PC — canonical regardless of
/// the probe's internal slot layout.
pub fn sites_to_json(s: &SiteProbe) -> Json {
    let mut rows: Vec<&SiteStats> = s.iter().collect();
    rows.sort_by_key(|r| r.pc);
    Json::obj([
        ("sites", n(s.sites as u64)),
        ("dropped", n(s.dropped)),
        (
            "table",
            Json::Arr(
                rows.into_iter()
                    .map(|r| {
                        Json::Arr(vec![
                            n(r.pc),
                            n(r.total),
                            n(r.final_correct),
                            n(r.l1_correct),
                            n(r.overrides),
                            n(r.overrides_correcting),
                            n(r.confident),
                            n(r.confident_wrong),
                            n(r.bvit_hits),
                            n(r.load_class),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Inverse of [`sites_to_json`]; `None` on any malformed row.
pub fn sites_from_json(j: &Json) -> Option<SiteProbe> {
    let mut p = SiteProbe::new();
    let Some(Json::Arr(rows)) = j.get("table") else {
        return None;
    };
    for row in rows {
        let Json::Arr(v) = row else { return None };
        if v.len() != 10 {
            return None;
        }
        let mut f = [0u64; 10];
        for (slot, item) in f.iter_mut().zip(v) {
            match item {
                Json::Num(x) => *slot = *x as u64,
                _ => return None,
            }
        }
        p.record_stats(&SiteStats {
            pc: f[0],
            total: f[1],
            final_correct: f[2],
            l1_correct: f[3],
            overrides: f[4],
            overrides_correcting: f[5],
            confident: f[6],
            confident_wrong: f[7],
            bvit_hits: f[8],
            load_class: f[9],
        });
    }
    // After the inserts: drops charged by an over-full reconstruction
    // add to the journaled count rather than replacing it.
    p.dropped = p.dropped.saturating_add(u(j, "dropped")?);
    Some(p)
}

/// The merged-grid rollup document. Canonical: groups in point order,
/// site tables sorted by PC, no timing or thread-count fields — so the
/// same grid renders byte-identically across worker counts and across
/// resume.
pub fn obs_grid_json(grid: &ObsGrid, top_sites: usize) -> Json {
    let configs = PredictorConfig::all();
    Json::obj([
        (
            "spec",
            Json::obj([
                ("seed", n(grid.spec.seed)),
                ("warmup", n(grid.spec.warmup)),
                ("measure", n(grid.spec.measure)),
            ]),
        ),
        ("cells", n(grid.total as u64)),
        ("completed", n(grid.completed as u64)),
        (
            "failed",
            Json::Arr(
                grid.failed
                    .iter()
                    .map(|(i, point, reason)| {
                        Json::obj([
                            ("cell", n(*i as u64)),
                            ("point", Json::str(point.as_str())),
                            ("reason", Json::str(reason.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "groups",
            Json::Arr(
                grid.groups
                    .iter()
                    .map(|g| {
                        Json::obj([
                            ("workload", Json::str(g.workload.as_str())),
                            ("config", Json::str(g.config.label())),
                            (
                                "config_index",
                                n(configs.iter().position(|c| *c == g.config).unwrap_or(0) as u64),
                            ),
                            ("cells", n(g.cells as u64)),
                            ("counters", counters_to_json(&g.counters)),
                            ("sites", sites_to_json(&g.sites)),
                            (
                                "top",
                                Json::parse(&g.sites.to_json(top_sites))
                                    .expect("SiteProbe emits valid JSON"),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "grid",
            Json::obj([
                ("counters", counters_to_json(&grid.counters)),
                (
                    "sites",
                    Json::obj([
                        ("sites", n(grid.sites.sites as u64)),
                        ("dropped", n(grid.sites.dropped)),
                    ]),
                ),
                (
                    "top",
                    Json::parse(&grid.sites.to_json(top_sites))
                        .expect("SiteProbe emits valid JSON"),
                ),
            ]),
        ),
    ])
}

/// One branch PC whose outcome differs between the ARVI and baseline
/// configurations of a workload.
#[derive(Debug, Clone)]
pub struct SiteDelta {
    /// The branch PC.
    pub pc: u64,
    /// Dynamic executions (baseline group; execution counts are
    /// config-independent at the same window).
    pub executed: u64,
    /// Mispredicts under the baseline config.
    pub baseline_mispredicts: u64,
    /// Mispredicts under the ARVI config.
    pub arvi_mispredicts: u64,
    /// `|baseline - arvi|` — fixed when ARVI has fewer, broken when
    /// ARVI has more.
    pub delta: u64,
}

/// The ARVI-vs-baseline diff for one workload.
#[derive(Debug)]
pub struct WorkloadAttribution {
    /// The workload's name.
    pub workload: String,
    /// Label of the ARVI group diffed.
    pub arvi_config: String,
    /// Label of the best (highest site accuracy) baseline group.
    pub baseline_config: String,
    /// Site-table accuracy of the ARVI group.
    pub arvi_accuracy: f64,
    /// Site-table accuracy of the baseline group.
    pub baseline_accuracy: f64,
    /// Sites ARVI fixes (fewer mispredicts), worst-baseline-delta first.
    pub fixed: Vec<SiteDelta>,
    /// Sites ARVI breaks (more mispredicts), worst delta first.
    pub broken: Vec<SiteDelta>,
}

/// The differential attribution report over a merged grid rollup.
#[derive(Debug)]
pub struct Attribution {
    /// Per-workload diffs, in rollup group order.
    pub workloads: Vec<WorkloadAttribution>,
}

struct GroupSites {
    config_label: String,
    is_arvi: bool,
    is_arvi_current: bool,
    correct: u64,
    total: u64,
    table: HashMap<u64, (u64, u64)>, // pc -> (total, mispredicts)
}

fn group_sites(group: &Json) -> Option<GroupSites> {
    let configs = PredictorConfig::all();
    let idx = group.num("config_index")? as usize;
    let config = *configs.get(idx)?;
    let label = match group.get("config")? {
        Json::Str(s) => s.clone(),
        _ => return None,
    };
    let Some(Json::Arr(rows)) = group.get("sites.table") else {
        return None;
    };
    let mut table = HashMap::with_capacity(rows.len());
    let (mut correct, mut total) = (0u64, 0u64);
    for row in rows {
        let Json::Arr(v) = row else { return None };
        match (v.first(), v.get(1), v.get(2)) {
            (Some(Json::Num(pc)), Some(Json::Num(t)), Some(Json::Num(fc))) => {
                let (t, fc) = (*t as u64, *fc as u64);
                table.insert(*pc as u64, (t, t.saturating_sub(fc)));
                correct += fc;
                total += t;
            }
            _ => return None,
        }
    }
    Some(GroupSites {
        config_label: label,
        is_arvi: config.is_arvi(),
        is_arvi_current: config == PredictorConfig::ArviCurrent,
        correct,
        total,
        table,
    })
}

/// Diffs the merged site tables of a grid rollup ([`obs_grid_json`]
/// output): per workload, picks the ARVI group (preferring the current-
/// value configuration) and the best baseline (non-ARVI group with the
/// highest site accuracy), joins their tables by PC, and reports the
/// top `top` sites ARVI fixes and breaks. Workloads without both an
/// ARVI and a baseline group are skipped; an empty result is an error
/// (the rollup had nothing to diff).
pub fn attribution_diff(grid: &Json, top: usize) -> Result<Attribution, String> {
    let Some(Json::Arr(groups)) = grid.get("groups") else {
        return Err("rollup has no `groups` array (not an obs_grid.json?)".to_string());
    };
    // Workloads in first-appearance order, each with its parsed groups.
    let mut order: Vec<String> = Vec::new();
    let mut by_workload: HashMap<String, Vec<GroupSites>> = HashMap::new();
    for group in groups {
        let name = match group.get("workload") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("group without a `workload` name".to_string()),
        };
        let parsed = group_sites(group)
            .ok_or_else(|| format!("malformed site table in workload `{name}`"))?;
        if !order.contains(&name) {
            order.push(name.clone());
        }
        by_workload.entry(name).or_default().push(parsed);
    }
    let mut out = Attribution {
        workloads: Vec::new(),
    };
    for name in order {
        let groups = &by_workload[&name];
        let arvi = groups
            .iter()
            .find(|g| g.is_arvi_current)
            .or_else(|| groups.iter().find(|g| g.is_arvi));
        let baseline = groups.iter().filter(|g| !g.is_arvi).max_by(|a, b| {
            let ra = a.correct as f64 / a.total.max(1) as f64;
            let rb = b.correct as f64 / b.total.max(1) as f64;
            ra.partial_cmp(&rb).expect("accuracies are finite")
        });
        let (Some(arvi), Some(baseline)) = (arvi, baseline) else {
            continue;
        };
        let mut fixed = Vec::new();
        let mut broken = Vec::new();
        for (&pc, &(executed, base_misp)) in &baseline.table {
            let Some(&(_, arvi_misp)) = arvi.table.get(&pc) else {
                continue;
            };
            if base_misp > arvi_misp {
                fixed.push(SiteDelta {
                    pc,
                    executed,
                    baseline_mispredicts: base_misp,
                    arvi_mispredicts: arvi_misp,
                    delta: base_misp - arvi_misp,
                });
            } else if arvi_misp > base_misp {
                broken.push(SiteDelta {
                    pc,
                    executed,
                    baseline_mispredicts: base_misp,
                    arvi_mispredicts: arvi_misp,
                    delta: arvi_misp - base_misp,
                });
            }
        }
        for list in [&mut fixed, &mut broken] {
            list.sort_by(|a, b| b.delta.cmp(&a.delta).then(a.pc.cmp(&b.pc)));
            list.truncate(top);
        }
        out.workloads.push(WorkloadAttribution {
            workload: name,
            arvi_config: arvi.config_label.clone(),
            baseline_config: baseline.config_label.clone(),
            arvi_accuracy: arvi.correct as f64 / arvi.total.max(1) as f64,
            baseline_accuracy: baseline.correct as f64 / baseline.total.max(1) as f64,
            fixed,
            broken,
        });
    }
    if out.workloads.is_empty() {
        return Err(
            "no workload has both an ARVI and a baseline group — sweep all configurations \
             (e.g. the fig6 grid) to diff them"
                .to_string(),
        );
    }
    Ok(out)
}

fn delta_rows(out: &mut String, rows: &[SiteDelta]) {
    out.push_str("| pc | executed | baseline misp | arvi misp | delta |\n|---|---|---|---|---|\n");
    for d in rows {
        out.push_str(&format!(
            "| 0x{:x} | {} | {} | {} | {} |\n",
            d.pc, d.executed, d.baseline_mispredicts, d.arvi_mispredicts, d.delta
        ));
    }
}

impl Attribution {
    /// Markdown rendering: per workload, the fixed and broken tables.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("## ARVI vs baseline: differential site attribution\n");
        for w in &self.workloads {
            out.push_str(&format!(
                "\n### {} — {} {:.2}% vs {} {:.2}%\n",
                w.workload,
                w.arvi_config,
                w.arvi_accuracy * 100.0,
                w.baseline_config,
                w.baseline_accuracy * 100.0
            ));
            if w.fixed.is_empty() {
                out.push_str("\nARVI fixes no sites.\n");
            } else {
                out.push_str(&format!("\nTop {} sites ARVI fixes:\n\n", w.fixed.len()));
                delta_rows(&mut out, &w.fixed);
            }
            if w.broken.is_empty() {
                out.push_str("\nARVI breaks no sites.\n");
            } else {
                out.push_str(&format!("\nTop {} sites ARVI breaks:\n\n", w.broken.len()));
                delta_rows(&mut out, &w.broken);
            }
        }
        out
    }

    /// JSON rendering, mirroring the markdown.
    pub fn to_json(&self) -> Json {
        let delta = |d: &SiteDelta| {
            Json::obj([
                ("pc", n(d.pc)),
                ("executed", n(d.executed)),
                ("baseline_mispredicts", n(d.baseline_mispredicts)),
                ("arvi_mispredicts", n(d.arvi_mispredicts)),
                ("delta", n(d.delta)),
            ])
        };
        Json::obj([(
            "workloads",
            Json::Arr(
                self.workloads
                    .iter()
                    .map(|w| {
                        Json::obj([
                            ("workload", Json::str(w.workload.as_str())),
                            ("arvi_config", Json::str(w.arvi_config.as_str())),
                            ("baseline_config", Json::str(w.baseline_config.as_str())),
                            ("arvi_accuracy", Json::Num(w.arvi_accuracy)),
                            ("baseline_accuracy", Json::Num(w.baseline_accuracy)),
                            ("fixed", Json::Arr(w.fixed.iter().map(delta).collect())),
                            ("broken", Json::Arr(w.broken.iter().map(delta).collect())),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

/// Runs the grid-probe pass and writes the rollup when `--obs-grid` is
/// present in `args`. Exits 2 on malformed flags (consistent with
/// [`crate::obs::maybe_obs_pass`], which the binaries call first — by
/// the time this runs the flags have already been validated) and 1 when
/// the rollup cannot be written. The experiment binaries call this with
/// their natural grid after the tables.
pub fn maybe_obs_grid(
    args: &[String],
    points: &[SweepPoint],
    spec: Spec,
    threads: usize,
    traces: Option<&TraceSet>,
    res: Option<&Resilience>,
) {
    let cfg = match obs_from_args(args) {
        Ok(Some(cfg)) => cfg,
        Ok(None) => return,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let Some(out) = &cfg.grid else { return };
    let grid = run_obs_grid(points, spec, threads, traces, res, false);
    let json = obs_grid_json(&grid, cfg.top_sites);
    if let Err(e) = write_text(out, &(json.render_compact() + "\n")) {
        eprintln!("error: cannot write obs grid rollup: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "obs grid rollup written to {} ({} of {} cells, {} groups)",
        out.display(),
        grid.completed,
        grid.total,
        grid.groups.len()
    );
    if !grid.failed.is_empty() {
        eprintln!(
            "warning: obs grid incomplete: {} cells failed or were skipped \
             (re-run with --resume to finish them)",
            grid.failed.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_obs::Probe as _;

    #[test]
    fn counters_round_trip_exactly() {
        let mut c = CounterProbe::new();
        c.on_cycle(0, 17);
        c.on_cycle(1, 3);
        c.on_issue(0, 2, 4);
        c.on_issue(1, 4, 4);
        c.on_fetch(0, 0, 0x40, true, false);
        c.on_commit(1, 0);
        c.on_mem_access(0, 1, 9);
        c.on_mispredict(1, 2, 0x80, 5);
        c.on_recovery(3, 12);
        c.on_chain_read(0, 0x40, 3, 2, 1);
        c.on_ddt_insert(0, 0, 7);
        c.on_writeback(1, 0);
        c.cache.l1d = (100, 7);
        c.cache.itlb = (50, 1);
        let j = counters_to_json(&c);
        let back = counters_from_json(&j).expect("round trip");
        assert_eq!(
            counters_to_json(&back).render_compact(),
            j.render_compact(),
            "serialization is a fixpoint"
        );
        // Also through a text round trip (what the journal does).
        let reparsed = Json::parse(&j.render_compact()).unwrap();
        let back2 = counters_from_json(&reparsed).expect("parse round trip");
        assert_eq!(
            counters_to_json(&back2).render_compact(),
            j.render_compact()
        );
        assert_eq!(back.cycles, 2);
        assert_eq!(back.issue_state(), c.issue_state());
        assert_eq!(back.cache.l1d, (100, 7));
        assert_eq!(back.recovery.sum(), 12);
    }

    #[test]
    fn sites_round_trip_exactly() {
        let mut s = SiteProbe::with_capacity(64);
        for pc in [0x40u64, 0x80, 0x40, 0x200] {
            s.on_branch_resolve(
                0,
                pc,
                &arvi_obs::BranchResolution {
                    actual: true,
                    final_taken: pc != 0x80,
                    l1_taken: false,
                    confident: true,
                    override_fired: true,
                    bvit_hit: false,
                    load_class: Some(true),
                },
            );
        }
        s.dropped = 3;
        let j = sites_to_json(&s);
        let back = sites_from_json(&j).expect("round trip");
        assert_eq!(back.sites, s.sites);
        assert_eq!(back.dropped, 3);
        assert_eq!(
            sites_to_json(&back).render_compact(),
            j.render_compact(),
            "serialization is a fixpoint"
        );
    }
}

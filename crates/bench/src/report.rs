//! Machine-readable benchmark reports.
//!
//! The perf trajectory of this repository is tracked by `BENCH_*.json`
//! files emitted by the `perf_report` binary, one per PR that claims a
//! performance win. The build environment has no registry access, so this
//! is a dependency-free JSON value tree plus a pretty printer — enough
//! for flat metric reports, not a general serializer.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Finite number (non-finite values render as `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => Json::write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                Json::newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::newline_indent(out, depth + 1);
                    Json::write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                Json::newline_indent(out, depth);
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, depth: usize) {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Writes a rendered JSON report to `path`.
pub fn write_report(path: &std::path::Path, value: &Json) -> std::io::Result<()> {
    std::fs::write(path, value.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj([
            ("name", Json::str("ddt")),
            ("speedup", Json::Num(2.5)),
            ("iters", Json::Num(1000.0)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let text = v.render();
        assert!(text.contains("\"speedup\": 2.5"));
        assert!(text.contains("\"iters\": 1000"));
        assert!(text.contains("\"empty\": {}"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }
}

//! Machine-readable benchmark reports.
//!
//! The perf trajectory of this repository is tracked by `BENCH_*.json`
//! files emitted by the `perf_report` binary, one per PR that claims a
//! performance win. The build environment has no registry access, so this
//! is a dependency-free JSON value tree with a pretty printer and a
//! small parser (for the `perf_guard` regression gate, which reads the
//! checked-in `BENCH_BASELINE.json` back) — enough for flat metric
//! reports, not a general (de)serializer.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Finite number (non-finite values render as `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no whitespace — the sweep journal
    /// stores one record per line, so a torn write (crash mid-append)
    /// damages at most the final line.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => Json::write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                Json::newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::newline_indent(out, depth + 1);
                    Json::write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                Json::newline_indent(out, depth);
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, depth: usize) {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }

    /// Looks up a dotted path (`"machine.gskew_ns"`) through nested
    /// objects.
    pub fn get(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            match cur {
                Json::Obj(fields) => {
                    cur = &fields.iter().find(|(k, _)| k == key)?.1;
                }
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The numeric value at a dotted path, if present.
    pub fn num(&self, path: &str) -> Option<f64> {
        match self.get(path)? {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset [`Json::render`] produces,
    /// which is all the report files contain).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("bad array at offset {}", self.i)),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    fields.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("bad object at offset {}", self.i)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                self.i += 1;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || b".eE+-".contains(&c))
                {
                    self.i += 1;
                }
                std::str::from_utf8(&self.b[start..self.i])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Json::Num)
                    .ok_or_else(|| format!("bad number at offset {start}"))
            }
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let start = self.i;
                    while self.peek().is_some_and(|c| c != b'"' && c != b'\\') {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }
}

/// Annotates an I/O error with the path it happened on, mirroring the
/// `TraceError::File { path, source }` shape from `arvi-trace`: every
/// report/journal/event writer surfaces *which* file failed.
pub fn io_error_at(path: &std::path::Path, e: std::io::Error) -> std::io::Error {
    std::io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

/// Writes `text` to `path`, creating missing parent directories.
/// Errors carry the offending path.
pub fn write_text(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| io_error_at(parent, e))?;
    }
    std::fs::write(path, text).map_err(|e| io_error_at(path, e))
}

/// Writes a rendered JSON report to `path` (parent directories are
/// created; errors carry the path).
pub fn write_report(path: &std::path::Path, value: &Json) -> std::io::Result<()> {
    write_text(path, &value.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj([
            ("name", Json::str("ddt")),
            ("speedup", Json::Num(2.5)),
            ("iters", Json::Num(1000.0)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let text = v.render();
        assert!(text.contains("\"speedup\": 2.5"));
        assert!(text.contains("\"iters\": 1000"));
        assert!(text.contains("\"empty\": {}"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn parse_round_trips_rendered_reports() {
        let v = Json::obj([
            ("pr", Json::Num(4.0)),
            ("title", Json::str("calendar queue \"wheel\"\n")),
            (
                "machine",
                Json::obj([
                    ("gskew_ns", Json::Num(101.5)),
                    ("speedup", Json::Num(1.52)),
                    ("identical", Json::Bool(true)),
                ]),
            ),
            ("list", Json::Arr(vec![Json::Num(-3.0), Json::Null])),
            ("empty_obj", Json::Obj(Vec::new())),
            ("empty_arr", Json::Arr(Vec::new())),
        ]);
        let parsed = Json::parse(&v.render()).expect("round trip");
        assert_eq!(parsed, v);
    }

    #[test]
    fn compact_rendering_is_single_line_and_round_trips() {
        let v = Json::obj([
            ("name", Json::str("li")),
            ("acc", Json::Arr(vec![Json::Num(3.0), Json::Num(7.0)])),
            ("nested", Json::obj([("cycles", Json::Num(12345.0))])),
        ]);
        let line = v.render_compact();
        assert!(!line.contains('\n'));
        assert_eq!(Json::parse(&line).expect("round trip"), v);
    }

    #[test]
    fn dotted_path_lookup() {
        let v = Json::obj([("machine", Json::obj([("gskew_ns", Json::Num(99.25))]))]);
        assert_eq!(v.num("machine.gskew_ns"), Some(99.25));
        assert_eq!(v.num("machine.missing"), None);
        assert_eq!(v.num("machine"), None);
        assert!(v.get("machine").is_some());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}

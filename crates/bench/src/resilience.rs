//! Fault-tolerant sweeps: panic isolation, resumable runs, and a
//! deterministic fault-injection harness.
//!
//! A full-spec grid is hours of compute; one corrupt cached trace or one
//! panicking cell must not take the whole run down. This module makes
//! the sweep pipeline crash-safe end to end:
//!
//! * **Per-cell fault isolation** — [`run_sweep_resilient`] runs every
//!   grid cell under `catch_unwind` with a soft deadline, and reports a
//!   structured [`CellOutcome`] per cell instead of aborting the grid.
//!   Panics whose message carries
//!   [`arvi_trace::REPLAY_PANIC_PREFIX`] are classified as trace
//!   failures, everything else as a generic cell panic.
//! * **Graceful degradation** — a corrupt on-disk trace is quarantined
//!   (renamed `*.quarantined`, logged to `quarantine.log`) and
//!   re-recorded once by [`TraceSet::record_resilient`]; if re-recording
//!   is impossible the affected cells fall back to live emulation
//!   through the `InstSource` seam. Replay is bit-identical to live
//!   emulation, so a degraded sweep still reports the same numbers —
//!   the degradation is recorded in the outcome, not in the data.
//! * **Durability** — completed cells are journaled (fingerprint +
//!   result, one line per cell, appended as cells finish) so an
//!   interrupted sweep resumes by skipping finished cells
//!   ([`Resilience::resume`]). Trace files themselves are written
//!   atomically by `arvi-trace` (temp file + fsync + rename).
//! * **Deterministic fault injection** — a [`FaultPlan`] (parsed from
//!   `--fault-plan` text) flips bytes, truncates files, panics or
//!   stalls chosen cells, and simulates a mid-grid kill, all
//!   deterministically, so `tests/fault_injection.rs` and the CI fault
//!   job exercise every failure path on demand.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use arvi_sim::{intern_name, PredictorConfig, SimResult};
use arvi_stats::Accuracy;
use arvi_trace::{StdIo, TraceError, TraceIo, REPLAY_PANIC_PREFIX};

use crate::events::SweepTelemetry;
use crate::harness::{run_one, run_one_traced, Spec};
use crate::report::{io_error_at, Json};
use crate::sweep::{trace_len, SweepPoint, TraceSet};
use crate::workload::{fnv1a, FNV_OFFSET};

/// How a successful cell got its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// The normal path: replayed a healthy (or freshly recorded) trace,
    /// or ran live because the sweep had no trace set at all.
    None,
    /// The cell's cached trace was corrupt; it was quarantined and the
    /// workload re-recorded, and the cell replayed the re-recording.
    Requarantined,
    /// No usable trace existed (re-recording disabled or failed, or the
    /// recording was too short); the cell fell back to live emulation.
    LiveEmulation,
}

impl Degradation {
    /// Short journal/report tag.
    pub fn tag(self) -> &'static str {
        match self {
            Degradation::None => "none",
            Degradation::Requarantined => "requarantined",
            Degradation::LiveEmulation => "live-emulation",
        }
    }

    fn from_tag(tag: &str) -> Option<Degradation> {
        match tag {
            "none" => Some(Degradation::None),
            "requarantined" => Some(Degradation::Requarantined),
            "live-emulation" => Some(Degradation::LiveEmulation),
            _ => None,
        }
    }
}

/// A completed cell: the result plus how it was obtained.
#[derive(Debug, Clone)]
pub struct CellSuccess {
    /// The simulation result (bit-identical regardless of degradation —
    /// replay and live emulation see the same committed stream).
    pub result: SimResult,
    /// How the result was obtained.
    pub degradation: Degradation,
    /// Whether the result was restored from a journal instead of
    /// simulated in this run.
    pub resumed: bool,
    /// Wall-clock time the cell took. For resumed cells this is the
    /// journaled duration of the original run (zero for entries written
    /// by journals that predate duration tracking).
    pub duration: Duration,
    /// How many sampling units produced this result under
    /// [`crate::sampling::run_sweep_sampled`]; `0` for a full
    /// (unsampled) run.
    pub sampled_units: usize,
}

/// The structured outcome of one grid cell under
/// [`run_sweep_resilient`]: no cell failure aborts the grid.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell produced a result.
    Ok(CellSuccess),
    /// The cell panicked (payload message attached). Trace-replay
    /// panics are reported as [`CellOutcome::TraceError`] instead.
    Panicked {
        /// The panic payload, rendered.
        message: String,
    },
    /// The cell completed but exceeded the soft deadline; its result is
    /// discarded (and not journaled) so a wedged configuration cannot
    /// silently dominate a sweep.
    TimedOut {
        /// How long the cell actually ran.
        elapsed: Duration,
        /// The configured deadline it exceeded.
        deadline: Duration,
    },
    /// The cell could not obtain its instruction stream (corrupt trace
    /// with fallback disabled, recording failure, replay corruption).
    TraceError {
        /// What went wrong.
        message: String,
    },
    /// The cell was never dispatched (a simulated [`FaultKind::KillAfter`]
    /// stopped the run first). Re-run with resume to complete it.
    Skipped,
}

impl CellOutcome {
    /// The success payload, if any.
    pub fn success(&self) -> Option<&CellSuccess> {
        match self {
            CellOutcome::Ok(s) => Some(s),
            _ => None,
        }
    }

    /// A short human label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Ok(s) if s.resumed => "ok (resumed)",
            CellOutcome::Ok(_) => "ok",
            CellOutcome::Panicked { .. } => "panicked",
            CellOutcome::TimedOut { .. } => "timed out",
            CellOutcome::TraceError { .. } => "trace error",
            CellOutcome::Skipped => "skipped",
        }
    }

    /// The failure reason, for everything except `Ok`.
    pub fn failure(&self) -> Option<String> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Panicked { message } => Some(format!("panicked: {message}")),
            CellOutcome::TimedOut { elapsed, deadline } => Some(format!(
                "timed out: ran {:.1}s past the {:.1}s deadline",
                elapsed.as_secs_f64(),
                deadline.as_secs_f64()
            )),
            CellOutcome::TraceError { message } => Some(format!("trace error: {message}")),
            CellOutcome::Skipped => Some("skipped (run stopped before dispatch)".into()),
        }
    }
}

/// Fault-tolerance policy for a sweep. [`Resilience::default`] journals
/// nothing, injects nothing, and degrades gracefully (quarantine +
/// re-record + live fallback all on).
#[derive(Debug, Clone, Default)]
pub struct Resilience {
    /// Where to journal completed cells (appended as cells finish).
    pub journal: Option<PathBuf>,
    /// Restore completed cells from the journal instead of re-running
    /// them.
    pub resume: bool,
    /// Soft per-cell deadline: a cell that runs longer is reported as
    /// [`CellOutcome::TimedOut`] and its result discarded. (Soft: the
    /// check is post-hoc — safe Rust cannot preempt a running cell.)
    pub deadline: Option<Duration>,
    /// Deterministic fault plan (testing/CI only).
    pub plan: Option<Arc<FaultPlan>>,
    /// Re-record a workload whose cached trace was quarantined
    /// (default `true`).
    pub rerecord: bool,
    /// Fall back to live emulation when no usable trace exists
    /// (default `true`); with this off such cells report
    /// [`CellOutcome::TraceError`].
    pub live_fallback: bool,
    /// Structured execution telemetry (event log + metrics export).
    /// Shared with the trace recorder, hence the `Arc`.
    pub telemetry: Option<Arc<SweepTelemetry>>,
}

impl Resilience {
    /// The graceful-degradation defaults with no journal or fault plan.
    pub fn new() -> Resilience {
        Resilience {
            journal: None,
            resume: false,
            deadline: None,
            plan: None,
            rerecord: true,
            live_fallback: true,
            telemetry: None,
        }
    }

    /// Sets the journal path (builder style).
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Resilience {
        self.journal = Some(path.into());
        self
    }

    /// Enables resume-from-journal (builder style).
    pub fn resuming(mut self) -> Resilience {
        self.resume = true;
        self
    }

    /// Sets the fault plan (builder style).
    pub fn with_plan(mut self, plan: FaultPlan) -> Resilience {
        self.plan = Some(Arc::new(plan));
        self
    }
}

/// One planned fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// XOR byte `offset` of the named workload's trace file with 0xFF
    /// at read time.
    FlipByte {
        /// Workload whose trace file to corrupt.
        workload: String,
        /// Absolute byte offset into the container.
        offset: u64,
    },
    /// Flip byte `byte` within the payload of chunk `chunk` (addressed
    /// through the container index, so the fault lands in encoded
    /// instruction data, not framing).
    FlipChunkByte {
        /// Workload whose trace file to corrupt.
        workload: String,
        /// Chunk index.
        chunk: u32,
        /// Byte offset within that chunk's payload.
        byte: u32,
    },
    /// Truncate the named workload's trace file to `len` bytes at read
    /// time.
    Truncate {
        /// Workload whose trace file to truncate.
        workload: String,
        /// Length to keep.
        len: u64,
    },
    /// Panic inside grid cell `cell` (by dispatch index).
    PanicCell {
        /// Cell index into the sweep's point list.
        cell: u32,
    },
    /// Sleep `millis` before running grid cell `cell` (drives the
    /// deadline path deterministically).
    StallCell {
        /// Cell index into the sweep's point list.
        cell: u32,
        /// Milliseconds to stall.
        millis: u64,
    },
    /// Stop dispatching new cells once `cells` cells have completed —
    /// a deterministic stand-in for kill -9 mid-sweep.
    KillAfter {
        /// Completed-cell threshold.
        cells: u32,
    },
}

/// A deterministic, seed-free fault schedule, parsed from text
/// (`--fault-plan FILE`). One fault per line, `#` comments and blank
/// lines ignored:
///
/// ```text
/// flip <workload> <offset>          # XOR one container byte at read
/// flip-chunk <workload> <chunk> <byte>  # flip inside a chunk payload
/// truncate <workload> <len>         # short read of the container
/// panic-cell <index>                # panic inside grid cell <index>
/// stall-cell <index> <millis>       # sleep before cell <index>
/// kill-after <count>                # stop dispatch after <count> cells
/// ```
///
/// Read faults fire **once** (the first read of a matching file), so a
/// quarantine + re-record cycle observes the corruption exactly once
/// and the re-recorded file reads back clean — the same once-ness a
/// real corrupted file has.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<(FaultKind, AtomicBool)>,
}

impl FaultPlan {
    /// Parses a plan from its text form. Errors name the offending line.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad = |what: &str| format!("fault plan line {}: {what}: `{line}`", ln + 1);
            let mut tok = line.split_whitespace();
            let kind = tok.next().expect("non-empty line has a first token");
            let fault = match kind {
                "flip" | "truncate" => {
                    let workload = tok.next().ok_or_else(|| bad("missing workload"))?;
                    let n: u64 = tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing or bad number"))?;
                    let workload = workload.to_string();
                    if kind == "flip" {
                        FaultKind::FlipByte {
                            workload,
                            offset: n,
                        }
                    } else {
                        FaultKind::Truncate { workload, len: n }
                    }
                }
                "flip-chunk" => {
                    let workload = tok.next().ok_or_else(|| bad("missing workload"))?;
                    let chunk: u32 = tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing or bad chunk index"))?;
                    let byte: u32 = tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing or bad byte offset"))?;
                    FaultKind::FlipChunkByte {
                        workload: workload.to_string(),
                        chunk,
                        byte,
                    }
                }
                "panic-cell" => FaultKind::PanicCell {
                    cell: tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing or bad cell index"))?,
                },
                "stall-cell" => FaultKind::StallCell {
                    cell: tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing or bad cell index"))?,
                    millis: tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing or bad millis"))?,
                },
                "kill-after" => FaultKind::KillAfter {
                    cells: tok
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing or bad cell count"))?,
                },
                _ => return Err(bad("unknown fault kind")),
            };
            if tok.next().is_some() {
                return Err(bad("trailing tokens"));
            }
            faults.push((fault, AtomicBool::new(false)));
        }
        Ok(FaultPlan { faults })
    }

    /// Builds a plan from already-constructed faults (tests).
    pub fn from_faults(kinds: impl IntoIterator<Item = FaultKind>) -> FaultPlan {
        FaultPlan {
            faults: kinds
                .into_iter()
                .map(|k| (k, AtomicBool::new(false)))
                .collect(),
        }
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Atomically claims the first unfired fault `select` matches.
    fn take(&self, select: impl Fn(&FaultKind) -> bool) -> Option<&FaultKind> {
        for (kind, fired) in &self.faults {
            if select(kind) && !fired.swap(true, Ordering::AcqRel) {
                return Some(kind);
            }
        }
        None
    }

    /// Claims a pending panic fault for cell `i`.
    pub fn take_panic(&self, i: usize) -> bool {
        self.take(|k| matches!(k, FaultKind::PanicCell { cell } if *cell as usize == i))
            .is_some()
    }

    /// Claims a pending stall fault for cell `i`, returning the stall.
    pub fn take_stall(&self, i: usize) -> Option<Duration> {
        match self.take(|k| matches!(k, FaultKind::StallCell { cell, .. } if *cell as usize == i)) {
            Some(FaultKind::StallCell { millis, .. }) => Some(Duration::from_millis(*millis)),
            _ => None,
        }
    }

    /// Whether a kill fault says to stop dispatching: `completed` cells
    /// have finished and some `kill-after` threshold is reached. Sticky
    /// (not consumed) — once tripped, every dispatcher sees it.
    pub fn kill_now(&self, completed: usize) -> bool {
        self.faults.iter().any(
            |(k, _)| matches!(k, FaultKind::KillAfter { cells } if completed >= *cells as usize),
        )
    }

    /// Applies pending read faults to `bytes` just read from `path`.
    /// A fault matches when the file name starts with `<workload>-`
    /// (how [`crate::sweep::trace_file_name`] keys files).
    pub fn apply_read(&self, path: &Path, bytes: &mut Vec<u8>) {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let matches = |workload: &str| name.starts_with(&format!("{workload}-"));
        while let Some(kind) = self.take(|k| match k {
            FaultKind::FlipByte { workload, .. }
            | FaultKind::FlipChunkByte { workload, .. }
            | FaultKind::Truncate { workload, .. } => matches(workload),
            _ => false,
        }) {
            match kind {
                FaultKind::FlipByte { offset, .. } => {
                    let off = *offset as usize;
                    if let Some(b) = bytes.get_mut(off) {
                        *b ^= 0xFF;
                    }
                }
                FaultKind::FlipChunkByte { chunk, byte, .. } => {
                    // Address through the container index so the flip
                    // lands in encoded payload; fall back to an absolute
                    // offset if the container cannot be parsed.
                    let off = arvi_trace::file::chunk_payload_span(bytes, *chunk as usize)
                        .map(|(start, len)| start + (*byte as usize).min(len.saturating_sub(1)))
                        .unwrap_or(*byte as usize);
                    if let Some(b) = bytes.get_mut(off) {
                        *b ^= 0xFF;
                    }
                }
                FaultKind::Truncate { len, .. } => bytes.truncate(*len as usize),
                _ => unreachable!("take matched a read fault"),
            }
        }
    }
}

/// An [`arvi_trace::TraceIo`] that injects a [`FaultPlan`]'s read
/// faults — the seam [`TraceSet::record_resilient`] reads traces
/// through, so fault-injection tests corrupt bytes between disk and
/// verification without touching real files.
#[derive(Debug)]
pub struct FaultyIo<'a> {
    plan: &'a FaultPlan,
}

impl<'a> FaultyIo<'a> {
    /// Wraps standard I/O with `plan`'s read faults.
    pub fn new(plan: &'a FaultPlan) -> FaultyIo<'a> {
        FaultyIo { plan }
    }
}

impl TraceIo for FaultyIo<'_> {
    fn read(&self, path: &Path) -> Result<Vec<u8>, TraceError> {
        let mut bytes = StdIo.read(path)?;
        self.plan.apply_read(path, &mut bytes);
        Ok(bytes)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), TraceError> {
        StdIo.write_atomic(path, bytes)
    }
}

/// Identity hash of one grid cell under one spec: everything that
/// determines the cell's result. Journal entries are keyed by this, so
/// a journal recorded under a different spec, workload knob set, depth
/// or configuration can never satisfy a resume lookup.
pub fn cell_fingerprint(point: &SweepPoint, spec: Spec) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, b"arvi-sweep-cell-v1");
    h = fnv1a(h, &point.workload.fingerprint().to_le_bytes());
    h = fnv1a(h, &spec.seed.to_le_bytes());
    h = fnv1a(h, &spec.warmup.to_le_bytes());
    h = fnv1a(h, &spec.measure.to_le_bytes());
    h = fnv1a(h, &point.depth.stages().to_le_bytes());
    h = fnv1a(h, &(config_index(point.config) as u64).to_le_bytes());
    h
}

fn config_index(config: PredictorConfig) -> usize {
    PredictorConfig::all()
        .iter()
        .position(|&c| c == config)
        .expect("known config")
}

fn accuracy_json(a: Accuracy) -> Json {
    Json::Arr(vec![
        Json::Num(a.correct() as f64),
        Json::Num(a.total() as f64),
    ])
}

fn accuracy_from(json: &Json, path: &str) -> Option<Accuracy> {
    match json.get(path)? {
        Json::Arr(v) if v.len() == 2 => match (&v[0], &v[1]) {
            (Json::Num(c), Json::Num(t)) if *c >= 0.0 && c <= t => {
                Some(Accuracy::from_counts(*c as u64, *t as u64))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Serializes one completed cell for the journal. All counters fit f64
/// exactly (they are bounded by the instruction window, far below 2^53).
fn entry_json(result: &SimResult, degradation: Degradation, duration: Duration) -> Json {
    let w = &result.window;
    Json::obj([
        ("name", Json::str(result.name)),
        ("config", Json::Num(config_index(result.config) as f64)),
        ("depth", Json::Num(result.depth_stages as f64)),
        ("degraded", Json::str(degradation.tag())),
        ("dur_us", Json::Num(duration.as_micros() as f64)),
        (
            "window",
            Json::obj([
                ("committed", Json::Num(w.committed as f64)),
                ("cycles", Json::Num(w.cycles as f64)),
                ("cond", accuracy_json(w.cond_branches)),
                ("l1", accuracy_json(w.l1_only)),
                ("calc", accuracy_json(w.calc_class)),
                ("load", accuracy_json(w.load_class)),
                ("overrides", Json::Num(w.overrides as f64)),
                ("correcting", Json::Num(w.overrides_correcting as f64)),
                ("bvit", Json::Num(w.bvit_hits as f64)),
                ("full_misp", Json::Num(w.full_mispredicts as f64)),
                ("restarts", Json::Num(w.override_restarts as f64)),
            ]),
        ),
    ])
}

fn entry_from_json(json: &Json) -> Option<(SimResult, Degradation, Duration)> {
    let name = match json.get("name")? {
        Json::Str(s) => intern_name(s),
        _ => return None,
    };
    let config = *PredictorConfig::all().get(json.num("config")? as usize)?;
    let degradation = match json.get("degraded")? {
        Json::Str(s) => Degradation::from_tag(s)?,
        _ => return None,
    };
    // Optional: journals written before duration tracking lack it.
    let duration = json
        .num("dur_us")
        .filter(|n| *n >= 0.0)
        .map(|n| Duration::from_micros(n as u64))
        .unwrap_or_default();
    let count = |path: &str| json.num(path).filter(|n| *n >= 0.0).map(|n| n as u64);
    let window = arvi_sim::MachineStats {
        committed: count("window.committed")?,
        cycles: count("window.cycles")?,
        cond_branches: accuracy_from(json, "window.cond")?,
        l1_only: accuracy_from(json, "window.l1")?,
        calc_class: accuracy_from(json, "window.calc")?,
        load_class: accuracy_from(json, "window.load")?,
        overrides: count("window.overrides")?,
        overrides_correcting: count("window.correcting")?,
        bvit_hits: count("window.bvit")?,
        full_mispredicts: count("window.full_misp")?,
        override_restarts: count("window.restarts")?,
    };
    Some((
        SimResult {
            name,
            config,
            depth_stages: json.num("depth")? as u64,
            window,
        },
        degradation,
        duration,
    ))
}

/// Append-only journal of completed sweep cells: a header comment, then
/// one `<fingerprint-hex16> <compact-json>` line per cell, appended
/// (and flushed) as each cell finishes. Crash-tolerant on both ends: a
/// torn final line from an interrupted writer is skipped (with a
/// warning) by the loader, and everything before it still resumes.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl SweepJournal {
    /// Opens `path` for appending, writing a header line when the file
    /// is new or empty.
    pub fn open_append(path: &Path, spec: Spec) -> std::io::Result<SweepJournal> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| io_error_at(parent, e))?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_error_at(path, e))?;
        if file.metadata().map_err(|e| io_error_at(path, e))?.len() == 0 {
            writeln!(
                file,
                "# arvi sweep journal v1 seed={} warmup={} measure={}",
                spec.seed, spec.warmup, spec.measure
            )
            .map_err(|e| io_error_at(path, e))?;
        }
        Ok(SweepJournal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed cell. Persistence failures only warn — a
    /// full disk must not fail the sweep itself.
    pub fn append(
        &self,
        fingerprint: u64,
        result: &SimResult,
        degradation: Degradation,
        duration: Duration,
    ) {
        let line = format!(
            "{fingerprint:016x} {}",
            entry_json(result, degradation, duration).render_compact()
        );
        let mut file = self.file.lock().expect("journal writer panicked");
        if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
            eprintln!(
                "warning: cannot append to sweep journal {}: {e}",
                self.path.display()
            );
        }
    }

    /// Loads every well-formed entry of the journal at `path`. A
    /// missing file is an empty journal; malformed lines (e.g. a torn
    /// final line from a crashed writer) are skipped with a warning.
    pub fn load(path: &Path) -> HashMap<u64, (SimResult, Degradation, Duration)> {
        let mut entries = HashMap::new();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(_) => return entries,
        };
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parsed = line.split_once(' ').and_then(|(fp, json)| {
                let fp = u64::from_str_radix(fp, 16).ok()?;
                let entry = entry_from_json(&Json::parse(json).ok()?)?;
                Some((fp, entry))
            });
            match parsed {
                Some((fp, entry)) => {
                    entries.insert(fp, entry);
                }
                None => eprintln!(
                    "warning: sweep journal {}: skipping malformed line {} \
                     (torn write from an interrupted run?)",
                    path.display(),
                    ln + 1
                ),
            }
        }
        entries
    }
}

/// Runs every grid point with per-cell fault isolation, returning one
/// [`CellOutcome`] per point (item order, like
/// [`crate::sweep::run_sweep_with`]). No cell failure aborts the grid.
///
/// With `traces` set, cells replay shared recordings exactly like the
/// strict sweep; a workload without a usable recording degrades to live
/// emulation (or to [`CellOutcome::TraceError`] when
/// [`Resilience::live_fallback`] is off). With a journal configured,
/// completed cells are appended as they finish; with
/// [`Resilience::resume`], previously journaled cells are restored
/// without re-running — restored results are bit-identical to simulated
/// ones, they are the simulated ones.
pub fn run_sweep_resilient(
    points: &[SweepPoint],
    spec: Spec,
    threads: usize,
    progress: bool,
    traces: Option<&TraceSet>,
    res: &Resilience,
) -> Vec<CellOutcome> {
    let prior = match (&res.journal, res.resume) {
        (Some(path), true) => SweepJournal::load(path),
        _ => HashMap::new(),
    };
    let journal = res.journal.as_ref().and_then(|path| {
        SweepJournal::open_append(path, spec)
            .map_err(|e| {
                eprintln!(
                    "warning: cannot open sweep journal {}: {e} (continuing without)",
                    path.display()
                )
            })
            .ok()
    });

    let threads = threads.clamp(1, points.len().max(1));
    let telemetry = res.telemetry.as_deref();
    let sweep_start = Instant::now();
    if let Some(t) = telemetry {
        t.event(
            "sweep_start",
            vec![
                ("cells".to_string(), Json::Num(points.len() as f64)),
                ("threads".to_string(), Json::Num(threads as f64)),
            ],
        );
    }
    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellOutcome>>> = points.iter().map(|_| Mutex::new(None)).collect();
    let worker = || loop {
        if res
            .plan
            .as_deref()
            .is_some_and(|p| p.kill_now(completed.load(Ordering::Acquire)))
        {
            break;
        }
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(point) = points.get(i) else { break };
        if progress {
            eprintln!("sweep: {point}");
        }
        if let Some(t) = telemetry {
            t.event(
                "cell_start",
                vec![
                    ("cell".to_string(), Json::Num(i as f64)),
                    ("point".to_string(), Json::str(point.to_string())),
                ],
            );
        }
        let outcome = run_cell(i, point, spec, traces, res, &prior);
        if let CellOutcome::Ok(s) = &outcome {
            if !s.resumed {
                if let Some(journal) = &journal {
                    journal.append(
                        cell_fingerprint(point, spec),
                        &s.result,
                        s.degradation,
                        s.duration,
                    );
                }
            }
        }
        if let Some(t) = telemetry {
            emit_cell_events(t, i, point, &outcome, traces.is_some());
        }
        *slots[i].lock().expect("outcome slot") = Some(outcome);
        completed.fetch_add(1, Ordering::Release);
    };
    if threads == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }
    let outcomes: Vec<CellOutcome> = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("outcome slot")
                .unwrap_or(CellOutcome::Skipped)
        })
        .collect();
    if let Some(t) = telemetry {
        for o in &outcomes {
            if matches!(o, CellOutcome::Skipped) {
                t.cell_finished("skipped", None, false, None);
            }
        }
        t.event(
            "sweep_end",
            vec![
                ("cells".to_string(), Json::Num(outcomes.len() as f64)),
                (
                    "completed".to_string(),
                    Json::Num(outcomes.iter().filter(|o| o.success().is_some()).count() as f64),
                ),
                (
                    "dur_us".to_string(),
                    Json::Num(sweep_start.elapsed().as_micros() as f64),
                ),
            ],
        );
        t.sweep_finished();
    }
    outcomes
}

/// The normalized outcome key used in events and metric labels (no
/// spaces or parentheses, unlike [`CellOutcome::label`]).
fn outcome_key(outcome: &CellOutcome) -> &'static str {
    match outcome {
        CellOutcome::Ok(_) => "ok",
        CellOutcome::Panicked { .. } => "panicked",
        CellOutcome::TimedOut { .. } => "timed-out",
        CellOutcome::TraceError { .. } => "trace-error",
        CellOutcome::Skipped => "skipped",
    }
}

/// Emits the `cell_end` event (plus `resume_hit` for journal hits) and
/// updates the cumulative metrics for one dispatched cell.
fn emit_cell_events(
    t: &SweepTelemetry,
    i: usize,
    point: &SweepPoint,
    outcome: &CellOutcome,
    traced: bool,
) {
    let key = outcome_key(outcome);
    let mut fields = vec![
        ("cell".to_string(), Json::Num(i as f64)),
        ("point".to_string(), Json::str(point.to_string())),
        ("outcome".to_string(), Json::str(key)),
    ];
    let mut simulated_duration = None;
    let mut resumed = false;
    let mut degraded = None;
    if let CellOutcome::Ok(s) = outcome {
        resumed = s.resumed;
        let phase = if s.resumed {
            "resumed"
        } else if s.degradation == Degradation::LiveEmulation || !traced {
            "live"
        } else {
            "replay"
        };
        fields.push(("phase".to_string(), Json::str(phase)));
        if s.degradation != Degradation::None {
            degraded = Some(s.degradation.tag());
            fields.push(("degraded".to_string(), Json::str(s.degradation.tag())));
        }
        fields.push((
            "dur_us".to_string(),
            Json::Num(s.duration.as_micros() as f64),
        ));
        if !s.resumed {
            simulated_duration = Some(s.duration);
        }
    } else if let Some(reason) = outcome.failure() {
        fields.push(("reason".to_string(), Json::str(reason)));
    }
    if resumed {
        t.event(
            "resume_hit",
            vec![
                ("cell".to_string(), Json::Num(i as f64)),
                ("point".to_string(), Json::str(point.to_string())),
            ],
        );
    }
    t.event("cell_end", fields);
    t.cell_finished(key, simulated_duration, resumed, degraded);
}

fn run_cell(
    i: usize,
    point: &SweepPoint,
    spec: Spec,
    traces: Option<&TraceSet>,
    res: &Resilience,
    prior: &HashMap<u64, (SimResult, Degradation, Duration)>,
) -> CellOutcome {
    if let Some((result, degradation, duration)) = prior.get(&cell_fingerprint(point, spec)) {
        return CellOutcome::Ok(CellSuccess {
            result: result.clone(),
            degradation: *degradation,
            resumed: true,
            duration: *duration,
            sampled_units: 0,
        });
    }
    let start = Instant::now();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(plan) = res.plan.as_deref() {
            if plan.take_panic(i) {
                panic!("injected fault: panic in cell {i} ({point})");
            }
            if let Some(stall) = plan.take_stall(i) {
                std::thread::sleep(stall);
            }
        }
        let degrade = |reason: String| -> Result<(SimResult, Degradation), String> {
            if res.live_fallback {
                Ok((
                    run_one(&point.workload, point.depth, point.config, spec),
                    Degradation::LiveEmulation,
                ))
            } else {
                Err(reason)
            }
        };
        match traces {
            None => Ok((
                run_one(&point.workload, point.depth, point.config, spec),
                Degradation::None,
            )),
            Some(traces) => match traces.get(&point.workload) {
                Some(trace) if trace.len() >= trace_len(spec) => {
                    let degradation = match traces.provenance(&point.workload) {
                        Some(TraceProvenance::Rerecorded { corrupt: true }) => {
                            Degradation::Requarantined
                        }
                        _ => Degradation::None,
                    };
                    Ok((
                        run_one_traced(trace, point.depth, point.config, spec),
                        degradation,
                    ))
                }
                Some(trace) => degrade(format!(
                    "trace {} holds {} instructions but the window needs {}",
                    trace.name(),
                    trace.len(),
                    trace_len(spec)
                )),
                None => degrade(match traces.provenance(&point.workload) {
                    Some(TraceProvenance::Unavailable { reason }) => reason.clone(),
                    _ => format!("no recording for workload {}", point.workload),
                }),
            },
        }
    }));
    let elapsed = start.elapsed();
    match attempt {
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            if message.contains(REPLAY_PANIC_PREFIX) {
                CellOutcome::TraceError { message }
            } else {
                CellOutcome::Panicked { message }
            }
        }
        Ok(Err(message)) => CellOutcome::TraceError { message },
        Ok(Ok((result, degradation))) => match res.deadline {
            Some(deadline) if elapsed > deadline => CellOutcome::TimedOut { elapsed, deadline },
            _ => CellOutcome::Ok(CellSuccess {
                result,
                degradation,
                resumed: false,
                duration: elapsed,
                sampled_units: 0,
            }),
        },
    }
}

/// Renders a caught panic payload (the `&str`/`String` payloads `panic!`
/// produces; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        match payload.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => "<non-string panic payload>".to_string(),
        }
    }
}

/// A sweep that did not complete every cell: which cells failed and
/// why. Rendered with a resume hint.
#[derive(Debug, Clone)]
pub struct SweepIncomplete {
    /// Cells in the grid.
    pub total: usize,
    /// Failed/skipped cells: `(index, point, reason)`.
    pub failed: Vec<(usize, String, String)>,
}

impl std::fmt::Display for SweepIncomplete {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sweep incomplete: {} of {} cells did not finish:",
            self.failed.len(),
            self.total
        )?;
        for (i, point, reason) in &self.failed {
            writeln!(f, "  cell {i} ({point}): {reason}")?;
        }
        write!(
            f,
            "completed cells are journaled; re-run with --resume to finish the rest"
        )
    }
}

impl std::error::Error for SweepIncomplete {}

/// Unwraps a resilient sweep into plain results, or reports every
/// failed cell. `outcomes` must be [`run_sweep_resilient`]'s output for
/// `points`.
pub fn collect_results(
    points: &[SweepPoint],
    outcomes: Vec<CellOutcome>,
) -> Result<Vec<SimResult>, SweepIncomplete> {
    assert_eq!(points.len(), outcomes.len(), "one outcome per point");
    let mut results = Vec::with_capacity(outcomes.len());
    let mut failed = Vec::new();
    for (i, (point, outcome)) in points.iter().zip(outcomes).enumerate() {
        match outcome {
            CellOutcome::Ok(s) => results.push(s.result),
            other => failed.push((
                i,
                point.to_string(),
                other.failure().expect("non-ok outcome has a reason"),
            )),
        }
    }
    if failed.is_empty() {
        Ok(results)
    } else {
        Err(SweepIncomplete {
            total: points.len(),
            failed,
        })
    }
}

/// One-line degradation/resume summary of a resilient sweep, or `None`
/// when every cell ran the normal path (nothing worth reporting).
pub fn outcome_summary(outcomes: &[CellOutcome]) -> Option<String> {
    let mut resumed = 0usize;
    let mut requarantined = 0usize;
    let mut live = 0usize;
    let mut failed = 0usize;
    for o in outcomes {
        match o {
            CellOutcome::Ok(s) => {
                resumed += s.resumed as usize;
                match s.degradation {
                    Degradation::None => {}
                    Degradation::Requarantined => requarantined += 1,
                    Degradation::LiveEmulation => live += 1,
                }
            }
            _ => failed += 1,
        }
    }
    if resumed + requarantined + live + failed == 0 {
        return None;
    }
    let mut parts = Vec::new();
    if resumed > 0 {
        parts.push(format!("{resumed} resumed from journal"));
    }
    if requarantined > 0 {
        parts.push(format!("{requarantined} replayed a re-recorded trace"));
    }
    if live > 0 {
        parts.push(format!("{live} fell back to live emulation"));
    }
    if failed > 0 {
        parts.push(format!("{failed} failed"));
    }
    Some(format!("resilience: {}", parts.join(", ")))
}

/// End-of-grid timing report: total/min/mean/max per-cell wall-clock
/// time, the record-vs-replay-vs-machine phase breakdown, and a log2
/// duration histogram. `record_elapsed` is the trace-recording phase
/// (from [`TraceSet::record_elapsed`]); `None` for sweeps with no trace
/// set. Returns `None` when no cell ran in this process (e.g. a fully
/// resumed grid).
pub fn timing_summary(
    outcomes: &[CellOutcome],
    record_elapsed: Option<Duration>,
) -> Option<String> {
    let mut hist = arvi_obs::Log2Hist::new();
    let mut replay = Duration::ZERO;
    let mut replay_cells = 0usize;
    let mut live = Duration::ZERO;
    let mut live_cells = 0usize;
    let mut resumed = 0usize;
    let (mut min, mut max) = (Duration::MAX, Duration::ZERO);
    for o in outcomes {
        let Some(s) = o.success() else { continue };
        if s.resumed {
            resumed += 1;
            continue;
        }
        match s.degradation {
            Degradation::LiveEmulation => {
                live += s.duration;
                live_cells += 1;
            }
            Degradation::None | Degradation::Requarantined => {
                replay += s.duration;
                replay_cells += 1;
            }
        }
        hist.record(s.duration.as_millis() as u64);
        min = min.min(s.duration);
        max = max.max(s.duration);
    }
    let cells = replay_cells + live_cells;
    if cells == 0 {
        return None;
    }
    let total = replay + live;
    let secs = |d: Duration| d.as_secs_f64();
    let mut out = format!(
        "sweep timing: {cells} cells in {:.2}s wall (replay {:.2}s/{replay_cells}, \
         machine {:.2}s/{live_cells}",
        secs(total),
        secs(replay),
        secs(live),
    );
    if let Some(record) = record_elapsed {
        out.push_str(&format!(", record phase {:.2}s", secs(record)));
    }
    if resumed > 0 {
        out.push_str(&format!(", {resumed} resumed not re-timed"));
    }
    out.push_str(&format!(
        "); per-cell min/mean/max {:.3}/{:.3}/{:.3}s\n",
        secs(min),
        secs(total) / cells as f64,
        secs(max),
    ));
    out.push_str("cell duration histogram (ms):");
    for (lo, n) in hist.nonzero_buckets() {
        out.push_str(&format!(" [{}]={n}", arvi_obs::Log2Hist::bucket_label(lo)));
    }
    Some(out)
}

pub use crate::sweep::TraceProvenance;

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_sim::Depth;
    use arvi_workloads::Benchmark;

    fn point(b: Benchmark) -> SweepPoint {
        SweepPoint {
            workload: b.into(),
            depth: Depth::D20,
            config: PredictorConfig::ArviCurrent,
        }
    }

    fn tiny_spec() -> Spec {
        Spec {
            warmup: 500,
            measure: 1_500,
            seed: 3,
        }
    }

    #[test]
    fn fault_plan_parses_every_kind_and_rejects_garbage() {
        let plan = FaultPlan::parse(
            "# a comment\n\
             flip li 100\n\
             flip-chunk go 2 7   # trailing comment\n\
             truncate compress 64\n\
             panic-cell 3\n\
             stall-cell 1 250\n\
             kill-after 5\n\
             \n",
        )
        .unwrap();
        assert_eq!(plan.len(), 6);
        assert!(FaultPlan::parse("explode everything").is_err());
        assert!(FaultPlan::parse("flip li").is_err());
        assert!(FaultPlan::parse("panic-cell x").is_err());
        assert!(FaultPlan::parse("kill-after 5 extra").is_err());
    }

    #[test]
    fn faults_fire_exactly_once() {
        let plan = FaultPlan::parse("panic-cell 2\nstall-cell 0 10\nkill-after 3").unwrap();
        assert!(plan.take_panic(2));
        assert!(!plan.take_panic(2), "one-shot");
        assert!(!plan.take_panic(1));
        assert_eq!(plan.take_stall(0), Some(Duration::from_millis(10)));
        assert_eq!(plan.take_stall(0), None);
        // kill-after is sticky, not consumed.
        assert!(!plan.kill_now(2));
        assert!(plan.kill_now(3));
        assert!(plan.kill_now(4));
    }

    #[test]
    fn read_faults_match_by_workload_prefix() {
        let plan = FaultPlan::parse("flip li 1\ntruncate go 4").unwrap();
        let mut li = vec![0u8; 8];
        plan.apply_read(Path::new("/tmp/li-s3-w500-m1500.arvitrace"), &mut li);
        assert_eq!(li[1], 0xFF);
        // `li` fault must not fire on a different workload, and is spent.
        let mut go = vec![0u8; 8];
        plan.apply_read(Path::new("go-s3-w500-m1500.arvitrace"), &mut go);
        assert_eq!(go.len(), 4);
        assert!(go.iter().all(|&b| b == 0));
    }

    #[test]
    fn cell_fingerprint_separates_every_axis() {
        let spec = tiny_spec();
        let base = point(Benchmark::Li);
        let fp = cell_fingerprint(&base, spec);
        assert_eq!(fp, cell_fingerprint(&base.clone(), spec), "stable");
        let mut other = base.clone();
        other.depth = Depth::D40;
        assert_ne!(fp, cell_fingerprint(&other, spec));
        let mut other = base.clone();
        other.config = PredictorConfig::TwoLevelGskew;
        assert_ne!(fp, cell_fingerprint(&other, spec));
        assert_ne!(fp, cell_fingerprint(&point(Benchmark::Go), spec));
        let mut spec2 = spec;
        spec2.measure += 1;
        assert_ne!(fp, cell_fingerprint(&base, spec2));
        let mut spec3 = spec;
        spec3.seed += 1;
        assert_ne!(fp, cell_fingerprint(&base, spec3));
    }

    #[test]
    fn journal_round_trips_results_exactly() {
        let spec = tiny_spec();
        let p = point(Benchmark::Compress);
        let result = run_one(&p.workload, p.depth, p.config, spec);
        let dir = std::env::temp_dir().join(format!("arvi-journal-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("sweep.journal");
        let journal = SweepJournal::open_append(&path, spec).unwrap();
        journal.append(
            cell_fingerprint(&p, spec),
            &result,
            Degradation::Requarantined,
            Duration::from_micros(123_456),
        );
        drop(journal);
        let loaded = SweepJournal::load(&path);
        let (got, degradation, duration) = loaded
            .get(&cell_fingerprint(&p, spec))
            .expect("entry present");
        assert_eq!(*degradation, Degradation::Requarantined);
        assert_eq!(*duration, Duration::from_micros(123_456));
        assert_eq!(got.name, result.name);
        assert_eq!(got.config, result.config);
        assert_eq!(got.depth_stages, result.depth_stages);
        assert_eq!(got.window.committed, result.window.committed);
        assert_eq!(got.window.cycles, result.window.cycles);
        assert_eq!(got.window.cond_branches, result.window.cond_branches);
        assert_eq!(got.window.l1_only, result.window.l1_only);
        assert_eq!(got.window.calc_class, result.window.calc_class);
        assert_eq!(got.window.load_class, result.window.load_class);
        assert_eq!(got.window.overrides, result.window.overrides);
        assert_eq!(
            got.window.overrides_correcting,
            result.window.overrides_correcting
        );
        assert_eq!(got.window.bvit_hits, result.window.bvit_hits);
        assert_eq!(got.window.full_mispredicts, result.window.full_mispredicts);
        assert_eq!(
            got.window.override_restarts,
            result.window.override_restarts
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_loader_skips_torn_lines() {
        let dir = std::env::temp_dir().join(format!("arvi-torn-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = tiny_spec();
        let p = point(Benchmark::Li);
        let result = run_one(&p.workload, p.depth, p.config, spec);
        let path = dir.join("sweep.journal");
        let journal = SweepJournal::open_append(&path, spec).unwrap();
        journal.append(
            cell_fingerprint(&p, spec),
            &result,
            Degradation::None,
            Duration::ZERO,
        );
        drop(journal);
        // Simulate a crash mid-append: a torn, incomplete final line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("deadbeefdeadbeef {\"name\":\"go\",\"config\":1,\"de");
        std::fs::write(&path, text).unwrap();
        let loaded = SweepJournal::load(&path);
        assert_eq!(loaded.len(), 1, "good line kept, torn line dropped");
        assert!(loaded.contains_key(&cell_fingerprint(&p, spec)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn outcome_summary_counts_paths() {
        let spec = tiny_spec();
        let p = point(Benchmark::Li);
        let result = run_one(&p.workload, p.depth, p.config, spec);
        let ok = |degradation, resumed| {
            CellOutcome::Ok(CellSuccess {
                result: result.clone(),
                degradation,
                resumed,
                duration: Duration::from_millis(40),
                sampled_units: 0,
            })
        };
        assert_eq!(outcome_summary(&[ok(Degradation::None, false)]), None);
        let summary = outcome_summary(&[
            ok(Degradation::None, true),
            ok(Degradation::LiveEmulation, false),
            CellOutcome::Panicked {
                message: "boom".into(),
            },
        ])
        .unwrap();
        assert!(summary.contains("1 resumed"));
        assert!(summary.contains("1 fell back"));
        assert!(summary.contains("1 failed"));
    }

    #[test]
    fn timing_summary_breaks_down_phases() {
        let spec = tiny_spec();
        let p = point(Benchmark::Li);
        let result = run_one(&p.workload, p.depth, p.config, spec);
        let ok = |degradation, resumed, ms| {
            CellOutcome::Ok(CellSuccess {
                result: result.clone(),
                degradation,
                resumed,
                duration: Duration::from_millis(ms),
                sampled_units: 0,
            })
        };
        // Nothing ran in-process: resumed-only grids report no timing.
        assert_eq!(
            timing_summary(&[ok(Degradation::None, true, 70)], None),
            None
        );
        let summary = timing_summary(
            &[
                ok(Degradation::None, false, 100),
                ok(Degradation::LiveEmulation, false, 300),
                ok(Degradation::None, true, 70), // resumed: excluded
                CellOutcome::Panicked {
                    message: "boom".into(),
                },
            ],
            Some(Duration::from_millis(250)),
        )
        .unwrap();
        assert!(summary.contains("2 cells in 0.40s"), "{summary}");
        assert!(summary.contains("replay 0.10s/1"), "{summary}");
        assert!(summary.contains("machine 0.30s/1"), "{summary}");
        assert!(summary.contains("record phase 0.25s"), "{summary}");
        assert!(summary.contains("1 resumed not re-timed"), "{summary}");
        assert!(
            summary.contains("min/mean/max 0.100/0.200/0.300s"),
            "{summary}"
        );
        // 100ms -> [64-127], 300ms -> [256-511].
        assert!(summary.contains("[64-127]=1"), "{summary}");
        assert!(summary.contains("[256-511]=1"), "{summary}");
    }

    #[test]
    fn journal_without_duration_field_still_loads() {
        // Journals from before duration tracking lack `dur_us`; their
        // entries must load with a zero duration, not be dropped.
        let spec = tiny_spec();
        let p = point(Benchmark::Li);
        let result = run_one(&p.workload, p.depth, p.config, spec);
        let dir = std::env::temp_dir().join(format!("arvi-olddur-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("sweep.journal");
        let journal = SweepJournal::open_append(&path, spec).unwrap();
        journal.append(
            cell_fingerprint(&p, spec),
            &result,
            Degradation::None,
            Duration::from_millis(5),
        );
        drop(journal);
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"dur_us\":5000,", "");
        std::fs::write(&path, text).unwrap();
        let loaded = SweepJournal::load(&path);
        let (_, _, duration) = loaded
            .get(&cell_fingerprint(&p, spec))
            .expect("entry still loads");
        assert_eq!(*duration, Duration::ZERO);
        std::fs::remove_dir_all(&dir).ok();
    }
}

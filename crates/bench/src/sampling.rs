//! Sampled sweeps: the `--sample` execution mode of the experiment
//! binaries.
//!
//! A sampled sweep replaces each cell's full detailed run with a
//! [`SamplePlan`] over the cell's recorded trace: `k`-periodic units of
//! functional warm-up + detailed measurement (see `arvi_sampling`). The
//! work list is the *flattened* `(cell, unit)` grid, fanned out over one
//! atomic-cursor worker pool — so even a single long-window cell
//! saturates every core, which is the point: intra-run parallelism that
//! the serial full run cannot have.
//!
//! Sampled sweeps compose with the whole resilience stack:
//!
//! * every finished unit is journaled individually (keyed by
//!   [`unit_fingerprint`]), so a killed run resumes per *unit*, not per
//!   cell;
//! * unit panics and trace errors are isolated per cell, like
//!   [`run_sweep_resilient`](crate::resilience::run_sweep_resilient);
//! * a cell whose workload has no usable recording cannot be sampled
//!   (sampling seeks; live emulation cannot) and falls back to a full
//!   live run, reported as [`Degradation::LiveEmulation`] with
//!   `sampled_units == 0`.
//!
//! Determinism: unit results are committed in flattened-grid order and
//! merged with integer-exact counter sums, so a sampled sweep's results
//! — including every CI — are bit-identical across thread counts and
//! across kill + `--resume`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use arvi_sampling::{aggregate, run_unit, SamplePlan, SampleReport, SampleUnit};
use arvi_sim::{intern_name, SimParams, SimResult};
use arvi_stats::Table;
use arvi_trace::REPLAY_PANIC_PREFIX;

use crate::harness::Spec;
use crate::resilience::{
    cell_fingerprint, panic_message, CellOutcome, CellSuccess, Degradation, Resilience,
    SweepJournal,
};
use crate::sweep::{trace_len, SweepPoint, TraceProvenance, TraceSet};
use crate::workload::fnv1a;

/// Parses a `--sample PLAN` argument pair out of `args`
/// (`k:warmup:detail` or `stratified:k:warmup:detail`; see
/// [`SamplePlan::parse`]). `Ok(None)` when the flag is absent.
pub fn sample_plan_from_args(args: &[String]) -> Result<Option<SamplePlan>, String> {
    match args.iter().position(|a| a == "--sample") {
        None => Ok(None),
        Some(i) => {
            let v = args
                .get(i + 1)
                .filter(|v| !v.starts_with('-'))
                .ok_or("--sample needs a plan (k:warmup:detail)")?;
            SamplePlan::parse(v).map(Some)
        }
    }
}

/// A completed sampled sweep: one [`CellOutcome`] per grid point (as the
/// resilient runner reports), plus the per-cell [`SampleReport`] — the
/// CI-carrying aggregate — for every cell that actually sampled
/// (`None` for live-fallback cells and failures).
#[derive(Debug)]
pub struct SampledSweep {
    /// One outcome per grid point, in grid order.
    pub outcomes: Vec<CellOutcome>,
    /// One report per grid point, in grid order; `None` where the cell
    /// did not produce sampled estimates.
    pub reports: Vec<Option<SampleReport>>,
}

/// Identity hash of one sampling unit of one cell: the cell fingerprint
/// extended with the plan (whose placement determines the unit's trace
/// positions) and the unit index. Journal entries written under a
/// different plan or unit can never satisfy a resume lookup.
pub fn unit_fingerprint(point: &SweepPoint, spec: Spec, plan: &SamplePlan, unit: u64) -> u64 {
    let mut h = fnv1a(cell_fingerprint(point, spec), b"arvi-sampled-unit-v1");
    h = fnv1a(h, plan.to_string().as_bytes());
    h = fnv1a(h, &unit.to_le_bytes());
    h
}

/// What a cell runs under a sampled sweep.
enum CellMode {
    /// The cell samples `plan`'s units over its recording.
    Sampled { degradation: Degradation },
    /// No usable recording: the cell runs full-length live emulation
    /// (sampling needs a seekable trace), or fails when
    /// [`Resilience::live_fallback`] is off.
    Fallback,
}

/// One finished work item.
enum Done {
    Unit {
        stats: arvi_sim::MachineStats,
        duration: Duration,
        resumed: bool,
    },
    Whole(CellOutcome),
    Failed {
        message: String,
        trace_error: bool,
    },
}

/// Runs `plan` over every grid point, fanning the flattened
/// `(cell, unit)` work list out over `threads` workers. See the module
/// docs for the resilience and determinism contract.
pub fn run_sweep_sampled(
    points: &[SweepPoint],
    spec: Spec,
    plan: &SamplePlan,
    threads: usize,
    progress: bool,
    traces: &TraceSet,
    res: Option<&Resilience>,
) -> SampledSweep {
    let default_res = Resilience::new();
    let res = res.unwrap_or(&default_res);
    // Detail windows live inside the measurement window; unit warm-up
    // may reach back into the spec warm-up prefix (recorded too).
    let units = plan.units(spec.warmup, spec.measure, spec.seed);
    let prior = match (&res.journal, res.resume) {
        (Some(path), true) => SweepJournal::load(path),
        _ => HashMap::new(),
    };
    let journal = res.journal.as_ref().and_then(|path| {
        SweepJournal::open_append(path, spec)
            .map_err(|e| {
                eprintln!(
                    "warning: cannot open sweep journal {}: {e} (continuing without)",
                    path.display()
                )
            })
            .ok()
    });

    let modes: Vec<CellMode> = points
        .iter()
        .map(|point| match traces.get(&point.workload) {
            Some(trace) if trace.len() >= trace_len(spec) => CellMode::Sampled {
                degradation: match traces.provenance(&point.workload) {
                    Some(TraceProvenance::Rerecorded { corrupt: true }) => {
                        Degradation::Requarantined
                    }
                    _ => Degradation::None,
                },
            },
            _ => CellMode::Fallback,
        })
        .collect();

    // The flattened work list: every unit of every sampled cell is its
    // own schedulable item; fallback cells are one whole-run item.
    let mut items: Vec<(usize, Option<usize>)> = Vec::new();
    for (i, mode) in modes.iter().enumerate() {
        match mode {
            CellMode::Sampled { .. } => items.extend((0..units.len()).map(|j| (i, Some(j)))),
            CellMode::Fallback => items.push((i, None)),
        }
    }
    if progress {
        eprintln!(
            "sampled sweep: {} cells x {} units (plan {plan}), {} work items on {} threads",
            points.len(),
            units.len(),
            items.len(),
            threads.clamp(1, items.len().max(1)),
        );
    }

    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Done>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let worker = || loop {
        if res
            .plan
            .as_deref()
            .is_some_and(|p| p.kill_now(completed.load(Ordering::Acquire)))
        {
            break;
        }
        let idx = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&(cell, unit)) = items.get(idx) else {
            break;
        };
        let point = &points[cell];
        let done = match unit {
            Some(j) => run_unit_item(point, spec, plan, &units[j], j, traces, &prior, &journal),
            None => Done::Whole(run_fallback_cell(point, spec, res, &prior, &journal)),
        };
        *slots[idx].lock().expect("sampled item slot") = Some(done);
        completed.fetch_add(1, Ordering::Release);
    };
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }
    let mut done: Vec<Option<Done>> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("sampled item slot"))
        .collect();

    // Assemble per cell, consuming the flattened slots in order (the
    // items vector groups each cell's units contiguously).
    let mut outcomes = Vec::with_capacity(points.len());
    let mut reports = Vec::with_capacity(points.len());
    let mut next = 0usize;
    for (i, (point, mode)) in points.iter().zip(&modes).enumerate() {
        match mode {
            CellMode::Fallback => {
                let slot = done[next].take();
                next += 1;
                outcomes.push(match slot {
                    Some(Done::Whole(outcome)) => outcome,
                    _ => CellOutcome::Skipped,
                });
                reports.push(None);
            }
            CellMode::Sampled { degradation } => {
                let cell_slots = &mut done[next..next + units.len()];
                next += units.len();
                let (outcome, report) = assemble_cell(point, spec, i, cell_slots, *degradation);
                outcomes.push(outcome);
                reports.push(report);
            }
        }
    }
    SampledSweep { outcomes, reports }
}

/// Runs (or restores) one sampling unit and journals a fresh result.
#[allow(clippy::too_many_arguments)]
fn run_unit_item(
    point: &SweepPoint,
    spec: Spec,
    plan: &SamplePlan,
    unit: &SampleUnit,
    unit_index: usize,
    traces: &TraceSet,
    prior: &HashMap<u64, (SimResult, Degradation, Duration)>,
    journal: &Option<SweepJournal>,
) -> Done {
    let fp = unit_fingerprint(point, spec, plan, unit_index as u64);
    if let Some((result, _, duration)) = prior.get(&fp) {
        return Done::Unit {
            stats: result.window.clone(),
            duration: *duration,
            resumed: true,
        };
    }
    let trace = traces
        .get(&point.workload)
        .expect("sampled cells have a recording");
    let params = SimParams::for_depth(point.depth);
    let start = Instant::now();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_unit(trace, &params, point.config, unit)
    }));
    let duration = start.elapsed();
    match attempt {
        Ok(Ok(stats)) => {
            if let Some(journal) = journal {
                // One journal entry per unit, in the cell entry format:
                // the unit's counter block rides in the `window` field.
                let entry = SimResult {
                    name: intern_name(point.workload.name()),
                    config: point.config,
                    depth_stages: point.depth.stages(),
                    window: stats.clone(),
                };
                journal.append(fp, &entry, Degradation::None, duration);
            }
            Done::Unit {
                stats,
                duration,
                resumed: false,
            }
        }
        Ok(Err(e)) => Done::Failed {
            message: e.to_string(),
            trace_error: true,
        },
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            let trace_error = message.contains(REPLAY_PANIC_PREFIX);
            Done::Failed {
                message,
                trace_error,
            }
        }
    }
}

/// Full live run for a cell that cannot be sampled (no usable trace).
fn run_fallback_cell(
    point: &SweepPoint,
    spec: Spec,
    res: &Resilience,
    prior: &HashMap<u64, (SimResult, Degradation, Duration)>,
    journal: &Option<SweepJournal>,
) -> CellOutcome {
    // Full-run results are plan-independent, so the plain cell
    // fingerprint keys them — a resumed full sweep's entries count.
    let fp = cell_fingerprint(point, spec);
    if let Some((result, degradation, duration)) = prior.get(&fp) {
        return CellOutcome::Ok(CellSuccess {
            result: result.clone(),
            degradation: *degradation,
            resumed: true,
            duration: *duration,
            sampled_units: 0,
        });
    }
    if !res.live_fallback {
        return CellOutcome::TraceError {
            message: format!(
                "no usable recording for workload {} — sampling requires a seekable trace \
                 and live fallback is disabled",
                point.workload
            ),
        };
    }
    let start = Instant::now();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::harness::run_one(&point.workload, point.depth, point.config, spec)
    }));
    let duration = start.elapsed();
    match attempt {
        Ok(result) => {
            if let Some(journal) = journal {
                journal.append(fp, &result, Degradation::LiveEmulation, duration);
            }
            CellOutcome::Ok(CellSuccess {
                result,
                degradation: Degradation::LiveEmulation,
                resumed: false,
                duration,
                sampled_units: 0,
            })
        }
        Err(payload) => CellOutcome::Panicked {
            message: panic_message(payload.as_ref()),
        },
    }
}

/// Folds one sampled cell's unit slots into its outcome and report.
fn assemble_cell(
    point: &SweepPoint,
    spec: Spec,
    cell: usize,
    slots: &mut [Option<Done>],
    degradation: Degradation,
) -> (CellOutcome, Option<SampleReport>) {
    let mut stats = Vec::with_capacity(slots.len());
    let mut duration = Duration::ZERO;
    let mut all_resumed = true;
    let mut missing = false;
    for slot in slots.iter_mut() {
        match slot.take() {
            Some(Done::Unit {
                stats: s,
                duration: d,
                resumed,
            }) => {
                stats.push(s);
                duration += d;
                all_resumed &= resumed;
            }
            Some(Done::Failed {
                message,
                trace_error,
            }) => {
                let message = format!("cell {cell} ({point}): {message}");
                let outcome = if trace_error {
                    CellOutcome::TraceError { message }
                } else {
                    CellOutcome::Panicked { message }
                };
                return (outcome, None);
            }
            Some(Done::Whole(_)) => unreachable!("sampled cells have no whole-run items"),
            None => missing = true,
        }
    }
    if missing {
        // Some units were never dispatched (simulated kill); journaled
        // ones will be restored by a --resume re-run.
        return (CellOutcome::Skipped, None);
    }
    let report = aggregate(&stats, spec.measure);
    let result = SimResult {
        name: intern_name(point.workload.name()),
        config: point.config,
        depth_stages: point.depth.stages(),
        window: report.totals.clone(),
    };
    let units = report.ipc.units.max(stats.len());
    (
        CellOutcome::Ok(CellSuccess {
            result,
            degradation,
            resumed: all_resumed,
            duration,
            sampled_units: units,
        }),
        Some(report),
    )
}

/// The per-cell confidence-interval table of a sampled sweep: IPC and
/// accuracy estimates with 95% half-widths, unit counts and coverage.
/// Cells without a report (live fallback, failures) show a dash.
pub fn sample_ci_table(points: &[SweepPoint], sweep: &SampledSweep) -> Table {
    let mut t = Table::new(vec![
        "workload".into(),
        "depth".into(),
        "config".into(),
        "IPC".into(),
        "±95%".into(),
        "accuracy".into(),
        "±95%".into(),
        "units".into(),
        "coverage".into(),
    ]);
    for (point, report) in points.iter().zip(&sweep.reports) {
        let mut row = vec![
            point.workload.name().to_string(),
            point.depth.to_string(),
            point.config.label().to_string(),
        ];
        match report {
            Some(r) => row.extend([
                format!("{:.4}", r.ipc.mean),
                format!("{:.4}", r.ipc.ci_half_width()),
                format!("{:.4}", r.accuracy.mean),
                format!("{:.4}", r.accuracy.ci_half_width()),
                format!("{}", r.units()),
                format!("{:.1}%", r.coverage() * 100.0),
            ]),
            None => row.extend(std::iter::repeat_n("-".to_string(), 6)),
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::grid;
    use crate::workload::Workload;
    use arvi_sim::{Depth, PredictorConfig};
    use arvi_workloads::Benchmark;

    fn tiny_spec() -> Spec {
        Spec {
            warmup: 2_000,
            measure: 8_000,
            seed: 3,
        }
    }

    #[test]
    fn sample_flag_parses() {
        let args = |l: &[&str]| l.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(sample_plan_from_args(&args(&["--quick"])).unwrap(), None);
        let plan = sample_plan_from_args(&args(&["--sample", "4:1000:500"]))
            .unwrap()
            .unwrap();
        assert_eq!(plan, SamplePlan::systematic(4, 1000, 500));
        assert!(sample_plan_from_args(&args(&["--sample"])).is_err());
        assert!(sample_plan_from_args(&args(&["--sample", "--quick"])).is_err());
        assert!(sample_plan_from_args(&args(&["--sample", "nope"])).is_err());
    }

    #[test]
    fn unit_fingerprints_separate_plan_and_unit() {
        let spec = tiny_spec();
        let point = SweepPoint {
            workload: Benchmark::Li.into(),
            depth: Depth::D20,
            config: PredictorConfig::ArviCurrent,
        };
        let a = SamplePlan::systematic(4, 1000, 500);
        let b = SamplePlan::systematic(2, 1000, 500);
        let fp = unit_fingerprint(&point, spec, &a, 0);
        assert_eq!(fp, unit_fingerprint(&point, spec, &a, 0));
        assert_ne!(fp, unit_fingerprint(&point, spec, &a, 1));
        assert_ne!(fp, unit_fingerprint(&point, spec, &b, 0));
        assert_ne!(fp, cell_fingerprint(&point, spec), "unit keys are distinct");
    }

    #[test]
    fn sampled_sweep_is_thread_invariant_and_reports_cis() {
        let spec = tiny_spec();
        let workloads = [Workload::from(Benchmark::Compress)];
        let points = grid(&workloads, &[Depth::D20], &[PredictorConfig::ArviCurrent]);
        let traces = TraceSet::record(&workloads, spec, 1, None);
        let plan = SamplePlan::systematic(2, 500, 1_000);
        let one = run_sweep_sampled(&points, spec, &plan, 1, false, &traces, None);
        let four = run_sweep_sampled(&points, spec, &plan, 4, false, &traces, None);
        for sweep in [&one, &four] {
            let s = sweep.outcomes[0].success().expect("cell sampled");
            assert_eq!(s.sampled_units, 4, "8k measure / (2*1k) stride");
            let r = sweep.reports[0].as_ref().expect("report present");
            assert_eq!(r.units(), 4);
            assert!((r.coverage() - 0.5).abs() < 0.01);
            assert!(r.ipc.mean > 0.0);
        }
        let (a, b) = (
            &one.outcomes[0].success().unwrap().result.window,
            &four.outcomes[0].success().unwrap().result.window,
        );
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.cond_branches, b.cond_branches);
        let (ra, rb) = (
            one.reports[0].as_ref().unwrap(),
            four.reports[0].as_ref().unwrap(),
        );
        assert_eq!(ra.ipc.mean.to_bits(), rb.ipc.mean.to_bits());
        assert_eq!(ra.ipc.stderr.to_bits(), rb.ipc.stderr.to_bits());
        let table = sample_ci_table(&points, &one);
        assert!(table.to_text().contains("coverage"));
    }

    #[test]
    fn cell_without_trace_falls_back_to_live_full_run() {
        let spec = tiny_spec();
        let recorded = [Workload::from(Benchmark::Compress)];
        // Grid includes a workload the trace set never recorded.
        let points = grid(
            &[Workload::from(Benchmark::Li)],
            &[Depth::D20],
            &[PredictorConfig::TwoLevelGskew],
        );
        let traces = TraceSet::record(&recorded, spec, 1, None);
        let plan = SamplePlan::systematic(2, 500, 1_000);
        let sweep = run_sweep_sampled(&points, spec, &plan, 2, false, &traces, None);
        let s = sweep.outcomes[0].success().expect("fallback ran");
        assert_eq!(s.degradation, Degradation::LiveEmulation);
        assert_eq!(s.sampled_units, 0);
        assert!(sweep.reports[0].is_none());
        // And with fallback disabled, the same cell is a trace error.
        let mut res = Resilience::new();
        res.live_fallback = false;
        let sweep = run_sweep_sampled(&points, spec, &plan, 2, false, &traces, Some(&res));
        assert!(matches!(sweep.outcomes[0], CellOutcome::TraceError { .. }));
    }

    #[test]
    fn sampled_sweep_journals_and_resumes_per_unit() {
        let spec = tiny_spec();
        let workloads = [Workload::from(Benchmark::Go)];
        let points = grid(&workloads, &[Depth::D20], &[PredictorConfig::ArviCurrent]);
        let traces = TraceSet::record(&workloads, spec, 1, None);
        let plan = SamplePlan::systematic(2, 500, 1_000);
        let dir = std::env::temp_dir().join(format!("arvi-sampled-resume-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = dir.join("sweep.journal");

        // First run: killed after 2 units.
        let res = Resilience::new()
            .with_journal(&journal)
            .with_plan(crate::resilience::FaultPlan::parse("kill-after 2").unwrap());
        let partial = run_sweep_sampled(&points, spec, &plan, 1, false, &traces, Some(&res));
        assert!(matches!(partial.outcomes[0], CellOutcome::Skipped));

        // Resumed run completes and matches an uninterrupted run.
        let res = Resilience::new().with_journal(&journal).resuming();
        let resumed = run_sweep_sampled(&points, spec, &plan, 2, false, &traces, Some(&res));
        let clean = run_sweep_sampled(&points, spec, &plan, 2, false, &traces, None);
        let (r, c) = (
            &resumed.outcomes[0].success().expect("completed").result,
            &clean.outcomes[0].success().unwrap().result,
        );
        assert_eq!(r.window.cycles, c.window.cycles);
        assert_eq!(r.window.committed, c.window.committed);
        assert_eq!(r.window.cond_branches, c.window.cond_branches);
        let (rr, cr) = (
            resumed.reports[0].as_ref().unwrap(),
            clean.reports[0].as_ref().unwrap(),
        );
        assert_eq!(rr.ipc.mean.to_bits(), cr.ipc.mean.to_bits());
        assert_eq!(rr.ipc.stderr.to_bits(), cr.ipc.stderr.to_bits());
        assert_eq!(rr.accuracy.mean.to_bits(), cr.accuracy.mean.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Multi-threaded experiment sweeps over shared recorded traces.
//!
//! The Figure-5/6 grids are embarrassingly parallel: every
//! `(benchmark, depth, configuration)` cell is an independent,
//! deterministic simulation. [`par_map`] fans a work list out over scoped
//! `std::thread` workers with a shared atomic cursor, and returns results
//! in *item order* regardless of which worker finished first — so a
//! parallel sweep is bit-identical to the sequential one, just faster.
//!
//! Since PR 2 the grids are also **record-once / replay-many**: each
//! distinct `(benchmark, seed, window)` workload is functionally
//! emulated exactly once into an `arvi_trace::Trace` (a [`TraceSet`]),
//! then every grid cell replays the shared recording through its own
//! timing machine. Replay is bit-identical to live emulation (asserted
//! by `tests/trace_replay.rs`), so this changes no results — it only
//! removes the redundant functional execution, and lets sweeps load
//! pre-recorded traces from disk (`--trace-dir`).

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use arvi_isa::Emulator;
use arvi_sim::{Depth, PredictorConfig, SimResult};
use arvi_trace::{StdIo, Trace, TraceIo, TraceReplayer};
use arvi_workloads::WorkloadSource;

use crate::events::SweepTelemetry;
use crate::harness::{run_one, run_one_traced, Spec};
use crate::report::Json;
use crate::resilience::Resilience;
use crate::workload::Workload;

/// Instructions recorded beyond `warmup + measure`: the machine fetches
/// ahead of commit by at most the ROB size (256) plus the commit-width
/// overshoot, so this slack guarantees a replayed cell never observes
/// end-of-trace where the live emulator would have kept producing.
pub const TRACE_SLACK: u64 = 4096;

/// The recording length that covers a simulation under `spec`.
pub fn trace_len(spec: Spec) -> u64 {
    spec.warmup + spec.measure + TRACE_SLACK
}

/// Records `workload` under `spec` into an in-memory trace (one
/// functional execution of `trace_len(spec)` instructions).
pub fn record_trace(workload: &Workload, spec: Spec) -> Trace {
    let emu = Emulator::new(workload.program(spec.seed));
    Trace::record(emu, trace_len(spec), workload.name(), spec.seed)
}

/// [`record_trace`] with failures contained: a source that ends early
/// returns [`arvi_trace::TraceError::SourceEnded`] and a panicking workload builder
/// is caught and reported as an error string — the resilient recording
/// path degrades the workload instead of taking the sweep down.
pub fn try_record_trace(workload: &Workload, spec: Spec) -> Result<Trace, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let emu = Emulator::new(workload.program(spec.seed));
        Trace::try_record(emu, trace_len(spec), workload.name(), spec.seed)
    }))
    .map_err(|payload| {
        format!(
            "recording {} panicked: {}",
            workload.name(),
            crate::resilience::panic_message(payload.as_ref())
        )
    })?
    .map_err(|e| e.to_string())
}

/// Canonical file name for a persisted trace: keyed by everything that
/// determines the recorded stream (workload, seed) plus the window it
/// must cover. Scenario workloads additionally carry the spec
/// fingerprint, so two scenarios sharing a name but differing in knobs
/// never collide in a trace cache (benchmark file names are unchanged
/// from PR 2, keeping existing caches valid).
pub fn trace_file_name(workload: &Workload, spec: Spec) -> String {
    let knobs = match workload.as_scenario() {
        Some(s) => format!("-f{:016x}", s.fingerprint()),
        None => String::new(),
    };
    format!(
        "{}{knobs}-s{}-w{}-m{}.arvitrace",
        workload.name(),
        spec.seed,
        spec.warmup,
        spec.measure
    )
}

/// How a [`TraceSet`] obtained (or failed to obtain) one workload's
/// recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceProvenance {
    /// Freshly recorded (no usable cached file existed).
    Recorded,
    /// Loaded from a healthy cached file.
    Loaded,
    /// A cached file existed but was unusable and the workload was
    /// re-recorded; `corrupt` says whether the old file failed
    /// verification (and was quarantined) as opposed to being merely
    /// stale (wrong window, silently overwritten).
    Rerecorded {
        /// The replaced file was corrupt (quarantined), not just stale.
        corrupt: bool,
    },
    /// No recording could be obtained (re-recording disabled after a
    /// quarantine, or recording itself failed); cells over this
    /// workload must degrade to live emulation.
    Unavailable {
        /// Why the workload has no recording.
        reason: String,
    },
}

/// One shared recording per distinct workload of a sweep.
///
/// Traces are wrapped in [`Arc`] and handed read-only to every grid
/// cell and worker thread; each cell constructs a private
/// [`TraceReplayer`] cursor over the shared bytes. Each entry also
/// carries a [`TraceProvenance`] so the resilient sweep can report
/// *how* a cell's stream was obtained (cache hit, quarantine +
/// re-record, unavailable).
#[derive(Debug, Clone)]
pub struct TraceSet {
    spec: Spec,
    traces: Vec<(Workload, Option<Arc<Trace>>, TraceProvenance)>,
    record_elapsed: Duration,
}

impl TraceSet {
    /// Records (in parallel, one worker per workload) every workload in
    /// `workloads` under `spec`.
    ///
    /// With `dir` set, recordings are persisted there under
    /// [`trace_file_name`] and valid existing files are loaded instead of
    /// re-recorded — so a second sweep over the same spec does no
    /// functional execution at all. A corrupt cached file is quarantined
    /// (renamed `*.quarantined`, logged to `quarantine.log` in `dir`)
    /// and the workload re-recorded; a stale file (wrong window) is
    /// silently re-recorded and overwritten. Writes are atomic
    /// (temp file + fsync + rename) and persistence failures only warn
    /// (the in-memory recording still serves the sweep).
    pub fn record(
        workloads: &[Workload],
        spec: Spec,
        threads: usize,
        dir: Option<&Path>,
    ) -> TraceSet {
        Self::record_resilient(workloads, spec, threads, dir, None)
    }

    /// [`TraceSet::record`] under an explicit [`Resilience`] policy:
    /// the policy's fault plan (if any) is injected into trace reads,
    /// and `rerecord: false` leaves a quarantined workload
    /// [`TraceProvenance::Unavailable`] instead of re-recording it.
    pub fn record_resilient(
        workloads: &[Workload],
        spec: Spec,
        threads: usize,
        dir: Option<&Path>,
        res: Option<&Resilience>,
    ) -> TraceSet {
        if let Some(dir) = dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create trace dir {}: {e}", dir.display());
            }
        }
        let plan = res.and_then(|r| r.plan.as_deref());
        let faulty = plan.map(crate::resilience::FaultyIo::new);
        let io: &dyn TraceIo = match &faulty {
            Some(faulty) => faulty,
            None => &StdIo,
        };
        let rerecord = res.is_none_or(|r| r.rerecord);
        let telemetry = res.and_then(|r| r.telemetry.as_deref());
        if let Some(t) = telemetry {
            t.event(
                "record_start",
                vec![("workloads".to_string(), Json::Num(workloads.len() as f64))],
            );
        }
        let start = Instant::now();
        let traces = par_map(workloads, threads, |workload| {
            Self::obtain(workload, spec, dir, io, rerecord, telemetry)
        });
        if let Some(t) = telemetry {
            t.record_phase(workloads.len(), start.elapsed());
        }
        TraceSet {
            spec,
            traces: workloads
                .iter()
                .cloned()
                .zip(traces)
                .map(|(w, (t, p))| (w, t.map(Arc::new), p))
                .collect(),
            record_elapsed: start.elapsed(),
        }
    }

    fn obtain(
        workload: &Workload,
        spec: Spec,
        dir: Option<&Path>,
        io: &dyn TraceIo,
        rerecord: bool,
        telemetry: Option<&SweepTelemetry>,
    ) -> (Option<Trace>, TraceProvenance) {
        let need = trace_len(spec);
        let path = dir.map(|d| d.join(trace_file_name(workload, spec)));
        let mut prior_corrupt = false;
        let mut prior_stale = false;
        if let Some(path) = &path {
            match Trace::read_from_with(path, io) {
                Ok(t)
                    if t.len() >= need && t.seed() == spec.seed && t.name() == workload.name() =>
                {
                    return (Some(t), TraceProvenance::Loaded);
                }
                Ok(_) => {
                    eprintln!(
                        "trace {}: stale (wrong workload or window), re-recording",
                        path.display()
                    );
                    prior_stale = true;
                }
                Err(e) if e.is_corruption() => {
                    // Preserve the evidence, then recover: the corrupt
                    // file moves aside so it cannot poison later runs.
                    prior_corrupt = true;
                    match io.quarantine(path) {
                        Ok(moved) => {
                            eprintln!(
                                "trace {}: {e}; quarantined to {}",
                                path.display(),
                                moved.display()
                            );
                            log_quarantine(dir, path, &e, rerecord);
                            if let Some(t) = telemetry {
                                t.quarantine(
                                    &path.display().to_string(),
                                    &e.to_string(),
                                    if rerecord { "re-record" } else { "degrade" },
                                );
                            }
                        }
                        Err(qe) => eprintln!(
                            "trace {}: {e}; quarantine failed ({qe}), re-recording in place",
                            path.display()
                        ),
                    }
                    if !rerecord {
                        return (
                            None,
                            TraceProvenance::Unavailable {
                                reason: format!(
                                    "quarantined corrupt trace, re-recording disabled: {e}"
                                ),
                            },
                        );
                    }
                }
                Err(e) if path.exists() => {
                    eprintln!("trace {}: {e}, re-recording", path.display());
                    prior_stale = true;
                }
                Err(_) => {}
            }
        }
        let t = match try_record_trace(workload, spec) {
            Ok(t) => t,
            Err(reason) => {
                eprintln!("warning: cannot record {}: {reason}", workload.name());
                return (None, TraceProvenance::Unavailable { reason });
            }
        };
        if let Some(path) = &path {
            if let Err(e) = t.write_to_with(path, io) {
                eprintln!("warning: cannot persist trace {}: {e}", path.display());
            }
        }
        let provenance = if prior_corrupt {
            TraceProvenance::Rerecorded { corrupt: true }
        } else if prior_stale {
            TraceProvenance::Rerecorded { corrupt: false }
        } else {
            TraceProvenance::Recorded
        };
        (Some(t), provenance)
    }

    /// The spec the recordings cover.
    pub fn spec(&self) -> Spec {
        self.spec
    }

    /// Wall-clock time the record phase took (functional emulation
    /// and/or disk loads, across all workloads). Feeds the
    /// record-vs-replay phase breakdown in
    /// [`crate::resilience::timing_summary`].
    pub fn record_elapsed(&self) -> Duration {
        self.record_elapsed
    }

    /// The shared recording for `workload`, if one was obtained.
    pub fn get(&self, workload: &Workload) -> Option<&Arc<Trace>> {
        self.traces
            .iter()
            .find(|(w, _, _)| w == workload)
            .and_then(|(_, t, _)| t.as_ref())
    }

    /// How `workload`'s recording was obtained (or why it is missing);
    /// `None` for a workload this set never covered.
    pub fn provenance(&self, workload: &Workload) -> Option<&TraceProvenance> {
        self.traces
            .iter()
            .find(|(w, _, _)| w == workload)
            .map(|(_, _, p)| p)
    }

    /// A fresh replay cursor over `workload`'s shared recording.
    pub fn replayer(&self, workload: &Workload) -> Option<TraceReplayer> {
        self.get(workload)
            .map(|t| TraceReplayer::new(Arc::clone(t)))
    }
}

/// Appends one line to `quarantine.log` in the trace directory
/// describing a quarantined file and what the sweep did next. Best
/// effort: logging failures only warn.
fn log_quarantine(dir: Option<&Path>, path: &Path, err: &arvi_trace::TraceError, rerecord: bool) {
    let Some(dir) = dir else { return };
    let log = dir.join("quarantine.log");
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let action = if rerecord {
        "re-recording"
    } else {
        "re-recording disabled; affected cells degrade to live emulation"
    };
    let line = format!("{name}: {err}; {action}\n");
    let res = std::fs::create_dir_all(dir)
        .map_err(|e| crate::report::io_error_at(dir, e))
        .and_then(|()| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&log)
                .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()))
                .map_err(|e| crate::report::io_error_at(&log, e))
        });
    if let Err(e) = res {
        eprintln!("warning: cannot append to quarantine log: {e}");
    }
}

/// The distinct workloads of a work list, in first-appearance order.
pub fn distinct_workloads(points: &[SweepPoint]) -> Vec<Workload> {
    let mut workloads = Vec::new();
    for p in points {
        if !workloads.contains(&p.workload) {
            workloads.push(p.workload.clone());
        }
    }
    workloads
}

/// Worker count to use when the caller does not care: the host's
/// available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `threads` scoped workers and
/// returns the results in item order (deterministic regardless of
/// scheduling). `threads <= 1` degenerates to a plain sequential map.
///
/// # Panics
///
/// If `f` panics for any item, the *original* panic payload is
/// propagated (after all items have been attempted) — not a secondary
/// "slot poisoned" panic that would mask what actually went wrong.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    let mut first_panic = None;
    for result in par_map_caught(items, threads, &f) {
        match result {
            Ok(v) => out.push(v),
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    out
}

/// [`par_map`] with each item's `f` call run under `catch_unwind`:
/// `results[i]` is `Err(payload)` when `f(items[i])` panicked. The
/// isolation primitive under both [`par_map`] and the resilient sweep —
/// one panicking item never prevents the others from completing.
pub fn par_map_caught<T, U, F>(
    items: &[T],
    threads: usize,
    f: &F,
) -> Vec<Result<U, Box<dyn std::any::Any + Send>>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let run = |item: &T| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(run).collect();
    }
    let cursor = AtomicUsize::new(0);
    type Slot<U> = Mutex<Option<Result<U, Box<dyn std::any::Any + Send>>>>;
    let slots: Vec<Slot<U>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = run(item);
                // `run` cannot unwind (catch_unwind), so the lock is
                // never poisoned.
                *slots[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot")
                .expect("worker filled every slot")
        })
        .collect()
}

/// One cell of an experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Workload (suite benchmark or synthetic scenario).
    pub workload: Workload,
    /// Pipeline depth.
    pub depth: Depth,
    /// Predictor configuration.
    pub config: PredictorConfig,
}

impl std::fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @{} / {}", self.workload, self.depth, self.config)
    }
}

/// Every workload x depth x configuration cell over the given axes.
pub fn grid(
    workloads: &[Workload],
    depths: &[Depth],
    configs: &[PredictorConfig],
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for workload in workloads {
        for &depth in depths {
            for &config in configs {
                points.push(SweepPoint {
                    workload: workload.clone(),
                    depth,
                    config,
                });
            }
        }
    }
    points
}

/// The full paper grid: every benchmark x depth x configuration.
pub fn full_grid() -> Vec<SweepPoint> {
    grid(&Workload::suite(), &Depth::all(), &PredictorConfig::all())
}

/// Runs every point on `threads` workers; `results[i]` corresponds to
/// `points[i]`.
///
/// Record-once / replay-many: each distinct workload is emulated once
/// into an in-memory [`TraceSet`], then all its cells replay the shared
/// recording. Use [`run_sweep_with`] to reuse recordings across several
/// grids (or load them from disk), and [`run_sweep_emulated`] for the
/// pre-trace per-cell path.
pub fn run_sweep(
    points: &[SweepPoint],
    spec: Spec,
    threads: usize,
    progress: bool,
) -> Vec<SimResult> {
    let traces = TraceSet::record(&distinct_workloads(points), spec, threads, None);
    run_sweep_with(points, spec, threads, progress, &traces)
}

/// [`run_sweep`] over pre-recorded traces. A point whose workload is
/// missing from `traces` falls back to live emulation for that cell.
pub fn run_sweep_with(
    points: &[SweepPoint],
    spec: Spec,
    threads: usize,
    progress: bool,
    traces: &TraceSet,
) -> Vec<SimResult> {
    par_map(points, threads, |p| {
        if progress {
            eprintln!("sweep: {p}");
        }
        match traces.get(&p.workload) {
            Some(trace) => run_one_traced(trace, p.depth, p.config, spec),
            None => run_one(&p.workload, p.depth, p.config, spec),
        }
    })
}

/// The pre-PR2 sweep: every cell re-runs the functional emulation
/// itself. Kept as the baseline `perf_report` measures trace sharing
/// against, and as the reference side of the bit-identity tests.
pub fn run_sweep_emulated(
    points: &[SweepPoint],
    spec: Spec,
    threads: usize,
    progress: bool,
) -> Vec<SimResult> {
    par_map(points, threads, |p| {
        if progress {
            eprintln!("sweep: {p}");
        }
        run_one(&p.workload, p.depth, p.config, spec)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_workloads::Benchmark;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let got = par_map(&items, 8, |&x| x * 3);
        assert_eq!(got, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_sequential_degeneration() {
        let items = vec![1u32, 2, 3];
        assert_eq!(par_map(&items, 0, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(par_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn par_map_handles_empty_and_oversubscribed() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        let one = vec![7u8];
        assert_eq!(par_map(&one, 16, |&x| x), vec![7]);
    }

    #[test]
    fn par_map_propagates_the_original_panic_payload() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(&items, 4, |&x| {
                if x == 5 {
                    panic!("item {x} exploded");
                }
                x
            })
        })
        .expect_err("must propagate the panic");
        let message = crate::resilience::panic_message(caught.as_ref());
        assert_eq!(message, "item 5 exploded");
    }

    #[test]
    fn par_map_caught_isolates_failures_per_item() {
        let items: Vec<u32> = (0..8).collect();
        let results = par_map_caught(&items, 3, &|&x: &u32| {
            if x % 3 == 0 {
                panic!("bad {x}");
            }
            x * 2
        });
        for (i, r) in results.iter().enumerate() {
            if i % 3 == 0 {
                assert!(r.is_err(), "item {i}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32 * 2);
            }
        }
    }

    #[test]
    fn corrupt_cached_trace_is_quarantined_and_rerecorded() {
        let spec = Spec {
            warmup: 500,
            measure: 1_000,
            seed: 5,
        };
        let dir = std::env::temp_dir().join(format!("arvi-quarantine-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let workloads = [Workload::from(Benchmark::Go)];
        let clean = TraceSet::record(&workloads, spec, 1, Some(&dir));
        assert_eq!(
            clean.provenance(&workloads[0]),
            Some(&TraceProvenance::Recorded)
        );
        let path = dir.join(trace_file_name(&workloads[0], spec));
        // Corrupt a payload byte on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let recovered = TraceSet::record(&workloads, spec, 1, Some(&dir));
        assert_eq!(
            recovered.provenance(&workloads[0]),
            Some(&TraceProvenance::Rerecorded { corrupt: true })
        );
        // Evidence preserved, replacement healthy, incident logged.
        assert!(arvi_trace::quarantine_path(&path).exists());
        assert!(path.exists());
        let log = std::fs::read_to_string(dir.join("quarantine.log")).unwrap();
        assert!(log.contains("go-"), "{log}");
        // The re-recorded trace replays identically to the original.
        let a: Vec<_> = clean.replayer(&workloads[0]).unwrap().collect();
        let b: Vec<_> = recovered.replayer(&workloads[0]).unwrap().collect();
        assert_eq!(a, b);
        // Third run loads the healthy replacement from cache.
        let reloaded = TraceSet::record(&workloads, spec, 1, Some(&dir));
        assert_eq!(
            reloaded.provenance(&workloads[0]),
            Some(&TraceProvenance::Loaded)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_grid_covers_every_cell() {
        let grid = full_grid();
        assert_eq!(
            grid.len(),
            Benchmark::all().len() * Depth::all().len() * PredictorConfig::all().len()
        );
    }

    fn small_points() -> [SweepPoint; 3] {
        [
            SweepPoint {
                workload: Benchmark::Compress.into(),
                depth: Depth::D20,
                config: PredictorConfig::TwoLevelGskew,
            },
            SweepPoint {
                workload: Benchmark::Li.into(),
                depth: Depth::D20,
                config: PredictorConfig::ArviCurrent,
            },
            SweepPoint {
                workload: Benchmark::Compress.into(),
                depth: Depth::D40,
                config: PredictorConfig::ArviCurrent,
            },
        ]
    }

    fn assert_same_results(a: &[SimResult], b: &[SimResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.window.committed, y.window.committed);
            assert_eq!(x.window.cycles, y.window.cycles);
            assert_eq!(
                x.window.cond_branches.correct(),
                y.window.cond_branches.correct()
            );
            assert_eq!(x.window.full_mispredicts, y.window.full_mispredicts);
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let spec = Spec {
            warmup: 2_000,
            measure: 6_000,
            seed: 42,
        };
        let points = small_points();
        let seq = run_sweep(&points, spec, 1, false);
        let par = run_sweep(&points, spec, 3, false);
        assert_same_results(&seq, &par);
    }

    #[test]
    fn traced_sweep_is_bit_identical_to_emulated() {
        let spec = Spec {
            warmup: 2_000,
            measure: 6_000,
            seed: 7,
        };
        let points = small_points();
        let live = run_sweep_emulated(&points, spec, 2, false);
        let traced = run_sweep(&points, spec, 2, false);
        assert_same_results(&live, &traced);
    }

    #[test]
    fn distinct_workloads_preserves_first_appearance_order() {
        let mut points = small_points().to_vec();
        points.push(SweepPoint {
            workload: Workload::scenario("dw branch=datadep:8".parse().unwrap()),
            depth: Depth::D20,
            config: PredictorConfig::ArviCurrent,
        });
        let distinct = distinct_workloads(&points);
        assert_eq!(distinct.len(), 3);
        assert_eq!(distinct[0], Benchmark::Compress.into());
        assert_eq!(distinct[1], Benchmark::Li.into());
        assert_eq!(distinct[2].name(), "dw");
    }

    #[test]
    #[should_panic(expected = "recorded under a smaller spec")]
    fn short_trace_rejected_instead_of_truncating_the_window() {
        let small = Spec {
            warmup: 500,
            measure: 1_000,
            seed: 3,
        };
        let big = Spec {
            warmup: 500,
            measure: 50_000,
            seed: 3,
        };
        let traces = TraceSet::record(&[Benchmark::Li.into()], small, 1, None);
        let trace = traces.get(&Benchmark::Li.into()).unwrap();
        let _ =
            crate::harness::run_one_traced(trace, Depth::D20, PredictorConfig::ArviCurrent, big);
    }

    #[test]
    fn trace_set_records_persists_and_reloads() {
        let spec = Spec {
            warmup: 500,
            measure: 1_000,
            seed: 3,
        };
        let dir = std::env::temp_dir().join(format!("arvi-sweep-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let workloads = [Workload::from(Benchmark::M88ksim)];
        let recorded = TraceSet::record(&workloads, spec, 1, Some(&dir));
        let path = dir.join(trace_file_name(&workloads[0], spec));
        assert!(path.exists());
        // Second record() round-trips through the persisted file.
        let reloaded = TraceSet::record(&workloads, spec, 1, Some(&dir));
        let a = recorded.get(&workloads[0]).unwrap();
        let b = reloaded.get(&workloads[0]).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), trace_len(spec));
        let insts_a: Vec<_> = recorded.replayer(&workloads[0]).unwrap().collect();
        let insts_b: Vec<_> = reloaded.replayer(&workloads[0]).unwrap().collect();
        assert_eq!(insts_a, insts_b);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Multi-threaded experiment sweeps over shared recorded traces.
//!
//! The Figure-5/6 grids are embarrassingly parallel: every
//! `(benchmark, depth, configuration)` cell is an independent,
//! deterministic simulation. [`par_map`] fans a work list out over scoped
//! `std::thread` workers with a shared atomic cursor, and returns results
//! in *item order* regardless of which worker finished first — so a
//! parallel sweep is bit-identical to the sequential one, just faster.
//!
//! Since PR 2 the grids are also **record-once / replay-many**: each
//! distinct `(benchmark, seed, window)` workload is functionally
//! emulated exactly once into an `arvi_trace::Trace` (a [`TraceSet`]),
//! then every grid cell replays the shared recording through its own
//! timing machine. Replay is bit-identical to live emulation (asserted
//! by `tests/trace_replay.rs`), so this changes no results — it only
//! removes the redundant functional execution, and lets sweeps load
//! pre-recorded traces from disk (`--trace-dir`).

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use arvi_isa::Emulator;
use arvi_sim::{Depth, PredictorConfig, SimResult};
use arvi_trace::{Trace, TraceReplayer};
use arvi_workloads::WorkloadSource;

use crate::harness::{run_one, run_one_traced, Spec};
use crate::workload::Workload;

/// Instructions recorded beyond `warmup + measure`: the machine fetches
/// ahead of commit by at most the ROB size (256) plus the commit-width
/// overshoot, so this slack guarantees a replayed cell never observes
/// end-of-trace where the live emulator would have kept producing.
pub const TRACE_SLACK: u64 = 4096;

/// The recording length that covers a simulation under `spec`.
pub fn trace_len(spec: Spec) -> u64 {
    spec.warmup + spec.measure + TRACE_SLACK
}

/// Records `workload` under `spec` into an in-memory trace (one
/// functional execution of `trace_len(spec)` instructions).
pub fn record_trace(workload: &Workload, spec: Spec) -> Trace {
    let emu = Emulator::new(workload.program(spec.seed));
    Trace::record(emu, trace_len(spec), workload.name(), spec.seed)
}

/// Canonical file name for a persisted trace: keyed by everything that
/// determines the recorded stream (workload, seed) plus the window it
/// must cover. Scenario workloads additionally carry the spec
/// fingerprint, so two scenarios sharing a name but differing in knobs
/// never collide in a trace cache (benchmark file names are unchanged
/// from PR 2, keeping existing caches valid).
pub fn trace_file_name(workload: &Workload, spec: Spec) -> String {
    let knobs = match workload.as_scenario() {
        Some(s) => format!("-f{:016x}", s.fingerprint()),
        None => String::new(),
    };
    format!(
        "{}{knobs}-s{}-w{}-m{}.arvitrace",
        workload.name(),
        spec.seed,
        spec.warmup,
        spec.measure
    )
}

/// One shared recording per distinct workload of a sweep.
///
/// Traces are wrapped in [`Arc`] and handed read-only to every grid
/// cell and worker thread; each cell constructs a private
/// [`TraceReplayer`] cursor over the shared bytes.
#[derive(Debug, Clone)]
pub struct TraceSet {
    spec: Spec,
    traces: Vec<(Workload, Arc<Trace>)>,
}

impl TraceSet {
    /// Records (in parallel, one worker per workload) every workload in
    /// `workloads` under `spec`.
    ///
    /// With `dir` set, recordings are persisted there under
    /// [`trace_file_name`] and valid existing files are loaded instead of
    /// re-recorded — so a second sweep over the same spec does no
    /// functional execution at all. A file that is missing, corrupt
    /// (checksum/format verification failure), or too short for the
    /// window is re-recorded and rewritten; persistence failures only
    /// warn (the in-memory recording still serves the sweep).
    pub fn record(
        workloads: &[Workload],
        spec: Spec,
        threads: usize,
        dir: Option<&Path>,
    ) -> TraceSet {
        if let Some(dir) = dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create trace dir {}: {e}", dir.display());
            }
        }
        let traces = par_map(workloads, threads, |workload| {
            Arc::new(Self::obtain(workload, spec, dir))
        });
        TraceSet {
            spec,
            traces: workloads.iter().cloned().zip(traces).collect(),
        }
    }

    fn obtain(workload: &Workload, spec: Spec, dir: Option<&Path>) -> Trace {
        let need = trace_len(spec);
        let path = dir.map(|d| d.join(trace_file_name(workload, spec)));
        if let Some(path) = &path {
            match Trace::read_from(path) {
                Ok(t)
                    if t.len() >= need && t.seed() == spec.seed && t.name() == workload.name() =>
                {
                    return t;
                }
                Ok(_) => eprintln!(
                    "trace {}: stale (wrong workload or window), re-recording",
                    path.display()
                ),
                Err(e) if path.exists() => {
                    eprintln!("trace {}: {e}, re-recording", path.display())
                }
                Err(_) => {}
            }
        }
        let t = record_trace(workload, spec);
        if let Some(path) = &path {
            if let Err(e) = t.write_to(path) {
                eprintln!("warning: cannot persist trace {}: {e}", path.display());
            }
        }
        t
    }

    /// The spec the recordings cover.
    pub fn spec(&self) -> Spec {
        self.spec
    }

    /// The shared recording for `workload`, if it was recorded.
    pub fn get(&self, workload: &Workload) -> Option<&Arc<Trace>> {
        self.traces
            .iter()
            .find(|(w, _)| w == workload)
            .map(|(_, t)| t)
    }

    /// A fresh replay cursor over `workload`'s shared recording.
    pub fn replayer(&self, workload: &Workload) -> Option<TraceReplayer> {
        self.get(workload)
            .map(|t| TraceReplayer::new(Arc::clone(t)))
    }
}

/// The distinct workloads of a work list, in first-appearance order.
pub fn distinct_workloads(points: &[SweepPoint]) -> Vec<Workload> {
    let mut workloads = Vec::new();
    for p in points {
        if !workloads.contains(&p.workload) {
            workloads.push(p.workload.clone());
        }
    }
    workloads
}

/// Worker count to use when the caller does not care: the host's
/// available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `threads` scoped workers and
/// returns the results in item order (deterministic regardless of
/// scheduling). `threads <= 1` degenerates to a plain sequential map.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// One cell of an experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Workload (suite benchmark or synthetic scenario).
    pub workload: Workload,
    /// Pipeline depth.
    pub depth: Depth,
    /// Predictor configuration.
    pub config: PredictorConfig,
}

impl std::fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @{} / {}", self.workload, self.depth, self.config)
    }
}

/// Every workload x depth x configuration cell over the given axes.
pub fn grid(
    workloads: &[Workload],
    depths: &[Depth],
    configs: &[PredictorConfig],
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for workload in workloads {
        for &depth in depths {
            for &config in configs {
                points.push(SweepPoint {
                    workload: workload.clone(),
                    depth,
                    config,
                });
            }
        }
    }
    points
}

/// The full paper grid: every benchmark x depth x configuration.
pub fn full_grid() -> Vec<SweepPoint> {
    grid(&Workload::suite(), &Depth::all(), &PredictorConfig::all())
}

/// Runs every point on `threads` workers; `results[i]` corresponds to
/// `points[i]`.
///
/// Record-once / replay-many: each distinct workload is emulated once
/// into an in-memory [`TraceSet`], then all its cells replay the shared
/// recording. Use [`run_sweep_with`] to reuse recordings across several
/// grids (or load them from disk), and [`run_sweep_emulated`] for the
/// pre-trace per-cell path.
pub fn run_sweep(
    points: &[SweepPoint],
    spec: Spec,
    threads: usize,
    progress: bool,
) -> Vec<SimResult> {
    let traces = TraceSet::record(&distinct_workloads(points), spec, threads, None);
    run_sweep_with(points, spec, threads, progress, &traces)
}

/// [`run_sweep`] over pre-recorded traces. A point whose workload is
/// missing from `traces` falls back to live emulation for that cell.
pub fn run_sweep_with(
    points: &[SweepPoint],
    spec: Spec,
    threads: usize,
    progress: bool,
    traces: &TraceSet,
) -> Vec<SimResult> {
    par_map(points, threads, |p| {
        if progress {
            eprintln!("sweep: {p}");
        }
        match traces.get(&p.workload) {
            Some(trace) => run_one_traced(trace, p.depth, p.config, spec),
            None => run_one(&p.workload, p.depth, p.config, spec),
        }
    })
}

/// The pre-PR2 sweep: every cell re-runs the functional emulation
/// itself. Kept as the baseline `perf_report` measures trace sharing
/// against, and as the reference side of the bit-identity tests.
pub fn run_sweep_emulated(
    points: &[SweepPoint],
    spec: Spec,
    threads: usize,
    progress: bool,
) -> Vec<SimResult> {
    par_map(points, threads, |p| {
        if progress {
            eprintln!("sweep: {p}");
        }
        run_one(&p.workload, p.depth, p.config, spec)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_workloads::Benchmark;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let got = par_map(&items, 8, |&x| x * 3);
        assert_eq!(got, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_sequential_degeneration() {
        let items = vec![1u32, 2, 3];
        assert_eq!(par_map(&items, 0, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(par_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn par_map_handles_empty_and_oversubscribed() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        let one = vec![7u8];
        assert_eq!(par_map(&one, 16, |&x| x), vec![7]);
    }

    #[test]
    fn full_grid_covers_every_cell() {
        let grid = full_grid();
        assert_eq!(
            grid.len(),
            Benchmark::all().len() * Depth::all().len() * PredictorConfig::all().len()
        );
    }

    fn small_points() -> [SweepPoint; 3] {
        [
            SweepPoint {
                workload: Benchmark::Compress.into(),
                depth: Depth::D20,
                config: PredictorConfig::TwoLevelGskew,
            },
            SweepPoint {
                workload: Benchmark::Li.into(),
                depth: Depth::D20,
                config: PredictorConfig::ArviCurrent,
            },
            SweepPoint {
                workload: Benchmark::Compress.into(),
                depth: Depth::D40,
                config: PredictorConfig::ArviCurrent,
            },
        ]
    }

    fn assert_same_results(a: &[SimResult], b: &[SimResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.window.committed, y.window.committed);
            assert_eq!(x.window.cycles, y.window.cycles);
            assert_eq!(
                x.window.cond_branches.correct(),
                y.window.cond_branches.correct()
            );
            assert_eq!(x.window.full_mispredicts, y.window.full_mispredicts);
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let spec = Spec {
            warmup: 2_000,
            measure: 6_000,
            seed: 42,
        };
        let points = small_points();
        let seq = run_sweep(&points, spec, 1, false);
        let par = run_sweep(&points, spec, 3, false);
        assert_same_results(&seq, &par);
    }

    #[test]
    fn traced_sweep_is_bit_identical_to_emulated() {
        let spec = Spec {
            warmup: 2_000,
            measure: 6_000,
            seed: 7,
        };
        let points = small_points();
        let live = run_sweep_emulated(&points, spec, 2, false);
        let traced = run_sweep(&points, spec, 2, false);
        assert_same_results(&live, &traced);
    }

    #[test]
    fn distinct_workloads_preserves_first_appearance_order() {
        let mut points = small_points().to_vec();
        points.push(SweepPoint {
            workload: Workload::scenario("dw branch=datadep:8".parse().unwrap()),
            depth: Depth::D20,
            config: PredictorConfig::ArviCurrent,
        });
        let distinct = distinct_workloads(&points);
        assert_eq!(distinct.len(), 3);
        assert_eq!(distinct[0], Benchmark::Compress.into());
        assert_eq!(distinct[1], Benchmark::Li.into());
        assert_eq!(distinct[2].name(), "dw");
    }

    #[test]
    #[should_panic(expected = "recorded under a smaller spec")]
    fn short_trace_rejected_instead_of_truncating_the_window() {
        let small = Spec {
            warmup: 500,
            measure: 1_000,
            seed: 3,
        };
        let big = Spec {
            warmup: 500,
            measure: 50_000,
            seed: 3,
        };
        let traces = TraceSet::record(&[Benchmark::Li.into()], small, 1, None);
        let trace = traces.get(&Benchmark::Li.into()).unwrap();
        let _ =
            crate::harness::run_one_traced(trace, Depth::D20, PredictorConfig::ArviCurrent, big);
    }

    #[test]
    fn trace_set_records_persists_and_reloads() {
        let spec = Spec {
            warmup: 500,
            measure: 1_000,
            seed: 3,
        };
        let dir = std::env::temp_dir().join(format!("arvi-sweep-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let workloads = [Workload::from(Benchmark::M88ksim)];
        let recorded = TraceSet::record(&workloads, spec, 1, Some(&dir));
        let path = dir.join(trace_file_name(&workloads[0], spec));
        assert!(path.exists());
        // Second record() round-trips through the persisted file.
        let reloaded = TraceSet::record(&workloads, spec, 1, Some(&dir));
        let a = recorded.get(&workloads[0]).unwrap();
        let b = reloaded.get(&workloads[0]).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), trace_len(spec));
        let insts_a: Vec<_> = recorded.replayer(&workloads[0]).unwrap().collect();
        let insts_b: Vec<_> = reloaded.replayer(&workloads[0]).unwrap().collect();
        assert_eq!(insts_a, insts_b);
        std::fs::remove_dir_all(&dir).ok();
    }
}

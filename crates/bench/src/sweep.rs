//! Multi-threaded experiment sweeps.
//!
//! The Figure-5/6 grids are embarrassingly parallel: every
//! `(benchmark, depth, configuration)` cell is an independent,
//! deterministic simulation. [`par_map`] fans a work list out over scoped
//! `std::thread` workers with a shared atomic cursor, and returns results
//! in *item order* regardless of which worker finished first — so a
//! parallel sweep is bit-identical to the sequential one, just faster.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use arvi_sim::{Depth, PredictorConfig, SimResult};
use arvi_workloads::Benchmark;

use crate::harness::{run_one, Spec};

/// Worker count to use when the caller does not care: the host's
/// available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `threads` scoped workers and
/// returns the results in item order (deterministic regardless of
/// scheduling). `threads <= 1` degenerates to a plain sequential map.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// One cell of an experiment grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Workload.
    pub bench: Benchmark,
    /// Pipeline depth.
    pub depth: Depth,
    /// Predictor configuration.
    pub config: PredictorConfig,
}

impl std::fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @{} / {}", self.bench, self.depth, self.config)
    }
}

/// The full paper grid: every benchmark x depth x configuration.
pub fn full_grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for bench in Benchmark::all() {
        for depth in Depth::all() {
            for config in PredictorConfig::all() {
                points.push(SweepPoint {
                    bench,
                    depth,
                    config,
                });
            }
        }
    }
    points
}

/// Runs every point on `threads` workers; `results[i]` corresponds to
/// `points[i]`.
pub fn run_sweep(
    points: &[SweepPoint],
    spec: Spec,
    threads: usize,
    progress: bool,
) -> Vec<SimResult> {
    par_map(points, threads, |p| {
        if progress {
            eprintln!("sweep: {p}");
        }
        run_one(p.bench, p.depth, p.config, spec)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let got = par_map(&items, 8, |&x| x * 3);
        assert_eq!(got, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_sequential_degeneration() {
        let items = vec![1u32, 2, 3];
        assert_eq!(par_map(&items, 0, |&x| x + 1), vec![2, 3, 4]);
        assert_eq!(par_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn par_map_handles_empty_and_oversubscribed() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        let one = vec![7u8];
        assert_eq!(par_map(&one, 16, |&x| x), vec![7]);
    }

    #[test]
    fn full_grid_covers_every_cell() {
        let grid = full_grid();
        assert_eq!(
            grid.len(),
            Benchmark::all().len() * Depth::all().len() * PredictorConfig::all().len()
        );
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let spec = Spec {
            warmup: 2_000,
            measure: 6_000,
            seed: 42,
        };
        let points = [
            SweepPoint {
                bench: Benchmark::Compress,
                depth: Depth::D20,
                config: PredictorConfig::TwoLevelGskew,
            },
            SweepPoint {
                bench: Benchmark::Li,
                depth: Depth::D20,
                config: PredictorConfig::ArviCurrent,
            },
            SweepPoint {
                bench: Benchmark::Compress,
                depth: Depth::D40,
                config: PredictorConfig::ArviCurrent,
            },
        ];
        let seq = run_sweep(&points, spec, 1, false);
        let par = run_sweep(&points, spec, 3, false);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.window.cycles, p.window.cycles);
            assert_eq!(
                s.window.cond_branches.correct(),
                p.window.cond_branches.correct()
            );
        }
    }
}

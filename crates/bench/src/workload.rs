//! The sweepable workload registry: suite benchmarks and synthetic
//! scenarios behind one type.
//!
//! Every experiment surface in this crate — [`crate::sweep`] grids, the
//! Figure-5/6 harnesses, trace recording/persistence — takes a
//! [`Workload`], so a synthetic scenario from `arvi-synth` runs anywhere
//! one of the eight SPEC95-style benchmarks runs: same record-once /
//! replay-many sharing, same `--trace-dir` persistence, same
//! deterministic parallel sweeps.

use std::fmt;
use std::sync::Arc;

use arvi_isa::Program;
use arvi_synth::ScenarioSpec;
use arvi_workloads::{Benchmark, WorkloadSource};

/// A workload an experiment grid can sweep: one of the suite benchmarks
/// or a synthetic scenario.
///
/// Scenario specs ride in an [`Arc`], so cloning a `Workload` per grid
/// cell stays cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// One of the eight SPEC95-style suite benchmarks.
    Bench(Benchmark),
    /// A synthetic scenario (`arvi-synth`).
    Scenario(Arc<ScenarioSpec>),
}

impl Workload {
    /// The full benchmark suite as workloads, in paper order.
    pub fn suite() -> Vec<Workload> {
        Benchmark::all()
            .iter()
            .copied()
            .map(Workload::Bench)
            .collect()
    }

    /// The curated synthetic-scenario set as workloads.
    pub fn curated_scenarios() -> Vec<Workload> {
        arvi_synth::curated()
            .into_iter()
            .map(Workload::scenario)
            .collect()
    }

    /// Wraps a scenario spec.
    pub fn scenario(spec: ScenarioSpec) -> Workload {
        Workload::Scenario(Arc::new(spec))
    }

    /// The workload's name (used in results, tables and trace files).
    pub fn name(&self) -> &str {
        match self {
            Workload::Bench(b) => b.name(),
            Workload::Scenario(s) => &s.name,
        }
    }

    /// The synthetic scenario behind this workload, if it is one.
    pub fn as_scenario(&self) -> Option<&ScenarioSpec> {
        match self {
            Workload::Bench(_) => None,
            Workload::Scenario(s) => Some(s),
        }
    }
}

impl WorkloadSource for Workload {
    fn name(&self) -> &str {
        Workload::name(self)
    }

    fn program(&self, seed: u64) -> Program {
        match self {
            Workload::Bench(b) => b.program(seed),
            Workload::Scenario(s) => arvi_synth::build_program(s, seed),
        }
    }
}

impl From<Benchmark> for Workload {
    fn from(b: Benchmark) -> Workload {
        Workload::Bench(b)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    #[test]
    fn suite_and_scenarios_register_side_by_side() {
        let suite = Workload::suite();
        assert_eq!(suite.len(), Benchmark::all().len());
        let scenarios = Workload::curated_scenarios();
        assert!(!scenarios.is_empty());
        for w in suite.iter().chain(&scenarios) {
            let program = w.program(42);
            assert_eq!(program.name(), w.name());
            let n = Emulator::new(program).take(2_000).count();
            assert_eq!(n, 2_000, "{w} halted early");
        }
    }

    #[test]
    fn scenario_accessor_distinguishes_kinds() {
        let b = Workload::from(Benchmark::M88ksim);
        assert!(b.as_scenario().is_none());
        let s = Workload::scenario("x branch=datadep:8".parse().unwrap());
        assert_eq!(s.as_scenario().unwrap().name, "x");
        assert_eq!(s.name(), "x");
    }
}

//! The sweepable workload registry: suite benchmarks and synthetic
//! scenarios behind one type.
//!
//! Every experiment surface in this crate — [`crate::sweep`] grids, the
//! Figure-5/6 harnesses, trace recording/persistence — takes a
//! [`Workload`], so a synthetic scenario from `arvi-synth` runs anywhere
//! one of the eight SPEC95-style benchmarks runs: same record-once /
//! replay-many sharing, same `--trace-dir` persistence, same
//! deterministic parallel sweeps.

use std::fmt;
use std::sync::Arc;

use arvi_isa::Program;
use arvi_synth::ScenarioSpec;
use arvi_workloads::{Benchmark, WorkloadSource};

/// A workload an experiment grid can sweep: one of the suite benchmarks
/// or a synthetic scenario.
///
/// Scenario specs ride in an [`Arc`], so cloning a `Workload` per grid
/// cell stays cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// One of the eight SPEC95-style suite benchmarks.
    Bench(Benchmark),
    /// A synthetic scenario (`arvi-synth`).
    Scenario(Arc<ScenarioSpec>),
}

impl Workload {
    /// The full benchmark suite as workloads, in paper order.
    pub fn suite() -> Vec<Workload> {
        Benchmark::all()
            .iter()
            .copied()
            .map(Workload::Bench)
            .collect()
    }

    /// The curated synthetic-scenario set as workloads.
    pub fn curated_scenarios() -> Vec<Workload> {
        arvi_synth::curated()
            .into_iter()
            .map(Workload::scenario)
            .collect()
    }

    /// Wraps a scenario spec.
    pub fn scenario(spec: ScenarioSpec) -> Workload {
        Workload::Scenario(Arc::new(spec))
    }

    /// The workload's name (used in results, tables and trace files).
    pub fn name(&self) -> &str {
        match self {
            Workload::Bench(b) => b.name(),
            Workload::Scenario(s) => &s.name,
        }
    }

    /// The synthetic scenario behind this workload, if it is one.
    pub fn as_scenario(&self) -> Option<&ScenarioSpec> {
        match self {
            Workload::Bench(_) => None,
            Workload::Scenario(s) => Some(s),
        }
    }

    /// A stable identity hash over everything that determines the
    /// workload's instruction stream (name, and for scenarios the full
    /// knob fingerprint) — the workload component of a sweep-journal
    /// cell fingerprint, so two scenarios sharing a name but differing
    /// in knobs never satisfy each other's journal entries.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.name().as_bytes());
        if let Some(s) = self.as_scenario() {
            h = fnv1a(h, &s.fingerprint().to_le_bytes());
        }
        h
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over `bytes`, continuing from `state` (chainable).
pub(crate) fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl WorkloadSource for Workload {
    fn name(&self) -> &str {
        Workload::name(self)
    }

    fn program(&self, seed: u64) -> Program {
        match self {
            Workload::Bench(b) => b.program(seed),
            Workload::Scenario(s) => arvi_synth::build_program(s, seed),
        }
    }
}

impl From<Benchmark> for Workload {
    fn from(b: Benchmark) -> Workload {
        Workload::Bench(b)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    #[test]
    fn suite_and_scenarios_register_side_by_side() {
        let suite = Workload::suite();
        assert_eq!(suite.len(), Benchmark::all().len());
        let scenarios = Workload::curated_scenarios();
        assert!(!scenarios.is_empty());
        for w in suite.iter().chain(&scenarios) {
            let program = w.program(42);
            assert_eq!(program.name(), w.name());
            let n = Emulator::new(program).take(2_000).count();
            assert_eq!(n, 2_000, "{w} halted early");
        }
    }

    #[test]
    fn fingerprints_separate_same_named_scenarios() {
        let a = Workload::scenario("x branch=datadep:8".parse().unwrap());
        let b = Workload::scenario("x branch=datadep:16".parse().unwrap());
        assert_eq!(a.name(), b.name());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Stable across clones / re-parses.
        let a2 = Workload::scenario("x branch=datadep:8".parse().unwrap());
        assert_eq!(a.fingerprint(), a2.fingerprint());
        assert_ne!(
            Workload::from(Benchmark::Li).fingerprint(),
            Workload::from(Benchmark::Go).fingerprint()
        );
    }

    #[test]
    fn scenario_accessor_distinguishes_kinds() {
        let b = Workload::from(Benchmark::M88ksim);
        assert!(b.as_scenario().is_none());
        let s = Workload::scenario("x branch=datadep:8".parse().unwrap());
        assert_eq!(s.as_scenario().unwrap().name, "x");
        assert_eq!(s.name(), "x");
    }
}

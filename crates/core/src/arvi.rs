//! The ARVI branch predictor — paper Section 4.
//!
//! ARVI (Available Register Value Information) predicts a branch from the
//! *values* of the registers along the data dependence chain leading up to
//! it. Per prediction (Table 1 of the paper):
//!
//! 1. read the branch's dependence chain from the DDT;
//! 2. extract the register set with the RSE;
//! 3. in parallel, form the BVIT index (XOR of the low 11 bits of the set's
//!    values with the PC) and the ID-sum tag;
//! 4. index the BVIT, compare ID and depth tags, return the prediction.
//!
//! Branches whose register-set values are all available are **calculated**
//! branches — their signature precisely defines the outcome. If any value
//! pends on an outstanding load the branch is a **load** branch — still
//! predictable from the available values, but less accurately.

use crate::bvit::{Bvit, BvitConfig};
use crate::reglist::RegList;
use crate::shadow::{ShadowMapTable, ShadowRegFile};
use crate::tracker::{LeafSet, RenamedOp, Tracker, TrackerConfig};
use crate::types::{BranchClass, InstSlot, PhysReg};
use arvi_isa::Reg;

/// Configuration of an [`ArviPredictor`].
#[derive(Debug, Clone, Copy)]
pub struct ArviConfig {
    /// BVIT shape.
    pub bvit: BvitConfig,
    /// Dependence tracker (DDT/RSE) shape.
    pub tracker: TrackerConfig,
    /// Low bits of each register value hashed into the index (11 in the
    /// paper, matching the 11-bit BVIT index).
    pub value_bits: u32,
    /// Ablation (design decision D2 in DESIGN.md): when set, *unavailable*
    /// leaf registers contribute their stale shadow value to the index
    /// instead of being gated out by the ready bit.
    pub include_stale_values: bool,
}

impl ArviConfig {
    /// The paper's configuration on top of a given tracker shape.
    pub fn paper(tracker: TrackerConfig) -> ArviConfig {
        ArviConfig {
            bvit: BvitConfig::default(),
            tracker,
            value_bits: 11,
            include_stale_values: false,
        }
    }
}

/// Where the ARVI predictor obtains register values at prediction time.
///
/// [`ArviPredictor::predict`] (and everything above it — the simulator's
/// branch unit and machine) is *generic* over the source, so each
/// configuration's lookup monomorphizes straight into the prediction
/// loop: the seed-era `&dyn Fn(PhysReg) -> Option<u64>` closure paid a
/// dynamic dispatch per leaf register of every predicted branch, on the
/// hottest ARVI path the machine has.
///
/// Implementations return `Some(value)` when the register should be
/// treated as available; the predictor masks the value to its configured
/// low bits. The `shadow` argument is the predictor's own shadow
/// register file, so the paper's base configuration ([`CurrentValues`])
/// needs no borrowed state of its own; external oracles (perfect value,
/// load back — see `arvi_sim::oracle`) ignore it.
pub trait ValueSource {
    /// The value of `r` if it should be treated as available.
    fn value_of(&self, r: PhysReg, shadow: &ShadowRegFile) -> Option<u64>;
}

/// The paper's base *current value* configuration: the predictor's own
/// shadow register file gated by ready bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct CurrentValues;

impl ValueSource for CurrentValues {
    #[inline]
    fn value_of(&self, r: PhysReg, shadow: &ShadowRegFile) -> Option<u64> {
        shadow.is_ready(r).then(|| shadow.value(r))
    }
}

/// The outcome of one ARVI prediction, carrying everything the host needs
/// to train the BVIT at commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArviPrediction {
    /// The predicted direction, or `None` on a BVIT miss (the host falls
    /// back to the level-1 predictor).
    pub direction: Option<bool>,
    /// Calculated vs load classification (Section 4.1 / Figure 5).
    pub class: BranchClass,
    /// BVIT set index used.
    pub index: usize,
    /// Register-set ID-sum tag.
    pub id_tag: u8,
    /// Dependence-chain depth tag.
    pub depth_tag: u8,
    /// The extracted register set (small-inline; cloning typical sets
    /// does not allocate).
    pub leaf_regs: RegList,
    /// How many of `leaf_regs` had available values.
    pub available: usize,
    /// Dependence-chain length walked to extract the register set.
    pub chain_len: usize,
    /// Performance-counter value of the matched BVIT entry (0 on miss).
    pub perf: u8,
    /// Whether the matched entry's direction counter was saturated.
    pub strong: bool,
}

/// The complete ARVI predictor: dependence tracker, shadow state and BVIT.
///
/// Host-pipeline protocol, in program order:
///
/// * every instruction: [`rename`](ArviPredictor::rename) at rename time
///   (after physical registers are assigned — which the paper performs at
///   fetch), [`writeback`](ArviPredictor::writeback) when its value is
///   produced, [`commit_oldest`](ArviPredictor::commit_oldest) at commit;
/// * conditional branches additionally: [`predict`](ArviPredictor::predict)
///   *before* their own `rename`, and [`train`](ArviPredictor::train) at
///   commit.
///
/// # Example
///
/// ```
/// use arvi_core::{ArviPredictor, ArviConfig, TrackerConfig, DdtConfig,
///                 RenamedOp, PhysReg, CurrentValues};
/// use arvi_isa::Reg;
///
/// let cfg = ArviConfig::paper(TrackerConfig {
///     ddt: DdtConfig { slots: 32, phys_regs: 64 },
///     track_dependents: false,
/// });
/// let mut arvi = ArviPredictor::new(cfg);
/// // p1 = some committed value 7
/// arvi.writeback(PhysReg(1), 7);
/// // branch on p1: first encounter misses the BVIT ...
/// let pred = arvi.predict(0x40, [Some(PhysReg(1)), None], &CurrentValues);
/// assert_eq!(pred.direction, None);
/// arvi.train(&pred, true, true);
/// // ... the same value signature then predicts taken.
/// let pred = arvi.predict(0x40, [Some(PhysReg(1)), None], &CurrentValues);
/// assert_eq!(pred.direction, Some(true));
/// ```
#[derive(Debug)]
pub struct ArviPredictor {
    cfg: ArviConfig,
    tracker: Tracker,
    bvit: Bvit,
    shadow: ShadowRegFile,
    map: ShadowMapTable,
    /// Reusable leaf-set scratch for [`ArviPredictor::predict`].
    leaf_scratch: LeafSet,
}

impl ArviPredictor {
    /// Creates an ARVI predictor.
    pub fn new(cfg: ArviConfig) -> ArviPredictor {
        ArviPredictor {
            tracker: Tracker::new(cfg.tracker),
            bvit: Bvit::new(cfg.bvit),
            shadow: ShadowRegFile::new(cfg.tracker.ddt.phys_regs, cfg.value_bits),
            map: ShadowMapTable::new(cfg.tracker.ddt.phys_regs, 3),
            leaf_scratch: LeafSet::default(),
            cfg,
        }
    }

    /// The dependence tracker (DDT + RSE).
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// Mutable access to the tracker (for hosts composing extra analyses).
    pub fn tracker_mut(&mut self) -> &mut Tracker {
        &mut self.tracker
    }

    /// The BVIT.
    pub fn bvit(&self) -> &Bvit {
        &self.bvit
    }

    /// The shadow register file.
    pub fn shadow(&self) -> &ShadowRegFile {
        &self.shadow
    }

    /// Inserts a renamed instruction; `logical_dest` is the architectural
    /// register its destination maps (recorded in the shadow map table).
    ///
    /// # Panics
    ///
    /// Panics if the tracker is full, or if a destination is supplied
    /// without its logical register.
    pub fn rename(&mut self, op: &RenamedOp, logical_dest: Option<Reg>) -> InstSlot {
        if let Some(d) = op.dest {
            let logical =
                logical_dest.expect("rename of a value-producing op requires its logical dest");
            self.shadow.alloc(d);
            self.map.set(d, logical);
        }
        self.tracker.insert(op)
    }

    /// Records a writeback into the shadow register file ("updates to the
    /// register file also update our duplicate set one cycle later").
    pub fn writeback(&mut self, r: PhysReg, value: u64) {
        self.shadow.write(r, value);
    }

    /// Commits the oldest in-flight instruction.
    pub fn commit_oldest(&mut self) {
        self.tracker.commit_oldest();
    }

    /// Squashes instructions younger than `new_head_seq` (misprediction
    /// recovery).
    pub fn rollback_to(&mut self, new_head_seq: u64) {
        self.tracker.rollback_to(new_head_seq);
    }

    /// Sequence number the next renamed instruction will receive.
    pub fn next_seq(&self) -> u64 {
        self.tracker.next_seq()
    }

    /// Predicts a conditional branch about to be renamed (whose operand
    /// physical registers are `branch_srcs`). Monomorphized over the
    /// value source — see [`ValueSource`].
    pub fn predict<V: ValueSource>(
        &mut self,
        pc: u64,
        branch_srcs: [Option<PhysReg>; 2],
        values: &V,
    ) -> ArviPrediction {
        let branch_seq = self.tracker.next_seq();
        self.tracker
            .leaf_set_into(branch_srcs, &mut self.leaf_scratch);
        let leaf = &self.leaf_scratch;
        let bvit_cfg = self.bvit.config();
        let depth_tag = leaf.depth_key(branch_seq, bvit_cfg.depth_bits);
        let id_tag = self.map.id_sum(&leaf.regs, bvit_cfg.id_tag_bits);

        let value_mask = (1u64 << self.cfg.value_bits) - 1;
        // PC[13:3] of the paper: the word-PC's low index bits.
        let mut index = ((pc >> 2) & ((1u64 << bvit_cfg.sets_log2) - 1)) as usize;
        let mut available = 0usize;
        for &r in leaf.regs.iter() {
            // Shadow-file values are stored pre-masked, so the mask is a
            // no-op for `CurrentValues` and exactly the old external-
            // oracle masking otherwise.
            let v = values.value_of(r, &self.shadow).map(|v| v & value_mask);
            match v {
                Some(val) => {
                    index ^= val as usize;
                    available += 1;
                }
                None if self.cfg.include_stale_values => {
                    index ^= self.shadow.value(r) as usize;
                }
                None => {}
            }
        }

        let class = if available == leaf.regs.len() {
            BranchClass::Calculated
        } else {
            BranchClass::Load
        };

        let entry = self.bvit.lookup_entry(index, id_tag, depth_tag);
        ArviPrediction {
            direction: entry.map(|(dir, ..)| dir),
            class,
            index,
            id_tag,
            depth_tag,
            leaf_regs: leaf.regs.clone(),
            available,
            chain_len: leaf.chain_len,
            perf: entry.map(|(_, perf, _)| perf).unwrap_or(0),
            strong: entry.map(|(.., strong)| strong).unwrap_or(false),
        }
    }

    /// Trains the BVIT with a resolved branch. `allocate` gates victim
    /// allocation (the host passes low-confidence status, dedicating ARVI
    /// capacity to difficult branches).
    pub fn train(&mut self, pred: &ArviPrediction, taken: bool, allocate: bool) {
        self.bvit
            .update(pred.index, pred.id_tag, pred.depth_tag, taken, allocate);
    }

    /// Total storage of the design: BVIT, DDT (+valid vector), RSE
    /// (2 bits per DDT cell), shadow register file and shadow map table.
    pub fn storage_bits(&self) -> usize {
        let ddt_bits = self.tracker.ddt().storage_bits();
        let rse_bits = 2 * self.cfg.tracker.ddt.slots * self.cfg.tracker.ddt.phys_regs;
        let map_bits = 3 * self.cfg.tracker.ddt.phys_regs;
        self.bvit.storage_bits() + ddt_bits + rse_bits + self.shadow.storage_bits() + map_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddt::DdtConfig;

    fn p(i: u16) -> PhysReg {
        PhysReg(i)
    }

    fn predictor() -> ArviPredictor {
        ArviPredictor::new(ArviConfig::paper(TrackerConfig {
            ddt: DdtConfig {
                slots: 64,
                phys_regs: 128,
            },
            track_dependents: false,
        }))
    }

    #[test]
    fn value_determined_branch_becomes_perfect() {
        // Outcome is a pure function of an available register value:
        // taken iff v == 3. After one encounter per value, ARVI is exact.
        let mut arvi = predictor();
        let key = p(1);
        let mut correct = 0;
        let mut total = 0;
        let values = [3u64, 5, 9, 3, 5, 3, 9, 9, 3, 5, 3, 9, 5, 3];
        for (i, &v) in values.iter().cycle().take(200).enumerate() {
            arvi.writeback(key, v);
            let pred = arvi.predict(0x100, [Some(key), None], &CurrentValues);
            assert_eq!(pred.class, BranchClass::Calculated);
            let taken = v == 3;
            if i >= 6 {
                total += 1;
                correct += (pred.direction == Some(taken)) as i32;
            }
            arvi.train(&pred, taken, true);
        }
        assert_eq!(correct, total, "value-keyed branch must be exact");
    }

    #[test]
    fn outstanding_load_classifies_as_load_branch() {
        let mut arvi = predictor();
        let (ptr, t1) = (p(1), p(2));
        arvi.rename(&RenamedOp::load(t1, Some(ptr)), Some(Reg::new(8)));
        // The load has not written back: t1 unavailable.
        let pred = arvi.predict(0x40, [Some(t1), None], &CurrentValues);
        assert_eq!(pred.class, BranchClass::Load);
        assert_eq!(pred.available, 0);
        assert_eq!(pred.leaf_regs, vec![t1]);
    }

    #[test]
    fn load_writeback_restores_calculated_class() {
        let mut arvi = predictor();
        let (ptr, t1) = (p(1), p(2));
        arvi.rename(&RenamedOp::load(t1, Some(ptr)), Some(Reg::new(8)));
        arvi.writeback(t1, 99);
        let pred = arvi.predict(0x40, [Some(t1), None], &CurrentValues);
        assert_eq!(pred.class, BranchClass::Calculated);
        assert_eq!(pred.available, 1);
    }

    #[test]
    fn external_oracle_makes_load_branches_calculated() {
        // The perfect-value configuration: the oracle supplies every value.
        struct Always(u64);
        impl ValueSource for Always {
            fn value_of(&self, _r: PhysReg, _shadow: &ShadowRegFile) -> Option<u64> {
                Some(self.0)
            }
        }
        let mut arvi = predictor();
        let (ptr, t1) = (p(1), p(2));
        arvi.rename(&RenamedOp::load(t1, Some(ptr)), Some(Reg::new(8)));
        let pred = arvi.predict(0x40, [Some(t1), None], &Always(7));
        assert_eq!(pred.class, BranchClass::Calculated);
    }

    #[test]
    fn depth_tag_separates_loop_iterations() {
        // Same PC, same (empty-valued) register set, different chain
        // depths — the paper's loop disambiguation. Outcome: taken for
        // depth < 3 iterations, not-taken at the third.
        let mut arvi = predictor();
        let counter_logical = Reg::new(9);
        for round in 0..20 {
            // A fresh chain each round: c = c + 1 three times, branching
            // after each increment on the chain.
            let base = p(10 + (round % 4) as u16);
            arvi.writeback(base, 0);
            let mut cur = base;
            let mut outcomes = Vec::new();
            for i in 0..3 {
                let next = p(20 + (round % 4) as u16 * 8 + i as u16);
                arvi.rename(
                    &RenamedOp::alu(next, [Some(cur), None]),
                    Some(counter_logical),
                );
                cur = next;
                let pred = arvi.predict(0x200, [Some(cur), None], &CurrentValues);
                let taken = i < 2;
                outcomes.push((pred.clone(), taken));
                arvi.train(&pred, taken, true);
            }
            // Drain the tracker for the next round.
            while arvi.tracker().occupancy() > 0 {
                arvi.commit_oldest();
            }
            if round >= 4 {
                for (pred, taken) in &outcomes {
                    assert_eq!(
                        pred.direction,
                        Some(*taken),
                        "round {round}: depth {} must disambiguate",
                        pred.depth_tag
                    );
                }
            }
        }
    }

    #[test]
    fn stale_value_ablation_changes_index() {
        let mk = |stale: bool| {
            let mut cfg = ArviConfig::paper(TrackerConfig {
                ddt: DdtConfig {
                    slots: 16,
                    phys_regs: 32,
                },
                track_dependents: false,
            });
            cfg.include_stale_values = stale;
            let mut arvi = ArviPredictor::new(cfg);
            let (ptr, t1) = (p(1), p(2));
            arvi.writeback(t1, 0b101); // stale value left by prior owner
            arvi.rename(&RenamedOp::load(t1, Some(ptr)), Some(Reg::new(8)));
            arvi.predict(0x40, [Some(t1), None], &CurrentValues).index
        };
        assert_ne!(mk(true), mk(false));
    }

    #[test]
    fn train_respects_allocate_gate() {
        let mut arvi = predictor();
        arvi.writeback(p(1), 4);
        let pred = arvi.predict(0x80, [Some(p(1)), None], &CurrentValues);
        arvi.train(&pred, true, false); // high confidence: no allocation
        let again = arvi.predict(0x80, [Some(p(1)), None], &CurrentValues);
        assert_eq!(again.direction, None);
    }

    #[test]
    fn storage_includes_all_components() {
        let arvi = predictor();
        let bits = arvi.storage_bits();
        // BVIT dominates: 8192 entries x 14 bits.
        assert!(bits > 8192 * 14);
        // DDT + RSE for 64x128 plus shadows.
        let expected = 8192 * 14 // BVIT
            + (64 * 128 + 64)    // DDT + valid
            + 2 * 64 * 128       // RSE
            + 128 * 11           // shadow regfile
            + 128 * 3; // shadow map
        assert_eq!(bits, expected);
    }

    #[test]
    #[should_panic(expected = "requires its logical dest")]
    fn rename_requires_logical_dest() {
        let mut arvi = predictor();
        arvi.rename(&RenamedOp::alu(p(1), [None, None]), None);
    }
}

//! The Branch Value Information Table (BVIT) — paper Section 4.1/4.3.
//!
//! A four-way set-associative table indexed by a hash of the branch PC and
//! the values of the extracted register set. Each entry holds:
//!
//! * an **ID tag** — the 3-bit sum of the register set's logical IDs
//!   (path differentiator, Section 4.4);
//! * a **depth tag** — the 5-bit dependence-chain span (loop-iteration
//!   differentiator, Section 4.5);
//! * a **performance counter** — 3 bits, "based on Heil's design", tracking
//!   the effectiveness of the entry and selecting the replacement victim;
//! * the **prediction** — a 2-bit saturating direction counter.

use arvi_predict::SatCounter;

/// Shape parameters for a [`Bvit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BvitConfig {
    /// log2 of the number of sets (the paper's index hash is 11 bits).
    pub sets_log2: u32,
    /// Associativity (4 in the paper).
    pub ways: usize,
    /// ID-sum tag width in bits (3 in the paper).
    pub id_tag_bits: u32,
    /// Depth tag width in bits (5 in the paper).
    pub depth_bits: u32,
    /// Performance counter width in bits (3 in the paper).
    pub perf_bits: u32,
}

impl Default for BvitConfig {
    /// The paper's configuration: 2^11 sets, 4-way.
    fn default() -> BvitConfig {
        BvitConfig {
            sets_log2: 11,
            ways: 4,
            id_tag_bits: 3,
            depth_bits: 5,
            perf_bits: 3,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    id_tag: u8,
    depth_tag: u8,
    perf: SatCounter,
    dir: SatCounter,
}

/// The BVIT: prior branch behaviour keyed by (value hash, register-set ID
/// sum, chain depth).
///
/// # Example
///
/// ```
/// use arvi_core::{Bvit, BvitConfig};
/// let mut b = Bvit::new(BvitConfig::default());
/// assert_eq!(b.lookup(100, 3, 7), None);     // cold miss
/// b.update(100, 3, 7, true, true);           // allocate + train taken
/// assert_eq!(b.lookup(100, 3, 7), Some(true));
/// assert_eq!(b.lookup(100, 4, 7), None);     // ID tag mismatch
/// ```
#[derive(Debug, Clone)]
pub struct Bvit {
    cfg: BvitConfig,
    entries: Vec<Entry>,
    set_mask: usize,
}

impl Bvit {
    /// Creates an empty BVIT.
    ///
    /// # Panics
    ///
    /// Panics if `sets_log2` is 0 or greater than 24, or `ways` is 0.
    pub fn new(cfg: BvitConfig) -> Bvit {
        assert!((1..=24).contains(&cfg.sets_log2));
        assert!(cfg.ways > 0, "BVIT needs at least one way");
        let sets = 1usize << cfg.sets_log2;
        Bvit {
            cfg,
            // The BVIT keeps scalar counters: its perf counter is an odd
            // width (3-bit) and its entries are struct-of-tags anyway —
            // the packed layout targets the flat 2-bit predictor tables.
            #[allow(deprecated)]
            entries: vec![
                Entry {
                    valid: false,
                    id_tag: 0,
                    depth_tag: 0,
                    perf: SatCounter::new(cfg.perf_bits, 0),
                    dir: SatCounter::two_bit(),
                };
                sets * cfg.ways
            ],
            set_mask: sets - 1,
        }
    }

    /// The configured shape.
    pub fn config(&self) -> BvitConfig {
        self.cfg
    }

    #[inline]
    fn set_range(&self, index: usize) -> std::ops::Range<usize> {
        let set = index & self.set_mask;
        let base = set * self.cfg.ways;
        base..base + self.cfg.ways
    }

    /// Looks up a prediction. Both tags must match (the paper's "compare
    /// the ID and depth tags, return a prediction").
    pub fn lookup(&self, index: usize, id_tag: u8, depth_tag: u8) -> Option<bool> {
        self.lookup_entry(index, id_tag, depth_tag)
            .map(|(dir, ..)| dir)
    }

    /// Looks up a prediction together with the entry's performance-counter
    /// value and whether the direction counter is saturated (*strong*).
    /// Heil's counter doubles as a usefulness estimate and the strong bit
    /// as a consistency estimate: hosts gate overrides on them so unproven
    /// or oscillating entries never flip the level-1 result.
    pub fn lookup_entry(
        &self,
        index: usize,
        id_tag: u8,
        depth_tag: u8,
    ) -> Option<(bool, u8, bool)> {
        self.entries[self.set_range(index)]
            .iter()
            .find(|e| e.valid && e.id_tag == id_tag && e.depth_tag == depth_tag)
            .map(|e| {
                let v = e.dir.value();
                (e.dir.is_set(), e.perf.value(), v == 0 || v == e.dir.max())
            })
    }

    /// Trains the table with a resolved branch outcome.
    ///
    /// On a tag hit the direction counter moves toward the outcome and the
    /// performance counter is incremented if the entry's prediction was
    /// correct, decremented otherwise. On a miss, if `allocate` is set (the
    /// host allocates only for low-confidence branches, dedicating "ARVI
    /// resources to difficult branches"), the way with the lowest
    /// performance counter is replaced.
    pub fn update(&mut self, index: usize, id_tag: u8, depth_tag: u8, taken: bool, allocate: bool) {
        let range = self.set_range(index);
        let ways = &mut self.entries[range];

        if let Some(e) = ways
            .iter_mut()
            .find(|e| e.valid && e.id_tag == id_tag && e.depth_tag == depth_tag)
        {
            let was_correct = e.dir.is_set() == taken;
            if was_correct {
                e.perf.increment();
            } else {
                e.perf.decrement();
            }
            e.dir.update(taken);
            return;
        }

        if !allocate {
            return;
        }

        // Victim: first invalid way, else the lowest performance counter.
        let victim = match ways.iter().position(|e| !e.valid) {
            Some(i) => i,
            None => {
                let mut best = 0usize;
                for (i, e) in ways.iter().enumerate() {
                    if e.perf.value() < ways[best].perf.value() {
                        best = i;
                    }
                }
                best
            }
        };
        // "The prior outcome is used as the prediction": a fresh entry
        // starts saturated toward the observed outcome, so deterministic
        // signatures predict from their second encounter.
        #[allow(deprecated)]
        let entry = Entry {
            valid: true,
            id_tag,
            depth_tag,
            perf: SatCounter::new(self.cfg.perf_bits, 1),
            dir: SatCounter::new(2, if taken { 3 } else { 0 }),
        };
        ways[victim] = entry;
    }

    /// Number of valid entries (diagnostics).
    pub fn valid_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Storage bits: per entry, valid + ID tag + depth tag + performance
    /// counter + 2-bit direction counter.
    pub fn storage_bits(&self) -> usize {
        let per_entry = 1
            + self.cfg.id_tag_bits as usize
            + self.cfg.depth_bits as usize
            + self.cfg.perf_bits as usize
            + 2;
        self.entries.len() * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Bvit {
        Bvit::new(BvitConfig {
            sets_log2: 4,
            ways: 4,
            ..Default::default()
        })
    }

    #[test]
    fn miss_then_learn() {
        let mut b = small();
        assert_eq!(b.lookup(5, 1, 2), None);
        b.update(5, 1, 2, false, true);
        assert_eq!(b.lookup(5, 1, 2), Some(false));
    }

    #[test]
    fn tags_disambiguate_same_set() {
        let mut b = small();
        b.update(5, 1, 2, true, true);
        b.update(5, 1, 3, false, true); // same ID, different depth
        b.update(5, 2, 2, false, true); // different ID, same depth
        assert_eq!(b.lookup(5, 1, 2), Some(true));
        assert_eq!(b.lookup(5, 1, 3), Some(false));
        assert_eq!(b.lookup(5, 2, 2), Some(false));
    }

    #[test]
    fn direction_counter_has_hysteresis() {
        let mut b = small();
        b.update(9, 0, 0, true, true);
        b.update(9, 0, 0, true, true); // strongly taken
        b.update(9, 0, 0, false, true); // one flip
        assert_eq!(b.lookup(9, 0, 0), Some(true));
        b.update(9, 0, 0, false, true);
        assert_eq!(b.lookup(9, 0, 0), Some(false));
    }

    #[test]
    fn no_allocation_without_permission() {
        let mut b = small();
        b.update(7, 1, 1, true, false);
        assert_eq!(b.lookup(7, 1, 1), None);
        assert_eq!(b.valid_entries(), 0);
    }

    #[test]
    fn replacement_evicts_lowest_performance() {
        let mut b = Bvit::new(BvitConfig {
            sets_log2: 1,
            ways: 2,
            ..Default::default()
        });
        // Fill both ways of set 0.
        b.update(0, 1, 0, true, true);
        b.update(0, 2, 0, true, true);
        // Entry (1,0) predicts correctly many times: perf rises.
        for _ in 0..6 {
            b.update(0, 1, 0, true, true);
        }
        // Entry (2,0) mispredicts: perf falls to 0.
        b.update(0, 2, 0, false, true);
        b.update(0, 2, 0, true, true);
        b.update(0, 2, 0, false, true);
        // A new signature must evict (2,0), not the high-performer.
        b.update(0, 3, 0, true, true);
        assert_eq!(b.lookup(0, 1, 0), Some(true), "high performer survives");
        assert_eq!(b.lookup(0, 2, 0), None, "low performer evicted");
        assert_eq!(b.lookup(0, 3, 0), Some(true));
    }

    #[test]
    fn index_wraps_to_set_count() {
        let mut b = small();
        b.update(3, 1, 1, true, true);
        // 3 + 16 maps to the same set; different tags still miss.
        assert_eq!(b.lookup(3 + 16, 9, 9), None);
        assert_eq!(b.lookup(3 + 16, 1, 1), Some(true));
    }

    #[test]
    fn paper_config_storage() {
        let b = Bvit::new(BvitConfig::default());
        // 2048 sets x 4 ways = 8192 entries of 14 bits.
        assert_eq!(b.storage_bits(), 8192 * 14);
    }
}

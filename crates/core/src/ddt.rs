//! The Data Dependence Table (DDT) — paper Section 2.
//!
//! The DDT is a RAM with one row per physical register and one bit-column
//! per in-flight instruction. Row `r` holds the *data dependence chain* of
//! the youngest in-flight producer of `r`: the set of in-flight
//! instructions the value of `r` transitively depends on. On insertion of
//! an instruction the hardware computes
//!
//! ```text
//! DDT[dest] = (DDT[src1] OR DDT[src2]) AND ValidVector  |  own bit
//! ```
//!
//! Instruction entries are allocated in circular FIFO order; a commit
//! clears the instruction's valid bit (removing it from all future chain
//! reads immediately), and a branch misprediction rolls the head pointer
//! back exactly like the ROB.
//!
//! ## Software representation
//!
//! This model is bit-exact with the hardware but avoids the hardware's
//! column-clear-on-reuse sweep. Slots are allocated strictly round-robin
//! (`slot = seq % capacity`), so the occupant of a slot changes exactly
//! every `capacity` allocations. A row written when instruction `W` was
//! inserted can only legitimately reference instructions with sequence
//! numbers in `[tail, W]`; masking a row read with the circular range
//! `[tail, W]` (plus the valid vector, which also accounts for squashes)
//! yields exactly the bits a column-clearing hardware implementation would
//! see, in `O(capacity/64)` word operations.

use crate::types::{InstSlot, PhysReg};

/// Shape parameters for a [`Ddt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdtConfig {
    /// Number of instruction entries (columns) — the in-flight window.
    pub slots: usize,
    /// Number of physical registers (rows).
    pub phys_regs: usize,
}

impl DdtConfig {
    /// The paper's sizing example (Section 2.1): the Alpha 21264's 80 ROB
    /// entries and 72 physical integer registers, giving a 730-byte RAM.
    pub fn alpha_21264() -> DdtConfig {
        DdtConfig {
            slots: 80,
            phys_regs: 72,
        }
    }
}

/// A dependence-chain bit vector over instruction slots.
///
/// Produced by [`Ddt::chain`], or reused across reads with
/// [`Ddt::chain_into`]; iterate the member slots with
/// [`ChainMask::slots`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainMask {
    words: Vec<u64>,
    slots: usize,
}

impl ChainMask {
    /// Creates an empty (all-zero) mask sized for `slots` instruction
    /// entries. Pair with [`Ddt::chain_into`] to reuse one allocation
    /// across many chain reads.
    pub fn zeroed(slots: usize) -> ChainMask {
        ChainMask {
            words: vec![0; slots.div_ceil(64)],
            slots,
        }
    }

    /// Clears every bit (capacity is retained).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of instruction slots the mask covers.
    pub fn capacity(&self) -> usize {
        self.slots
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of instructions in the chain.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `slot` is a member of the chain.
    pub fn contains(&self, slot: InstSlot) -> bool {
        let i = slot.index();
        i < self.slots && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Iterates the member slots in **column order** (ascending slot
    /// index), *not* program (age) order. Because slots are allocated
    /// round-robin, a chain that wraps the ring end comes out mis-ordered
    /// relative to insertion age: the slice occupying low column indices
    /// is younger than the slice at the high indices. Callers that need
    /// oldest-first order must sort by [`Ddt::slot_seq`] — or use
    /// [`Ddt::slots_by_age`], which does exactly that.
    pub fn slots(&self) -> impl Iterator<Item = InstSlot> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(InstSlot((wi * 64) as u32 + b))
                }
            })
        })
    }

    /// Unions another chain into this one.
    pub fn union_with(&mut self, other: &ChainMask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The raw words of the mask (low bit of word 0 = slot 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// A prepared masked row read: word offset plus the (up to two) linear
/// exclusion segments covering columns recycled after the row's write.
#[derive(Debug, Clone, Copy)]
struct RowRead {
    base: usize,
    a: (usize, usize),
    b: (usize, usize),
}

/// The Data Dependence Table.
///
/// # Example
///
/// ```
/// use arvi_core::{Ddt, DdtConfig, PhysReg};
///
/// let mut ddt = Ddt::new(DdtConfig { slots: 8, phys_regs: 16 });
/// let p1 = PhysReg(1);
/// let p2 = PhysReg(2);
/// let s0 = ddt.insert(Some(p1), [None, None]);        // p1 = ...
/// let s1 = ddt.insert(Some(p2), [Some(p1), None]);    // p2 = f(p1)
/// let chain = ddt.chain(&[p2]);
/// assert!(chain.contains(s0) && chain.contains(s1));
/// ddt.commit_oldest();                                 // retire producer of p1
/// assert!(!ddt.chain(&[p2]).contains(s0));
/// ```
#[derive(Debug, Clone)]
pub struct Ddt {
    cfg: DdtConfig,
    words: usize,
    /// Row bits, `phys_regs * words`, row-major.
    rows: Vec<u64>,
    /// Sequence number current when each row was last written.
    row_seq: Vec<u64>,
    /// Whether each row has ever been written (a fresh row is empty),
    /// one bit per register row.
    row_written: Vec<u64>,
    /// Valid vector, one bit per slot. Maintained incrementally (set on
    /// insert, cleared on commit/rollback), it is always exactly the
    /// live-range mask of `[tail_seq, head_seq)`.
    valid: Vec<u64>,
    /// Sequence number of each slot's current occupant.
    slot_seq: Vec<u64>,
    /// Sequence number of the next instruction to insert (head pointer).
    head_seq: u64,
    /// Sequence number of the oldest in-flight instruction (tail pointer).
    tail_seq: u64,
}

impl Ddt {
    /// Creates an empty DDT.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cfg: DdtConfig) -> Ddt {
        assert!(cfg.slots > 0, "DDT needs at least one slot");
        assert!(cfg.phys_regs > 0, "DDT needs at least one register row");
        let words = cfg.slots.div_ceil(64);
        Ddt {
            cfg,
            words,
            rows: vec![0; cfg.phys_regs * words],
            row_seq: vec![0; cfg.phys_regs],
            row_written: vec![0; cfg.phys_regs.div_ceil(64)],
            valid: vec![0; words],
            slot_seq: vec![0; cfg.slots],
            head_seq: 0,
            tail_seq: 0,
        }
    }

    /// The configured shape.
    pub fn config(&self) -> DdtConfig {
        self.cfg
    }

    /// Number of in-flight (inserted, not yet committed or squashed past)
    /// instruction entries.
    pub fn occupancy(&self) -> usize {
        (self.head_seq - self.tail_seq) as usize
    }

    /// Whether all instruction entries are occupied.
    pub fn is_full(&self) -> bool {
        self.occupancy() == self.cfg.slots
    }

    /// Whether no instructions are in flight.
    pub fn is_empty(&self) -> bool {
        self.head_seq == self.tail_seq
    }

    /// The sequence number the next inserted instruction will receive.
    pub fn next_seq(&self) -> u64 {
        self.head_seq
    }

    /// The sequence number of the oldest in-flight instruction.
    pub fn tail_seq(&self) -> u64 {
        self.tail_seq
    }

    /// The sequence number of the occupant of `slot`.
    pub fn slot_seq(&self, slot: InstSlot) -> u64 {
        self.slot_seq[slot.index()]
    }

    /// RAM bits of the hardware structure: rows plus the valid vector.
    ///
    /// For the paper's Alpha 21264 sizing (80 slots, 72 registers) this is
    /// 5840 bits = 730 bytes.
    pub fn storage_bits(&self) -> usize {
        self.cfg.slots * self.cfg.phys_regs + self.cfg.slots
    }

    #[inline]
    fn slot_of(&self, seq: u64) -> usize {
        (seq % self.cfg.slots as u64) as usize
    }

    /// The portion of the linear bit range `[start, end)` falling in word
    /// `wi` (no wraparound; empty intersections yield 0).
    #[inline]
    fn seg_word(start: usize, end: usize, wi: usize) -> u64 {
        let lo = start.max(wi * 64);
        let hi = end.min(wi * 64 + 64);
        if lo >= hi {
            return 0;
        }
        let width = hi - lo;
        let ones = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        ones << (lo - wi * 64)
    }

    /// The two linear segments of the circular slot range covering `len`
    /// slots starting at `start` (the second is empty unless it wraps).
    #[inline]
    fn wrap_segments(&self, start: usize, len: usize) -> [(usize, usize); 2] {
        let end = start + len;
        if end <= self.cfg.slots {
            [(start, end), (0, 0)]
        } else {
            [(start, self.cfg.slots), (0, end - self.cfg.slots)]
        }
    }

    #[inline]
    fn row_written(&self, r: PhysReg) -> bool {
        self.row_written[r.index() / 64] >> (r.index() % 64) & 1 == 1
    }

    /// Prepares a masked read of row `r`: its base word offset and the
    /// exclusion segments for columns recycled after the row's write.
    /// `None` when the row cannot contribute (never written, or every
    /// live column postdates the write).
    #[inline]
    fn prep_read(&self, r: PhysReg) -> Option<RowRead> {
        if !self.row_written(r) {
            return None;
        }
        let w = self.row_seq[r.index()];
        // Columns recycled after the write: occupants with seq in
        // (W, head). Saturation covers a writer squashed by rollback
        // (W >= head: nothing allocated after it survives); when the
        // writer predates the whole live window (W < tail) every live
        // column is a recycle and the row is dead.
        let young = self.head_seq.saturating_sub(w + 1) as usize;
        if young >= self.cfg.slots {
            return None;
        }
        let [a, b] = if young == 0 {
            [(0, 0), (0, 0)]
        } else {
            self.wrap_segments(self.slot_of(w + 1), young)
        };
        Some(RowRead {
            base: r.index() * self.words,
            a,
            b,
        })
    }

    /// The exclusion-mask word `wi` of a prepared read.
    #[inline]
    fn excl_word(rr: &RowRead, wi: usize) -> u64 {
        Ddt::seg_word(rr.a.0, rr.a.1, wi) | Ddt::seg_word(rr.b.0, rr.b.1, wi)
    }

    /// Reads row `r` masked to its genuine live bits, OR-ing into `out`.
    ///
    /// The valid vector is maintained as exactly the live range
    /// `[tail, head)`, so the only extra filtering a read needs is to
    /// drop columns recycled *after* the row was written at `W`: the
    /// circular range `(W, head)`. That exclusion mask is composed
    /// word-by-word on the fly — no scratch buffer, no rebuild of a full
    /// live-range mask per read.
    #[inline]
    fn read_row_into(&self, r: PhysReg, out: &mut [u64]) {
        let Some(rr) = self.prep_read(r) else { return };
        let row = &self.rows[rr.base..rr.base + self.words];
        if rr.a.0 >= rr.a.1 {
            // Row written by the youngest in-flight instruction: the
            // valid vector alone is the exact filter (common case — most
            // chain reads hit recently written rows).
            for i in 0..self.words {
                out[i] |= row[i] & self.valid[i];
            }
        } else {
            for i in 0..self.words {
                out[i] |= row[i] & self.valid[i] & !Ddt::excl_word(&rr, i);
            }
        }
    }

    /// Inserts an instruction at the head of the circular buffer.
    ///
    /// If `dest` is present, its row is rewritten with the union of the
    /// source rows (masked by the valid vector) plus the instruction's own
    /// bit — the paper's `DDT[Target] = (DDT[Src1] OR DDT[Src2]) AND
    /// ValidVector` update, which takes one read cycle and one write cycle
    /// in hardware.
    ///
    /// # Panics
    ///
    /// Panics if the DDT is full (the host pipeline must stall rename).
    pub fn insert(&mut self, dest: Option<PhysReg>, srcs: [Option<PhysReg>; 2]) -> InstSlot {
        assert!(!self.is_full(), "DDT full: host must stall rename");
        let seq = self.head_seq;
        let slot = self.slot_of(seq);

        if let Some(d) = dest {
            // Fused allocation-free row write: each destination word is
            // computed from the same-indexed source words and stored
            // directly — no staging buffer, no clear, no copy. Writing
            // word i only reads word i of the source rows, so this is
            // correct even when the destination row *is* a source row.
            let r1 = srcs[0].and_then(|s| self.prep_read(s));
            let r2 = srcs[1].and_then(|s| self.prep_read(s));
            let base = d.index() * self.words;
            let (own_w, own_b) = (slot / 64, 1u64 << (slot % 64));
            for i in 0..self.words {
                // Every register is trivially dependent on its own
                // producer.
                let mut w = if i == own_w { own_b } else { 0 };
                if let Some(rr) = &r1 {
                    w |= self.rows[rr.base + i] & self.valid[i] & !Ddt::excl_word(rr, i);
                }
                if let Some(rr) = &r2 {
                    w |= self.rows[rr.base + i] & self.valid[i] & !Ddt::excl_word(rr, i);
                }
                self.rows[base + i] = w;
            }
            self.row_seq[d.index()] = seq;
            self.row_written[d.index() / 64] |= 1u64 << (d.index() % 64);
        }

        self.valid[slot / 64] |= 1u64 << (slot % 64);
        self.slot_seq[slot] = seq;
        self.head_seq = seq + 1;
        InstSlot(slot as u32)
    }

    /// Reads the union of the dependence chains of `regs` (the chain read
    /// the ARVI predictor performs for a branch's operand registers).
    ///
    /// Allocates a fresh [`ChainMask`]; hot paths should reuse one via
    /// [`Ddt::chain_into`].
    pub fn chain(&self, regs: &[PhysReg]) -> ChainMask {
        let mut out = ChainMask::zeroed(self.cfg.slots);
        self.chain_into(regs, &mut out);
        out
    }

    /// In-place variant of [`Ddt::chain`]: clears `out` and ORs in the
    /// chains of `regs`. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `out` was sized for a different slot count.
    #[inline]
    pub fn chain_into(&self, regs: &[PhysReg], out: &mut ChainMask) {
        assert_eq!(
            out.slots, self.cfg.slots,
            "ChainMask sized for {} slots, DDT has {}",
            out.slots, self.cfg.slots
        );
        out.clear();
        for &r in regs {
            self.read_row_into(r, &mut out.words);
        }
    }

    /// The member slots of `mask` sorted oldest-first by occupant
    /// sequence number — the program-order view that
    /// [`ChainMask::slots`] (column order) does not provide once a chain
    /// wraps the ring.
    pub fn slots_by_age(&self, mask: &ChainMask) -> Vec<InstSlot> {
        let mut slots: Vec<InstSlot> = mask.slots().collect();
        slots.sort_unstable_by_key(|&s| self.slot_seq[s.index()]);
        slots
    }

    /// Commits the oldest in-flight instruction: clears its valid bit —
    /// immediately removing it from all future chain reads — and advances
    /// the tail pointer, freeing the entry for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the DDT is empty.
    pub fn commit_oldest(&mut self) -> InstSlot {
        assert!(!self.is_empty(), "DDT empty: nothing to commit");
        let slot = self.slot_of(self.tail_seq);
        self.valid[slot / 64] &= !(1u64 << (slot % 64));
        self.tail_seq += 1;
        InstSlot(slot as u32)
    }

    /// Rolls back to the state just after instruction `seq` was inserted,
    /// squashing all younger instructions — the paper's
    /// branch-misprediction recovery, performed identically to the ROB by
    /// moving the head pointer.
    ///
    /// # Panics
    ///
    /// Panics if `new_head_seq` is not within `[tail, head]`.
    pub fn rollback_to(&mut self, new_head_seq: u64) {
        assert!(
            new_head_seq >= self.tail_seq && new_head_seq <= self.head_seq,
            "rollback target {new_head_seq} outside [{}, {}]",
            self.tail_seq,
            self.head_seq
        );
        let squashed = (self.head_seq - new_head_seq) as usize;
        if squashed > 0 {
            let [a, b] = self.wrap_segments(self.slot_of(new_head_seq), squashed);
            for i in 0..self.words {
                let clear = Ddt::seg_word(a.0, a.1, i) | Ddt::seg_word(b.0, b.1, i);
                self.valid[i] &= !clear;
            }
        }
        self.head_seq = new_head_seq;
    }

    /// Whether the occupant of `slot` is currently valid.
    pub fn is_slot_valid(&self, slot: InstSlot) -> bool {
        let i = slot.index();
        self.valid[i / 64] >> (i % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> PhysReg {
        PhysReg(i)
    }

    /// The worked example of the paper's Figure 1, using the program the
    /// RSE example (Figure 3) spells out:
    ///
    /// ```text
    /// 1: load p1 (p2)
    /// 2: add  p4 = p1 + p3
    /// 3: or   p5 = p4 | p1
    /// 4: sub  p6 = p5 - p4
    /// 5: add  p7 = p1 + 1
    /// 6: add  p8 = p4 + p7
    /// ```
    fn figure_1_ddt() -> (Ddt, Vec<InstSlot>) {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 9,
            phys_regs: 10,
        });
        let s = vec![
            ddt.insert(Some(p(1)), [Some(p(2)), None]),
            ddt.insert(Some(p(4)), [Some(p(1)), Some(p(3))]),
            ddt.insert(Some(p(5)), [Some(p(4)), Some(p(1))]),
            ddt.insert(Some(p(6)), [Some(p(5)), Some(p(4))]),
            ddt.insert(Some(p(7)), [Some(p(1)), None]),
            ddt.insert(Some(p(8)), [Some(p(4)), Some(p(7))]),
        ];
        (ddt, s)
    }

    #[test]
    fn paper_figure_1() {
        let (ddt, s) = figure_1_ddt();
        // "physical register p5 is data dependent on both instructions 1
        // and 2" (and trivially on its own instruction 3).
        let c5 = ddt.chain(&[p(5)]);
        assert_eq!(
            c5.slots().collect::<Vec<_>>(),
            vec![s[0], s[1], s[2]],
            "chain of p5"
        );
        // "The entry for physical register p8 now contains the data
        // dependence chain consisting of instructions 1, 2, 5, and 6."
        let c8 = ddt.chain(&[p(8)]);
        assert_eq!(
            c8.slots().collect::<Vec<_>>(),
            vec![s[0], s[1], s[4], s[5]],
            "chain of p8"
        );
    }

    #[test]
    fn paper_sizing_example() {
        // "the DDT would contain 5760 bits, or 730 bytes" including the
        // 80-bit valid vector.
        let ddt = Ddt::new(DdtConfig::alpha_21264());
        assert_eq!(ddt.storage_bits(), 5760 + 80);
        assert_eq!(ddt.storage_bits() / 8, 730);
    }

    #[test]
    fn commit_removes_from_chains_immediately() {
        let (mut ddt, s) = figure_1_ddt();
        ddt.commit_oldest(); // retire the load (instruction 1)
        let c8 = ddt.chain(&[p(8)]);
        assert!(!c8.contains(s[0]), "committed load must leave the chain");
        assert_eq!(c8.slots().collect::<Vec<_>>(), vec![s[1], s[4], s[5]]);
    }

    #[test]
    fn rollback_squashes_younger() {
        let (mut ddt, s) = figure_1_ddt();
        // Squash instructions 5 and 6 (seq 4,5); keep 1..4.
        ddt.rollback_to(4);
        assert_eq!(ddt.occupancy(), 4);
        let c8 = ddt.chain(&[p(8)]);
        // p8's row was written by a squashed instruction; its live range
        // still filters to surviving producers only.
        assert!(!c8.contains(s[5]));
        assert!(!c8.contains(s[4]));
        // p6's chain is intact.
        let c6 = ddt.chain(&[p(6)]);
        assert_eq!(c6.slots().collect::<Vec<_>>(), vec![s[0], s[1], s[2], s[3]]);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_stale_bits() {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 4,
            phys_regs: 8,
        });
        // Fill the ring: p1..p4 in slots 0..3.
        ddt.insert(Some(p(1)), [None, None]);
        ddt.insert(Some(p(2)), [Some(p(1)), None]);
        ddt.insert(Some(p(3)), [Some(p(2)), None]);
        ddt.insert(Some(p(4)), [Some(p(3)), None]);
        // Retire two, reuse their slots with unrelated instructions.
        ddt.commit_oldest();
        ddt.commit_oldest();
        let s4 = ddt.insert(Some(p(5)), [None, None]); // reuses slot 0
        let s5 = ddt.insert(Some(p(6)), [Some(p(5)), None]); // reuses slot 1
        assert_eq!((s4.index(), s5.index()), (0, 1));
        // p4's chain was {0,1,2,3}; slots 0 and 1 now hold unrelated
        // instructions and must NOT appear in it.
        let c4 = ddt.chain(&[p(4)]);
        assert_eq!(c4.len(), 2, "only slots 2 and 3 remain genuine");
        assert!(c4.contains(InstSlot(2)) && c4.contains(InstSlot(3)));
        // The new instructions' own chain is correct.
        let c6 = ddt.chain(&[p(6)]);
        assert_eq!(c6.slots().collect::<Vec<_>>(), vec![s4, s5]);
    }

    #[test]
    fn chain_of_unwritten_register_is_empty() {
        let ddt = Ddt::new(DdtConfig {
            slots: 4,
            phys_regs: 4,
        });
        assert!(ddt.chain(&[p(3)]).is_empty());
    }

    #[test]
    fn chain_union_of_two_operands() {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 8,
            phys_regs: 8,
        });
        let a = ddt.insert(Some(p(1)), [None, None]);
        let b = ddt.insert(Some(p(2)), [None, None]);
        let c = ddt.chain(&[p(1), p(2)]);
        assert_eq!(c.slots().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "DDT full")]
    fn insert_when_full_panics() {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 2,
            phys_regs: 4,
        });
        ddt.insert(None, [None, None]);
        ddt.insert(None, [None, None]);
        ddt.insert(None, [None, None]);
    }

    #[test]
    #[should_panic(expected = "DDT empty")]
    fn commit_when_empty_panics() {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 2,
            phys_regs: 4,
        });
        ddt.commit_oldest();
    }

    #[test]
    fn long_running_wraparound_consistency() {
        // Stream a long dependent chain through a small ring, committing
        // as we go; the chain must always consist of exactly the live
        // window of producers.
        let cap = 6usize;
        let mut ddt = Ddt::new(DdtConfig {
            slots: cap,
            phys_regs: 64,
        });
        let mut live = 0usize;
        for i in 0..200u16 {
            if live == cap {
                ddt.commit_oldest();
                live -= 1;
            }
            let dest = p(i % 60);
            let src = if i == 0 { None } else { Some(p((i - 1) % 60)) };
            ddt.insert(Some(dest), [src, None]);
            live += 1;
            let chain = ddt.chain(&[dest]);
            assert_eq!(chain.len(), live, "at step {i}");
        }
    }

    #[test]
    fn valid_vector_gates_mid_chain_commits() {
        // Commit only the oldest while the chain spans it: the younger
        // reader must lose exactly that one bit.
        let mut ddt = Ddt::new(DdtConfig {
            slots: 8,
            phys_regs: 8,
        });
        ddt.insert(Some(p(1)), [None, None]);
        ddt.insert(Some(p(2)), [Some(p(1)), None]);
        ddt.insert(Some(p(3)), [Some(p(2)), None]);
        assert_eq!(ddt.chain(&[p(3)]).len(), 3);
        ddt.commit_oldest();
        assert_eq!(ddt.chain(&[p(3)]).len(), 2);
        ddt.commit_oldest();
        assert_eq!(ddt.chain(&[p(3)]).len(), 1);
    }

    #[test]
    fn wide_ddt_multiword_masks() {
        // Exercise the multi-word (slots > 64) paths.
        let cap = 200usize;
        let mut ddt = Ddt::new(DdtConfig {
            slots: cap,
            phys_regs: 128,
        });
        let mut last = None;
        for i in 0..150u16 {
            let dest = p(i % 120);
            ddt.insert(Some(dest), [last, None]);
            last = Some(dest);
        }
        let chain = ddt.chain(&[last.unwrap()]);
        assert_eq!(chain.len(), 150);
        // Slots span multiple words.
        assert!(chain.contains(InstSlot(0)) && chain.contains(InstSlot(149)));
    }

    #[test]
    fn wraparound_chain_is_column_ordered_but_age_sortable() {
        // Regression for the ChainMask::slots ordering contract: drive a
        // dependent chain around the ring end so the chain occupies
        // columns {3, 0, 1} in insertion order. Column-order iteration
        // reports {0, 1, 3} — mis-ordered relative to age — while
        // slots_by_age restores program order.
        let cap = 4usize;
        let mut ddt = Ddt::new(DdtConfig {
            slots: cap,
            phys_regs: 16,
        });
        // Fill slots 0..3, then free 0..2 so the ring wraps.
        ddt.insert(Some(p(1)), [None, None]);
        ddt.insert(Some(p(2)), [Some(p(1)), None]);
        ddt.insert(Some(p(3)), [Some(p(2)), None]);
        ddt.insert(Some(p(4)), [Some(p(3)), None]); // slot 3
        ddt.commit_oldest();
        ddt.commit_oldest();
        ddt.commit_oldest();
        let s4 = ddt.insert(Some(p(5)), [Some(p(4)), None]); // wraps to slot 0
        let s5 = ddt.insert(Some(p(6)), [Some(p(5)), None]); // slot 1
        assert_eq!((s4.index(), s5.index()), (0, 1));

        let chain = ddt.chain(&[p(6)]);
        // Column order: the wrapped (younger) slots come out first.
        assert_eq!(
            chain.slots().collect::<Vec<_>>(),
            vec![InstSlot(0), InstSlot(1), InstSlot(3)],
            "slots() iterates columns, not ages"
        );
        // Age order restores the insertion sequence p4 -> p5 -> p6.
        assert_eq!(
            ddt.slots_by_age(&chain),
            vec![InstSlot(3), InstSlot(0), InstSlot(1)],
            "slots_by_age must follow occupant sequence numbers"
        );
    }

    #[test]
    fn chain_into_reuses_mask_across_shapes_of_reads() {
        let (ddt, s) = figure_1_ddt();
        let mut mask = ChainMask::zeroed(ddt.config().slots);
        ddt.chain_into(&[p(8)], &mut mask);
        assert_eq!(mask, ddt.chain(&[p(8)]));
        // Reuse for a different read: previous contents must not leak.
        ddt.chain_into(&[p(7)], &mut mask);
        assert_eq!(mask.slots().collect::<Vec<_>>(), vec![s[0], s[4]]);
        ddt.chain_into(&[], &mut mask);
        assert!(mask.is_empty());
    }

    #[test]
    #[should_panic(expected = "ChainMask sized for")]
    fn chain_into_rejects_mismatched_mask() {
        let (ddt, _) = figure_1_ddt();
        let mut mask = ChainMask::zeroed(4);
        ddt.chain_into(&[p(8)], &mut mask);
    }

    #[test]
    fn chain_mask_helpers() {
        let (ddt, s) = figure_1_ddt();
        let c = ddt.chain(&[p(8)]);
        assert!(!c.is_empty());
        let mut other = ddt.chain(&[p(6)]);
        other.union_with(&c);
        assert!(other.contains(s[3]) && other.contains(s[5]));
        assert_eq!(other.words().len(), 1);
    }
}

//! The Data Dependence Table (DDT) — paper Section 2.
//!
//! The DDT is a RAM with one row per physical register and one bit-column
//! per in-flight instruction. Row `r` holds the *data dependence chain* of
//! the youngest in-flight producer of `r`: the set of in-flight
//! instructions the value of `r` transitively depends on. On insertion of
//! an instruction the hardware computes
//!
//! ```text
//! DDT[dest] = (DDT[src1] OR DDT[src2]) AND ValidVector  |  own bit
//! ```
//!
//! Instruction entries are allocated in circular FIFO order; a commit
//! clears the instruction's valid bit (removing it from all future chain
//! reads immediately), and a branch misprediction rolls the head pointer
//! back exactly like the ROB.
//!
//! ## Software representation
//!
//! This model is bit-exact with the hardware but avoids the hardware's
//! column-clear-on-reuse sweep. Slots are allocated strictly round-robin
//! (`slot = seq % capacity`), so the occupant of a slot changes exactly
//! every `capacity` allocations. A row written when instruction `W` was
//! inserted can only legitimately reference instructions with sequence
//! numbers in `[tail, W]`; masking a row read with the circular range
//! `[tail, W]` (plus the valid vector, which also accounts for squashes)
//! yields exactly the bits a column-clearing hardware implementation would
//! see, in `O(capacity/64)` word operations.

use crate::types::{InstSlot, PhysReg};

/// Shape parameters for a [`Ddt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdtConfig {
    /// Number of instruction entries (columns) — the in-flight window.
    pub slots: usize,
    /// Number of physical registers (rows).
    pub phys_regs: usize,
}

impl DdtConfig {
    /// The paper's sizing example (Section 2.1): the Alpha 21264's 80 ROB
    /// entries and 72 physical integer registers, giving a 730-byte RAM.
    pub fn alpha_21264() -> DdtConfig {
        DdtConfig {
            slots: 80,
            phys_regs: 72,
        }
    }
}

/// A dependence-chain bit vector over instruction slots.
///
/// Produced by [`Ddt::chain`]; iterate the member slots with
/// [`ChainMask::slots`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainMask {
    words: Vec<u64>,
    slots: usize,
}

impl ChainMask {
    fn zeroed(slots: usize) -> ChainMask {
        ChainMask {
            words: vec![0; slots.div_ceil(64)],
            slots,
        }
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of instructions in the chain.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `slot` is a member of the chain.
    pub fn contains(&self, slot: InstSlot) -> bool {
        let i = slot.index();
        i < self.slots && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Iterates the member slots in column order.
    pub fn slots(&self) -> impl Iterator<Item = InstSlot> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(InstSlot((wi * 64) as u32 + b))
                }
            })
        })
    }

    /// Unions another chain into this one.
    pub fn union_with(&mut self, other: &ChainMask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The raw words of the mask (low bit of word 0 = slot 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// The Data Dependence Table.
///
/// # Example
///
/// ```
/// use arvi_core::{Ddt, DdtConfig, PhysReg};
///
/// let mut ddt = Ddt::new(DdtConfig { slots: 8, phys_regs: 16 });
/// let p1 = PhysReg(1);
/// let p2 = PhysReg(2);
/// let s0 = ddt.insert(Some(p1), [None, None]);        // p1 = ...
/// let s1 = ddt.insert(Some(p2), [Some(p1), None]);    // p2 = f(p1)
/// let chain = ddt.chain(&[p2]);
/// assert!(chain.contains(s0) && chain.contains(s1));
/// ddt.commit_oldest();                                 // retire producer of p1
/// assert!(!ddt.chain(&[p2]).contains(s0));
/// ```
#[derive(Debug, Clone)]
pub struct Ddt {
    cfg: DdtConfig,
    words: usize,
    /// Row bits, `phys_regs * words`, row-major.
    rows: Vec<u64>,
    /// Sequence number current when each row was last written.
    row_seq: Vec<u64>,
    /// Whether each row has ever been written (a fresh row is empty).
    row_written: Vec<bool>,
    /// Valid vector, one bit per slot.
    valid: Vec<u64>,
    /// Sequence number of each slot's current occupant.
    slot_seq: Vec<u64>,
    /// Sequence number of the next instruction to insert (head pointer).
    head_seq: u64,
    /// Sequence number of the oldest in-flight instruction (tail pointer).
    tail_seq: u64,
}

impl Ddt {
    /// Creates an empty DDT.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cfg: DdtConfig) -> Ddt {
        assert!(cfg.slots > 0, "DDT needs at least one slot");
        assert!(cfg.phys_regs > 0, "DDT needs at least one register row");
        let words = cfg.slots.div_ceil(64);
        Ddt {
            cfg,
            words,
            rows: vec![0; cfg.phys_regs * words],
            row_seq: vec![0; cfg.phys_regs],
            row_written: vec![false; cfg.phys_regs],
            valid: vec![0; words],
            slot_seq: vec![0; cfg.slots],
            head_seq: 0,
            tail_seq: 0,
        }
    }

    /// The configured shape.
    pub fn config(&self) -> DdtConfig {
        self.cfg
    }

    /// Number of in-flight (inserted, not yet committed or squashed past)
    /// instruction entries.
    pub fn occupancy(&self) -> usize {
        (self.head_seq - self.tail_seq) as usize
    }

    /// Whether all instruction entries are occupied.
    pub fn is_full(&self) -> bool {
        self.occupancy() == self.cfg.slots
    }

    /// Whether no instructions are in flight.
    pub fn is_empty(&self) -> bool {
        self.head_seq == self.tail_seq
    }

    /// The sequence number the next inserted instruction will receive.
    pub fn next_seq(&self) -> u64 {
        self.head_seq
    }

    /// The sequence number of the oldest in-flight instruction.
    pub fn tail_seq(&self) -> u64 {
        self.tail_seq
    }

    /// The sequence number of the occupant of `slot`.
    pub fn slot_seq(&self, slot: InstSlot) -> u64 {
        self.slot_seq[slot.index()]
    }

    /// RAM bits of the hardware structure: rows plus the valid vector.
    ///
    /// For the paper's Alpha 21264 sizing (80 slots, 72 registers) this is
    /// 5840 bits = 730 bytes.
    pub fn storage_bits(&self) -> usize {
        self.cfg.slots * self.cfg.phys_regs + self.cfg.slots
    }

    #[inline]
    fn slot_of(&self, seq: u64) -> usize {
        (seq % self.cfg.slots as u64) as usize
    }

    #[inline]
    fn row(&self, r: PhysReg) -> &[u64] {
        let base = r.index() * self.words;
        &self.rows[base..base + self.words]
    }

    /// Sets bits `[start, start+len)` (linear, no wraparound) in `out`.
    fn set_linear(out: &mut [u64], start: usize, end: usize) {
        if start >= end {
            return;
        }
        let (sw, sb) = (start / 64, start % 64);
        let (ew, eb) = ((end - 1) / 64, (end - 1) % 64 + 1);
        if sw == ew {
            let mask = (u64::MAX >> (64 - (eb - sb))) << sb;
            out[sw] |= mask;
        } else {
            out[sw] |= u64::MAX << sb;
            for w in &mut out[sw + 1..ew] {
                *w = u64::MAX;
            }
            out[ew] |= u64::MAX >> (64 - eb);
        }
    }

    /// Builds the circular slot mask for the live sequence range
    /// `[from_seq, to_seq)` into `out` (cleared first).
    fn live_range_mask(&self, from_seq: u64, to_seq: u64, out: &mut [u64]) {
        out.fill(0);
        if to_seq <= from_seq {
            return;
        }
        let len = (to_seq - from_seq) as usize;
        debug_assert!(len <= self.cfg.slots, "live range exceeds capacity");
        let start = self.slot_of(from_seq);
        let end = start + len;
        if end <= self.cfg.slots {
            Ddt::set_linear(out, start, end);
        } else {
            Ddt::set_linear(out, start, self.cfg.slots);
            Ddt::set_linear(out, 0, end - self.cfg.slots);
        }
    }

    /// Reads row `r` masked to its genuine live bits, OR-ing into `out`.
    fn read_row_into(&self, r: PhysReg, scratch: &mut [u64], out: &mut [u64]) {
        if !self.row_written[r.index()] {
            return;
        }
        let w = self.row_seq[r.index()];
        // Bits of the row can only legitimately name instructions in
        // [tail, W]; anything else is a recycled column.
        self.live_range_mask(self.tail_seq, w + 1, scratch);
        let row = self.row(r);
        for i in 0..self.words {
            out[i] |= row[i] & self.valid[i] & scratch[i];
        }
    }

    /// Inserts an instruction at the head of the circular buffer.
    ///
    /// If `dest` is present, its row is rewritten with the union of the
    /// source rows (masked by the valid vector) plus the instruction's own
    /// bit — the paper's `DDT[Target] = (DDT[Src1] OR DDT[Src2]) AND
    /// ValidVector` update, which takes one read cycle and one write cycle
    /// in hardware.
    ///
    /// # Panics
    ///
    /// Panics if the DDT is full (the host pipeline must stall rename).
    pub fn insert(&mut self, dest: Option<PhysReg>, srcs: [Option<PhysReg>; 2]) -> InstSlot {
        assert!(!self.is_full(), "DDT full: host must stall rename");
        let seq = self.head_seq;
        let slot = self.slot_of(seq);

        if let Some(d) = dest {
            let mut new_row = vec![0u64; self.words];
            let mut scratch = vec![0u64; self.words];
            for src in srcs.into_iter().flatten() {
                self.read_row_into(src, &mut scratch, &mut new_row);
            }
            // Every register is trivially dependent on its own producer.
            new_row[slot / 64] |= 1u64 << (slot % 64);
            let base = d.index() * self.words;
            self.rows[base..base + self.words].copy_from_slice(&new_row);
            self.row_seq[d.index()] = seq;
            self.row_written[d.index()] = true;
        }

        self.valid[slot / 64] |= 1u64 << (slot % 64);
        self.slot_seq[slot] = seq;
        self.head_seq = seq + 1;
        InstSlot(slot as u32)
    }

    /// Reads the union of the dependence chains of `regs` (the chain read
    /// the ARVI predictor performs for a branch's operand registers).
    pub fn chain(&self, regs: &[PhysReg]) -> ChainMask {
        let mut out = ChainMask::zeroed(self.cfg.slots);
        let mut scratch = vec![0u64; self.words];
        for &r in regs {
            self.read_row_into(r, &mut scratch, &mut out.words);
        }
        out
    }

    /// Commits the oldest in-flight instruction: clears its valid bit —
    /// immediately removing it from all future chain reads — and advances
    /// the tail pointer, freeing the entry for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the DDT is empty.
    pub fn commit_oldest(&mut self) -> InstSlot {
        assert!(!self.is_empty(), "DDT empty: nothing to commit");
        let slot = self.slot_of(self.tail_seq);
        self.valid[slot / 64] &= !(1u64 << (slot % 64));
        self.tail_seq += 1;
        InstSlot(slot as u32)
    }

    /// Rolls back to the state just after instruction `seq` was inserted,
    /// squashing all younger instructions — the paper's
    /// branch-misprediction recovery, performed identically to the ROB by
    /// moving the head pointer.
    ///
    /// # Panics
    ///
    /// Panics if `new_head_seq` is not within `[tail, head]`.
    pub fn rollback_to(&mut self, new_head_seq: u64) {
        assert!(
            new_head_seq >= self.tail_seq && new_head_seq <= self.head_seq,
            "rollback target {new_head_seq} outside [{}, {}]",
            self.tail_seq,
            self.head_seq
        );
        for seq in new_head_seq..self.head_seq {
            let slot = self.slot_of(seq);
            self.valid[slot / 64] &= !(1u64 << (slot % 64));
        }
        self.head_seq = new_head_seq;
    }

    /// Whether the occupant of `slot` is currently valid.
    pub fn is_slot_valid(&self, slot: InstSlot) -> bool {
        let i = slot.index();
        self.valid[i / 64] >> (i % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> PhysReg {
        PhysReg(i)
    }

    /// The worked example of the paper's Figure 1, using the program the
    /// RSE example (Figure 3) spells out:
    ///
    /// ```text
    /// 1: load p1 (p2)
    /// 2: add  p4 = p1 + p3
    /// 3: or   p5 = p4 | p1
    /// 4: sub  p6 = p5 - p4
    /// 5: add  p7 = p1 + 1
    /// 6: add  p8 = p4 + p7
    /// ```
    fn figure_1_ddt() -> (Ddt, Vec<InstSlot>) {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 9,
            phys_regs: 10,
        });
        let s = vec![
            ddt.insert(Some(p(1)), [Some(p(2)), None]),
            ddt.insert(Some(p(4)), [Some(p(1)), Some(p(3))]),
            ddt.insert(Some(p(5)), [Some(p(4)), Some(p(1))]),
            ddt.insert(Some(p(6)), [Some(p(5)), Some(p(4))]),
            ddt.insert(Some(p(7)), [Some(p(1)), None]),
            ddt.insert(Some(p(8)), [Some(p(4)), Some(p(7))]),
        ];
        (ddt, s)
    }

    #[test]
    fn paper_figure_1() {
        let (ddt, s) = figure_1_ddt();
        // "physical register p5 is data dependent on both instructions 1
        // and 2" (and trivially on its own instruction 3).
        let c5 = ddt.chain(&[p(5)]);
        assert_eq!(
            c5.slots().collect::<Vec<_>>(),
            vec![s[0], s[1], s[2]],
            "chain of p5"
        );
        // "The entry for physical register p8 now contains the data
        // dependence chain consisting of instructions 1, 2, 5, and 6."
        let c8 = ddt.chain(&[p(8)]);
        assert_eq!(
            c8.slots().collect::<Vec<_>>(),
            vec![s[0], s[1], s[4], s[5]],
            "chain of p8"
        );
    }

    #[test]
    fn paper_sizing_example() {
        // "the DDT would contain 5760 bits, or 730 bytes" including the
        // 80-bit valid vector.
        let ddt = Ddt::new(DdtConfig::alpha_21264());
        assert_eq!(ddt.storage_bits(), 5760 + 80);
        assert_eq!(ddt.storage_bits() / 8, 730);
    }

    #[test]
    fn commit_removes_from_chains_immediately() {
        let (mut ddt, s) = figure_1_ddt();
        ddt.commit_oldest(); // retire the load (instruction 1)
        let c8 = ddt.chain(&[p(8)]);
        assert!(!c8.contains(s[0]), "committed load must leave the chain");
        assert_eq!(c8.slots().collect::<Vec<_>>(), vec![s[1], s[4], s[5]]);
    }

    #[test]
    fn rollback_squashes_younger() {
        let (mut ddt, s) = figure_1_ddt();
        // Squash instructions 5 and 6 (seq 4,5); keep 1..4.
        ddt.rollback_to(4);
        assert_eq!(ddt.occupancy(), 4);
        let c8 = ddt.chain(&[p(8)]);
        // p8's row was written by a squashed instruction; its live range
        // still filters to surviving producers only.
        assert!(!c8.contains(s[5]));
        assert!(!c8.contains(s[4]));
        // p6's chain is intact.
        let c6 = ddt.chain(&[p(6)]);
        assert_eq!(c6.slots().collect::<Vec<_>>(), vec![s[0], s[1], s[2], s[3]]);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_stale_bits() {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 4,
            phys_regs: 8,
        });
        // Fill the ring: p1..p4 in slots 0..3.
        ddt.insert(Some(p(1)), [None, None]);
        ddt.insert(Some(p(2)), [Some(p(1)), None]);
        ddt.insert(Some(p(3)), [Some(p(2)), None]);
        ddt.insert(Some(p(4)), [Some(p(3)), None]);
        // Retire two, reuse their slots with unrelated instructions.
        ddt.commit_oldest();
        ddt.commit_oldest();
        let s4 = ddt.insert(Some(p(5)), [None, None]); // reuses slot 0
        let s5 = ddt.insert(Some(p(6)), [Some(p(5)), None]); // reuses slot 1
        assert_eq!((s4.index(), s5.index()), (0, 1));
        // p4's chain was {0,1,2,3}; slots 0 and 1 now hold unrelated
        // instructions and must NOT appear in it.
        let c4 = ddt.chain(&[p(4)]);
        assert_eq!(c4.len(), 2, "only slots 2 and 3 remain genuine");
        assert!(c4.contains(InstSlot(2)) && c4.contains(InstSlot(3)));
        // The new instructions' own chain is correct.
        let c6 = ddt.chain(&[p(6)]);
        assert_eq!(c6.slots().collect::<Vec<_>>(), vec![s4, s5]);
    }

    #[test]
    fn chain_of_unwritten_register_is_empty() {
        let ddt = Ddt::new(DdtConfig {
            slots: 4,
            phys_regs: 4,
        });
        assert!(ddt.chain(&[p(3)]).is_empty());
    }

    #[test]
    fn chain_union_of_two_operands() {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 8,
            phys_regs: 8,
        });
        let a = ddt.insert(Some(p(1)), [None, None]);
        let b = ddt.insert(Some(p(2)), [None, None]);
        let c = ddt.chain(&[p(1), p(2)]);
        assert_eq!(c.slots().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "DDT full")]
    fn insert_when_full_panics() {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 2,
            phys_regs: 4,
        });
        ddt.insert(None, [None, None]);
        ddt.insert(None, [None, None]);
        ddt.insert(None, [None, None]);
    }

    #[test]
    #[should_panic(expected = "DDT empty")]
    fn commit_when_empty_panics() {
        let mut ddt = Ddt::new(DdtConfig {
            slots: 2,
            phys_regs: 4,
        });
        ddt.commit_oldest();
    }

    #[test]
    fn long_running_wraparound_consistency() {
        // Stream a long dependent chain through a small ring, committing
        // as we go; the chain must always consist of exactly the live
        // window of producers.
        let cap = 6usize;
        let mut ddt = Ddt::new(DdtConfig {
            slots: cap,
            phys_regs: 64,
        });
        let mut live = 0usize;
        for i in 0..200u16 {
            if live == cap {
                ddt.commit_oldest();
                live -= 1;
            }
            let dest = p(i % 60);
            let src = if i == 0 { None } else { Some(p((i - 1) % 60)) };
            ddt.insert(Some(dest), [src, None]);
            live += 1;
            let chain = ddt.chain(&[dest]);
            assert_eq!(chain.len(), live, "at step {i}");
        }
    }

    #[test]
    fn valid_vector_gates_mid_chain_commits() {
        // Commit only the oldest while the chain spans it: the younger
        // reader must lose exactly that one bit.
        let mut ddt = Ddt::new(DdtConfig {
            slots: 8,
            phys_regs: 8,
        });
        ddt.insert(Some(p(1)), [None, None]);
        ddt.insert(Some(p(2)), [Some(p(1)), None]);
        ddt.insert(Some(p(3)), [Some(p(2)), None]);
        assert_eq!(ddt.chain(&[p(3)]).len(), 3);
        ddt.commit_oldest();
        assert_eq!(ddt.chain(&[p(3)]).len(), 2);
        ddt.commit_oldest();
        assert_eq!(ddt.chain(&[p(3)]).len(), 1);
    }

    #[test]
    fn wide_ddt_multiword_masks() {
        // Exercise the multi-word (slots > 64) paths.
        let cap = 200usize;
        let mut ddt = Ddt::new(DdtConfig {
            slots: cap,
            phys_regs: 128,
        });
        let mut last = None;
        for i in 0..150u16 {
            let dest = p(i % 120);
            ddt.insert(Some(dest), [last, None]);
            last = Some(dest);
        }
        let chain = ddt.chain(&[last.unwrap()]);
        assert_eq!(chain.len(), 150);
        // Slots span multiple words.
        assert!(chain.contains(InstSlot(0)) && chain.contains(InstSlot(149)));
    }

    #[test]
    fn chain_mask_helpers() {
        let (ddt, s) = figure_1_ddt();
        let c = ddt.chain(&[p(8)]);
        assert!(!c.is_empty());
        let mut other = ddt.chain(&[p(6)]);
        other.union_with(&c);
        assert!(other.contains(s[3]) && other.contains(s[5]));
        assert_eq!(other.words().len(), 1);
    }
}

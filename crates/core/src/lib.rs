//! # arvi-core
//!
//! The primary contribution of *"Dynamic Data Dependence Tracking and its
//! Application to Branch Prediction"* (Chen, Dropsho & Albonesi, HPCA
//! 2003), as a reusable library:
//!
//! * [`Ddt`] — the **Data Dependence Table**: a RAM with one row per
//!   physical register and one column per in-flight instruction,
//!   maintaining every in-flight dependence chain cycle-by-cycle at
//!   register rename (paper Section 2).
//! * [`Tracker`] — the DDT combined with the **Register Set Extractor**
//!   (RSE): given a branch, extracts the minimal set of registers whose
//!   values generate the branch's comparison inputs (Section 4.2), plus
//!   the Section 3 trailing-dependent counters.
//! * [`ShadowRegFile`] / [`ShadowMapTable`] — the 11-bit shadow value file
//!   and 3-bit logical-ID shadow map (Sections 4.3–4.4).
//! * [`Bvit`] — the Branch Value Information Table (Section 4.1).
//! * [`ArviPredictor`] — the complete ARVI value-based branch predictor.
//!
//! The structures are host-agnostic: `arvi-sim` drives them from a full
//! out-of-order pipeline model, while unit tests and examples drive them
//! directly (see the Figure 1 and Figure 3 worked-example tests in
//! [`ddt`] and [`tracker`]).

//!
//! ## Hot-path discipline
//!
//! The per-instruction operations — [`Ddt::insert`], [`Tracker::insert`],
//! [`ArviPredictor::predict`]/[`ArviPredictor::train`] — are steady-state
//! allocation-free: chain reads reuse internal [`ChainMask`] scratch (or a
//! caller-provided one via [`Ddt::chain_into`] /
//! [`Tracker::leaf_set_into`]), and extracted register sets use
//! small-inline [`RegList`] storage. `tests/alloc_steady_state.rs` pins
//! this property with a counting allocator.

pub mod arvi;
pub mod bvit;
pub mod ddt;
pub mod reglist;
pub mod shadow;
pub mod tracker;
pub mod types;

pub use arvi::{ArviConfig, ArviPrediction, ArviPredictor, CurrentValues, ValueSource};
pub use bvit::{Bvit, BvitConfig};
pub use ddt::{ChainMask, Ddt, DdtConfig};
pub use reglist::RegList;
pub use shadow::{ShadowMapTable, ShadowRegFile};
pub use tracker::{LeafSet, RenamedOp, Tracker, TrackerConfig};
pub use types::{BranchClass, InstSlot, PhysReg};

//! A small-inline register list.
//!
//! The RSE's extracted register sets are tiny in practice (the paper's
//! chains rarely expose more than a handful of leaf registers), but the
//! previous `Vec<PhysReg>` representation heap-allocated on every branch
//! prediction. [`RegList`] stores up to [`RegList::INLINE`] registers in
//! place and only spills to the heap beyond that, so the steady-state
//! prediction path is allocation-free.

use crate::types::PhysReg;

/// A register list with inline storage for small sets.
///
/// Dereferences to `[PhysReg]`, so slice methods (`iter`, `len`,
/// indexing, `contains`) work directly. Comparison against `Vec<PhysReg>`
/// and slices is supported for test ergonomics.
#[derive(Clone)]
pub struct RegList {
    inline: [PhysReg; RegList::INLINE],
    inline_len: u8,
    /// Non-empty only once the set outgrew the inline array; then it
    /// holds the whole list.
    spill: Vec<PhysReg>,
}

impl RegList {
    /// Registers held without heap allocation.
    pub const INLINE: usize = 12;

    /// Creates an empty list.
    pub fn new() -> RegList {
        RegList {
            inline: [PhysReg(0); RegList::INLINE],
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    /// Empties the list. Spill capacity, once acquired, is retained, so a
    /// reused `RegList` stops allocating after its high-water mark.
    pub fn clear(&mut self) {
        self.inline_len = 0;
        self.spill.clear();
    }

    /// Appends a register.
    pub fn push(&mut self, r: PhysReg) {
        if self.spill.is_empty() {
            if (self.inline_len as usize) < RegList::INLINE {
                self.inline[self.inline_len as usize] = r;
                self.inline_len += 1;
                return;
            }
            // First overflow: migrate the inline contents to the heap.
            self.spill.extend_from_slice(&self.inline);
        }
        self.spill.push(r);
    }

    /// The registers as a slice.
    pub fn as_slice(&self) -> &[PhysReg] {
        if self.spill.is_empty() {
            &self.inline[..self.inline_len as usize]
        } else {
            &self.spill
        }
    }
}

impl Default for RegList {
    fn default() -> RegList {
        RegList::new()
    }
}

impl std::ops::Deref for RegList {
    type Target = [PhysReg];

    fn deref(&self) -> &[PhysReg] {
        self.as_slice()
    }
}

impl std::fmt::Debug for RegList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for RegList {
    fn eq(&self, other: &RegList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for RegList {}

impl PartialEq<Vec<PhysReg>> for RegList {
    fn eq(&self, other: &Vec<PhysReg>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[PhysReg]> for RegList {
    fn eq(&self, other: &[PhysReg]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[PhysReg; N]> for RegList {
    fn eq(&self, other: &[PhysReg; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a RegList {
    type Item = &'a PhysReg;
    type IntoIter = std::slice::Iter<'a, PhysReg>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<PhysReg> for RegList {
    fn from_iter<I: IntoIterator<Item = PhysReg>>(iter: I) -> RegList {
        let mut list = RegList::new();
        for r in iter {
            list.push(r);
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> PhysReg {
        PhysReg(i)
    }

    #[test]
    fn inline_then_spill() {
        let mut l = RegList::new();
        assert!(l.is_empty());
        for i in 0..RegList::INLINE as u16 {
            l.push(p(i));
        }
        assert_eq!(l.len(), RegList::INLINE);
        assert!(l.spill.is_empty(), "inline capacity must not spill");
        l.push(p(99));
        assert_eq!(l.len(), RegList::INLINE + 1);
        assert_eq!(l[RegList::INLINE], p(99));
        // Order preserved across the migration.
        for i in 0..RegList::INLINE as u16 {
            assert_eq!(l[i as usize], p(i));
        }
    }

    #[test]
    fn clear_retains_spill_capacity() {
        let mut l = RegList::new();
        for i in 0..20u16 {
            l.push(p(i));
        }
        let cap = l.spill.capacity();
        assert!(cap >= 20);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.spill.capacity(), cap);
        l.push(p(1));
        assert_eq!(l, vec![p(1)]);
    }

    #[test]
    fn comparisons_and_iteration() {
        let l: RegList = [p(3), p(5)].into_iter().collect();
        assert_eq!(l, vec![p(3), p(5)]);
        assert_eq!(l, [p(3), p(5)]);
        assert_eq!(l.iter().copied().collect::<Vec<_>>(), vec![p(3), p(5)]);
        assert!(l.contains(&p(5)));
        assert_eq!(format!("{l:?}"), "[PhysReg(3), PhysReg(5)]");
    }
}

//! Shadow structures — paper Sections 4.3 and 4.4.
//!
//! To avoid additional register-file ports, ARVI keeps a *shadow register
//! file* holding only the low 11 bits of each physical register's value,
//! updated one cycle after the real register file. A *shadow map table*
//! records the low 3 bits of the logical register ID assigned to each
//! physical register at rename, used to form the register-set tag (logical
//! IDs are used "because the physical register assignments are likely to
//! vary between occurrences").

use crate::types::PhysReg;
use arvi_isa::Reg;

/// The shadow register file: per physical register, a truncated value and
/// a ready (written-back) bit.
///
/// For the paper's Alpha 21264 sizing (72 physical integer registers at 11
/// bits each) the value array is 792 bits.
#[derive(Debug, Clone)]
pub struct ShadowRegFile {
    values: Vec<u16>,
    ready: Vec<bool>,
    value_bits: u32,
}

impl ShadowRegFile {
    /// Creates a shadow file for `phys_regs` registers keeping
    /// `value_bits` low bits per value.
    ///
    /// # Panics
    ///
    /// Panics if `value_bits` is 0 or greater than 16.
    pub fn new(phys_regs: usize, value_bits: u32) -> ShadowRegFile {
        assert!(
            (1..=16).contains(&value_bits),
            "value width {value_bits} unsupported"
        );
        ShadowRegFile {
            values: vec![0; phys_regs],
            ready: vec![true; phys_regs],
            value_bits,
        }
    }

    /// Marks `r` as allocated to a new producer: not ready until the
    /// producer writes back. The stale previous value remains readable, as
    /// in hardware.
    pub fn alloc(&mut self, r: PhysReg) {
        self.ready[r.index()] = false;
    }

    /// Records a writeback: stores the truncated value and sets ready.
    pub fn write(&mut self, r: PhysReg, value: u64) {
        self.values[r.index()] = (value & ((1u64 << self.value_bits) - 1)) as u16;
        self.ready[r.index()] = true;
    }

    /// The truncated value currently held for `r` (stale if not ready).
    pub fn value(&self, r: PhysReg) -> u64 {
        self.values[r.index()] as u64
    }

    /// Whether `r`'s current producer has written back.
    pub fn is_ready(&self, r: PhysReg) -> bool {
        self.ready[r.index()]
    }

    /// Number of physical registers covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the file covers no registers.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Storage bits of the value array (the paper's 792-bit example).
    pub fn storage_bits(&self) -> usize {
        self.values.len() * self.value_bits as usize
    }
}

/// The shadow register map table: low 3 bits of the logical register
/// mapped to each physical register.
///
/// Structured in the paper as "a vector of 96 bits" for 32 logical
/// registers — 3 bits per *architectural* mapping; we keep the
/// per-physical-register mirror the tag hardware reads.
#[derive(Debug, Clone)]
pub struct ShadowMapTable {
    logical3: Vec<u8>,
    id_bits: u32,
}

impl ShadowMapTable {
    /// Creates a map table for `phys_regs` registers keeping `id_bits`
    /// (3 in the paper) of each logical ID.
    ///
    /// # Panics
    ///
    /// Panics if `id_bits` is 0 or greater than 5.
    pub fn new(phys_regs: usize, id_bits: u32) -> ShadowMapTable {
        assert!((1..=5).contains(&id_bits), "id width {id_bits} unsupported");
        ShadowMapTable {
            logical3: vec![0; phys_regs],
            id_bits,
        }
    }

    /// Records that `phys` was allocated to logical register `logical`.
    pub fn set(&mut self, phys: PhysReg, logical: Reg) {
        self.logical3[phys.index()] = logical.low_bits(self.id_bits) as u8;
    }

    /// The truncated logical ID of `phys`.
    pub fn id(&self, phys: PhysReg) -> u8 {
        self.logical3[phys.index()]
    }

    /// Sums the truncated logical IDs of a register set into a `sum_bits`-
    /// wide tag (the paper's 3-bit adder tree, Section 4.4).
    pub fn id_sum(&self, regs: &[PhysReg], sum_bits: u32) -> u8 {
        let mask = (1u32 << sum_bits) - 1;
        let sum: u32 = regs.iter().map(|r| self.logical3[r.index()] as u32).sum();
        (sum & mask) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Reg;

    #[test]
    fn ready_lifecycle() {
        let mut f = ShadowRegFile::new(8, 11);
        let r = PhysReg(3);
        assert!(f.is_ready(r)); // never allocated: architecturally live
        f.alloc(r);
        assert!(!f.is_ready(r));
        f.write(r, 0xFFFF);
        assert!(f.is_ready(r));
        assert_eq!(f.value(r), 0x7FF); // truncated to 11 bits
    }

    #[test]
    fn stale_value_remains_readable() {
        let mut f = ShadowRegFile::new(8, 11);
        let r = PhysReg(1);
        f.write(r, 42);
        f.alloc(r);
        assert!(!f.is_ready(r));
        assert_eq!(f.value(r), 42); // hardware reads whatever is there
    }

    #[test]
    fn paper_sizing_example() {
        // "A shadow register file for an Alpha 21264 with 72 physical
        // integer registers would require 792 bits."
        let f = ShadowRegFile::new(72, 11);
        assert_eq!(f.storage_bits(), 792);
    }

    #[test]
    fn map_table_truncates_ids() {
        let mut m = ShadowMapTable::new(8, 3);
        m.set(PhysReg(0), Reg::new(13)); // 0b1101 -> 0b101
        assert_eq!(m.id(PhysReg(0)), 5);
    }

    #[test]
    fn id_sum_wraps_to_three_bits() {
        let mut m = ShadowMapTable::new(8, 3);
        m.set(PhysReg(0), Reg::new(7));
        m.set(PhysReg(1), Reg::new(6));
        // 7 + 6 = 13 -> 13 & 7 = 5
        assert_eq!(m.id_sum(&[PhysReg(0), PhysReg(1)], 3), 5);
    }

    #[test]
    fn id_sum_of_empty_set_is_zero() {
        let m = ShadowMapTable::new(4, 3);
        assert_eq!(m.id_sum(&[], 3), 0);
    }
}

//! The Register Set Extractor (RSE) and the combined dependence tracker —
//! paper Section 4.2.
//!
//! The RSE is a RAM with the same dimensions as the DDT, but each location
//! holds two bits encoding whether the instruction in that column uses the
//! register as a *source* (`S`) or as its *target* (`T`). Loads set
//! neither: "the ARVI predictor treats load instructions as termination
//! points in the chain".
//!
//! Given a branch, the DDT rows of its operand registers form an enable bit
//! vector over instruction entries; the RSE consolidates, per register,
//! *source-marked and not target-marked* among the enabled entries. The
//! result is the minimal **register set**: the live inputs that generate
//! the value(s) compared by the branch. Registers produced by in-flight
//! ALU instructions in the chain are redundant (their values are computed
//! from other chain inputs) and are excluded by the `T` mark.
//!
//! One refinement over the paper's figure (design decision D1 in
//! DESIGN.md): the branch's own source registers are also S-marked, which
//! is equivalent to including the branch's own about-to-be-inserted RSE
//! column. Without it, a branch reading a load result *directly* (with no
//! intermediate ALU op — e.g. `beq t1, key` after `ld t1, 0(ptr)`) would
//! extract an empty set.

use crate::ddt::{ChainMask, Ddt, DdtConfig};
use crate::reglist::RegList;
use crate::types::{InstSlot, PhysReg};

/// Shape parameters for a [`Tracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerConfig {
    /// DDT dimensions (shared by the RSE).
    pub ddt: DdtConfig,
    /// Maintain per-instruction dependent counts (the Section 3
    /// "dynamic scheduling" extension: a small counter per entry counting
    /// trailing data-dependent instructions). Off by default; enabled by
    /// the `arvi-apps` crate.
    pub track_dependents: bool,
}

/// Operand information for one renamed, in-flight instruction (one RSE
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenamedOp {
    /// Destination physical register, if the instruction produces a value.
    pub dest: Option<PhysReg>,
    /// Source physical registers.
    pub srcs: [Option<PhysReg>; 2],
    /// Whether the instruction is a memory load (chain terminator).
    pub is_load: bool,
}

impl RenamedOp {
    /// A convenience constructor for an ALU-class operation.
    pub fn alu(dest: PhysReg, srcs: [Option<PhysReg>; 2]) -> RenamedOp {
        RenamedOp {
            dest: Some(dest),
            srcs,
            is_load: false,
        }
    }

    /// A convenience constructor for a load.
    pub fn load(dest: PhysReg, addr_base: Option<PhysReg>) -> RenamedOp {
        RenamedOp {
            dest: Some(dest),
            srcs: [addr_base, None],
            is_load: true,
        }
    }
}

/// The register set extracted for a branch, plus chain metadata.
///
/// `regs` uses small-inline storage ([`RegList`]): typical sets live
/// entirely on the stack, and a `LeafSet` reused via
/// [`Tracker::leaf_set_into`] is allocation-free in steady state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeafSet {
    /// The extracted registers (sources of the chain not produced within
    /// it), in ascending physical-register order.
    pub regs: RegList,
    /// Number of instructions in the dependence chain.
    pub chain_len: usize,
    /// Sequence number of the oldest chain instruction, if any.
    pub oldest_seq: Option<u64>,
}

impl LeafSet {
    /// The paper's dependence-chain *depth* (Section 4.5): the maximum
    /// number of instructions spanned by the chain, measured from the
    /// branch back to the furthest chain instruction, saturated to
    /// `bits` bits (5 in the paper).
    pub fn depth_key(&self, branch_seq: u64, bits: u32) -> u8 {
        let max = (1u64 << bits) - 1;
        match self.oldest_seq {
            Some(oldest) => branch_seq.saturating_sub(oldest).min(max) as u8,
            None => 0,
        }
    }
}

/// The combined DDT + RSE dependence tracker: the "dependence tracking
/// hardware" the ARVI predictor builds on.
///
/// # Example
///
/// ```
/// use arvi_core::{Tracker, TrackerConfig, DdtConfig, RenamedOp, PhysReg};
///
/// let mut t = Tracker::new(TrackerConfig {
///     ddt: DdtConfig { slots: 16, phys_regs: 16 },
///     track_dependents: false,
/// });
/// let p = |i| PhysReg(i);
/// t.insert(&RenamedOp::load(p(1), Some(p(2))));   // p1 = mem[p2]
/// t.insert(&RenamedOp::alu(p(4), [Some(p(1)), Some(p(3))])); // p4 = p1+p3
/// let set = t.leaf_set([Some(p(4)), None]);
/// assert_eq!(set.regs, vec![p(1), p(3)]);
/// ```
#[derive(Debug, Clone)]
pub struct Tracker {
    ddt: Ddt,
    info: Vec<RenamedOp>,
    dependents: Vec<u32>,
    track_dependents: bool,
    /// Scratch bitmasks over physical registers for S and T marks.
    s_mask: Vec<u64>,
    t_mask: Vec<u64>,
    /// Reusable chain mask for leaf-set extraction and dependent
    /// counting — keeps the per-instruction path allocation-free.
    chain_scratch: ChainMask,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new(cfg: TrackerConfig) -> Tracker {
        let pr_words = cfg.ddt.phys_regs.div_ceil(64);
        Tracker {
            ddt: Ddt::new(cfg.ddt),
            info: vec![
                RenamedOp {
                    dest: None,
                    srcs: [None, None],
                    is_load: false,
                };
                cfg.ddt.slots
            ],
            dependents: vec![
                0;
                if cfg.track_dependents {
                    cfg.ddt.slots
                } else {
                    0
                }
            ],
            track_dependents: cfg.track_dependents,
            s_mask: vec![0; pr_words],
            t_mask: vec![0; pr_words],
            chain_scratch: ChainMask::zeroed(cfg.ddt.slots),
        }
    }

    /// The underlying DDT.
    pub fn ddt(&self) -> &Ddt {
        &self.ddt
    }

    /// Sequence number the next inserted instruction will receive.
    pub fn next_seq(&self) -> u64 {
        self.ddt.next_seq()
    }

    /// In-flight instruction count.
    pub fn occupancy(&self) -> usize {
        self.ddt.occupancy()
    }

    /// Whether the tracker can accept another instruction.
    pub fn is_full(&self) -> bool {
        self.ddt.is_full()
    }

    /// Inserts a renamed instruction into the DDT and RSE.
    ///
    /// # Panics
    ///
    /// Panics if the tracker is full.
    pub fn insert(&mut self, op: &RenamedOp) -> InstSlot {
        if self.track_dependents {
            // Section 3 extension: bump the trailing-dependent counter of
            // every instruction this one depends on.
            let (srcs, n) = Tracker::pack_operands(op.srcs);
            self.ddt.chain_into(&srcs[..n], &mut self.chain_scratch);
            for s in self.chain_scratch.slots() {
                self.dependents[s.index()] += 1;
            }
        }
        let slot = self.ddt.insert(op.dest, op.srcs);
        self.info[slot.index()] = *op;
        if self.track_dependents {
            self.dependents[slot.index()] = 0;
        }
        slot
    }

    /// Reads the dependence chain of a register set (DDT read).
    pub fn chain(&self, regs: &[PhysReg]) -> ChainMask {
        self.ddt.chain(regs)
    }

    /// Operand information of the (valid) occupant of `slot`.
    pub fn slot_info(&self, slot: InstSlot) -> &RenamedOp {
        &self.info[slot.index()]
    }

    /// Number of in-flight instructions data-dependent on the occupant of
    /// `slot` (requires `track_dependents`).
    ///
    /// # Panics
    ///
    /// Panics if dependent tracking is disabled.
    pub fn dependents(&self, slot: InstSlot) -> u32 {
        assert!(
            self.track_dependents,
            "dependent tracking disabled in TrackerConfig"
        );
        self.dependents[slot.index()]
    }

    /// Packs an operand pair into a dense array, returning the count.
    #[inline]
    pub fn pack_operands(srcs: [Option<PhysReg>; 2]) -> ([PhysReg; 2], usize) {
        let mut packed = [PhysReg(0); 2];
        let mut n = 0;
        for src in srcs.into_iter().flatten() {
            packed[n] = src;
            n += 1;
        }
        (packed, n)
    }

    /// Extracts the branch's register set (the RSE operation, Figure 3).
    ///
    /// `branch_srcs` are the branch's own operand physical registers. The
    /// returned set contains every register that is a source of the
    /// branch's dependence chain (loads excluded as terminators) but not
    /// produced within it.
    ///
    /// Allocating wrapper over [`Tracker::leaf_set_into`].
    pub fn leaf_set(&mut self, branch_srcs: [Option<PhysReg>; 2]) -> LeafSet {
        let mut out = LeafSet::default();
        self.leaf_set_into(branch_srcs, &mut out);
        out
    }

    /// In-place variant of [`Tracker::leaf_set`]: extracts into `out`,
    /// reusing its storage. Steady-state allocation-free (the register
    /// list only touches the heap past [`RegList::INLINE`] entries, and
    /// then retains the capacity).
    pub fn leaf_set_into(&mut self, branch_srcs: [Option<PhysReg>; 2], out: &mut LeafSet) {
        self.s_mask.fill(0);
        self.t_mask.fill(0);

        let (operands, n_ops) = Tracker::pack_operands(branch_srcs);
        let operands = &operands[..n_ops];
        self.ddt.chain_into(operands, &mut self.chain_scratch);

        let mut chain_len = 0usize;
        let mut oldest_seq: Option<u64> = None;
        for slot in self.chain_scratch.slots() {
            chain_len += 1;
            let seq = self.ddt.slot_seq(slot);
            oldest_seq = Some(oldest_seq.map_or(seq, |o: u64| o.min(seq)));
            let info = &self.info[slot.index()];
            if info.is_load {
                // "we do not set the source and target registers for loads"
                continue;
            }
            for src in info.srcs.iter().flatten() {
                self.s_mask[src.index() / 64] |= 1u64 << (src.index() % 64);
            }
            if let Some(d) = info.dest {
                self.t_mask[d.index() / 64] |= 1u64 << (d.index() % 64);
            }
        }

        // D1: the branch's own sources participate as S marks.
        for src in operands {
            self.s_mask[src.index() / 64] |= 1u64 << (src.index() % 64);
        }

        // Consolidate: register is in the set iff S and not T.
        out.regs.clear();
        for (wi, (&s, &t)) in self.s_mask.iter().zip(&self.t_mask).enumerate() {
            let mut bits = s & !t;
            while bits != 0 {
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                out.regs.push(PhysReg((wi * 64) as u16 + b as u16));
            }
        }
        out.chain_len = chain_len;
        out.oldest_seq = oldest_seq;
    }

    /// Commits the oldest in-flight instruction.
    ///
    /// # Panics
    ///
    /// Panics if the tracker is empty.
    pub fn commit_oldest(&mut self) -> InstSlot {
        self.ddt.commit_oldest()
    }

    /// Rolls back to `new_head_seq`, squashing younger instructions.
    pub fn rollback_to(&mut self, new_head_seq: u64) {
        self.ddt.rollback_to(new_head_seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> PhysReg {
        PhysReg(i)
    }

    fn cfg(slots: usize, phys_regs: usize) -> TrackerConfig {
        TrackerConfig {
            ddt: DdtConfig { slots, phys_regs },
            track_dependents: false,
        }
    }

    /// The full worked example of the paper's Figure 3:
    ///
    /// ```text
    /// 1: load p1 (p2)         <- loads mark nothing in the RSE
    /// 2: add  p4 = p1 + p3
    /// 3: or   p5 = p4 | p1
    /// 4: sub  p6 = p5 - p4
    /// 5: add  p7 = p1 + 1
    /// 6: add  p8 = p4 + p7
    /// 7: beq  p8, 0
    /// ```
    ///
    /// Expected register set: {p1, p3}. "Notice that p4 and p7 are
    /// eliminated since their values are determined from p1 and p3. The
    /// register p1 is included because with ARVI loads are terminators of
    /// the DD chain. The register p3 is in the set because its value is
    /// currently available."
    #[test]
    fn paper_figure_3() {
        let mut t = Tracker::new(cfg(9, 10));
        t.insert(&RenamedOp::load(p(1), Some(p(2))));
        t.insert(&RenamedOp::alu(p(4), [Some(p(1)), Some(p(3))]));
        t.insert(&RenamedOp::alu(p(5), [Some(p(4)), Some(p(1))]));
        t.insert(&RenamedOp::alu(p(6), [Some(p(5)), Some(p(4))]));
        t.insert(&RenamedOp::alu(p(7), [Some(p(1)), None]));
        t.insert(&RenamedOp::alu(p(8), [Some(p(4)), Some(p(7))]));
        let set = t.leaf_set([Some(p(8)), None]);
        assert_eq!(set.regs, vec![p(1), p(3)]);
        assert_eq!(set.chain_len, 4); // instructions 1, 2, 5, 6
        assert_eq!(set.oldest_seq, Some(0));
        // Depth key for the branch at seq 6 spans back to the load at 0.
        assert_eq!(set.depth_key(6, 5), 6);
    }

    #[test]
    fn direct_load_consumer_includes_load_target() {
        // beq t1, key  directly after  ld t1, 0(ptr): without D1 the set
        // would be empty; with it, {t1, key}.
        let mut t = Tracker::new(cfg(8, 16));
        let (ptr, t1, key) = (p(1), p(2), p(3));
        t.insert(&RenamedOp::load(t1, Some(ptr)));
        let set = t.leaf_set([Some(t1), Some(key)]);
        assert_eq!(set.regs, vec![t1, key]);
        assert_eq!(set.chain_len, 1);
    }

    #[test]
    fn empty_chain_yields_branch_operands() {
        // All producers committed: the set is the branch's own operands —
        // whose values are available (a calculated branch keyed by the
        // actual comparison inputs).
        let mut t = Tracker::new(cfg(8, 16));
        t.insert(&RenamedOp::alu(p(1), [None, None]));
        t.commit_oldest();
        let set = t.leaf_set([Some(p(1)), Some(p(2))]);
        assert_eq!(set.regs, vec![p(1), p(2)]);
        assert_eq!(set.chain_len, 0);
        assert_eq!(set.oldest_seq, None);
        assert_eq!(set.depth_key(10, 5), 0);
    }

    #[test]
    fn chain_internal_registers_are_excluded() {
        // p3 = f(p1); p4 = g(p3); branch on p4: p3 is produced within the
        // chain, so only p1 remains.
        let mut t = Tracker::new(cfg(8, 16));
        t.insert(&RenamedOp::alu(p(3), [Some(p(1)), None]));
        t.insert(&RenamedOp::alu(p(4), [Some(p(3)), None]));
        let set = t.leaf_set([Some(p(4)), None]);
        assert_eq!(set.regs, vec![p(1)]);
    }

    #[test]
    fn loads_terminate_the_chain_walk() {
        // p2 = mem[p1]; p3 = p2 + p9; branch on p3.
        // The load contributes no S mark for p1: the address register is
        // beyond the termination point. Set = {p2, p9}.
        let mut t = Tracker::new(cfg(8, 16));
        t.insert(&RenamedOp::load(p(2), Some(p(1))));
        t.insert(&RenamedOp::alu(p(3), [Some(p(2)), Some(p(9))]));
        let set = t.leaf_set([Some(p(3)), None]);
        assert_eq!(set.regs, vec![p(2), p(9)]);
    }

    #[test]
    fn depth_key_saturates() {
        let mut t = Tracker::new(cfg(64, 16));
        t.insert(&RenamedOp::alu(p(1), [None, None]));
        for _ in 0..40 {
            t.insert(&RenamedOp::alu(p(1), [Some(p(1)), None]));
        }
        let set = t.leaf_set([Some(p(1)), None]);
        // Branch would be seq 41; oldest chain seq is 0; 5-bit key
        // saturates at 31.
        assert_eq!(set.depth_key(41, 5), 31);
    }

    #[test]
    fn dependent_counters_count_trailing_chain_members() {
        let mut t = Tracker::new(TrackerConfig {
            ddt: DdtConfig {
                slots: 16,
                phys_regs: 16,
            },
            track_dependents: true,
        });
        let s0 = t.insert(&RenamedOp::alu(p(1), [None, None]));
        let s1 = t.insert(&RenamedOp::alu(p(2), [Some(p(1)), None]));
        let s2 = t.insert(&RenamedOp::alu(p(3), [Some(p(2)), None]));
        // p1's producer has two dependents (s1's and s2's instructions);
        // s1 has one; the youngest has none.
        assert_eq!(t.dependents(s0), 2);
        assert_eq!(t.dependents(s1), 1);
        assert_eq!(t.dependents(s2), 0);
    }

    #[test]
    #[should_panic(expected = "dependent tracking disabled")]
    fn dependents_require_config() {
        let t = Tracker::new(cfg(8, 8));
        let _ = t.dependents(InstSlot(0));
    }

    #[test]
    fn commit_shrinks_leaf_chain() {
        let mut t = Tracker::new(cfg(8, 16));
        t.insert(&RenamedOp::alu(p(1), [None, None]));
        t.insert(&RenamedOp::alu(p(2), [Some(p(1)), None]));
        let before = t.leaf_set([Some(p(2)), None]);
        assert_eq!(before.chain_len, 2);
        t.commit_oldest();
        let after = t.leaf_set([Some(p(2)), None]);
        assert_eq!(after.chain_len, 1);
        // p1 is still a source of the in-flight producer of p2, and its
        // own producer has committed: it stays in the set, now available.
        assert_eq!(after.regs, vec![p(1)]);
    }

    #[test]
    fn rollback_restores_earlier_sets() {
        let mut t = Tracker::new(cfg(8, 16));
        t.insert(&RenamedOp::alu(p(1), [None, None]));
        let seq_after_first = t.next_seq();
        t.insert(&RenamedOp::alu(p(2), [Some(p(1)), None]));
        t.rollback_to(seq_after_first);
        let set = t.leaf_set([Some(p(1)), None]);
        assert_eq!(set.chain_len, 1);
        // p1's in-flight producer takes no register inputs, so the chain
        // has no leaf values and p1 itself is target-marked.
        assert_eq!(set.regs, Vec::<PhysReg>::new());
        // p2's row was written by the squashed instruction. Hardware does
        // not roll row contents back — the squashed column is merely
        // invalidated — so the row still shows the surviving older part of
        // the chain. (Rename recovery frees p2, so no real lookup occurs
        // until a new producer rewrites the row.)
        let set2 = t.leaf_set([Some(p(2)), None]);
        assert_eq!(set2.chain_len, 1);
        // Re-allocating p2 to a fresh producer rewrites the row cleanly.
        t.insert(&RenamedOp::alu(p(2), [None, None]));
        let set3 = t.leaf_set([Some(p(2)), None]);
        assert_eq!(set3.chain_len, 1);
        assert_eq!(set3.oldest_seq, Some(seq_after_first));
    }
}

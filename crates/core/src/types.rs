//! Identifier types shared by the dependence-tracking structures.

use std::fmt;

/// A physical register identifier.
///
/// The DDT is a RAM with one row per *physical* register (paper Section 2.1);
/// the rename stage of the host pipeline assigns these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u16);

impl PhysReg {
    /// The row index of this register.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A DDT instruction-entry (column) index.
///
/// Instruction entries are allocated in circular FIFO fashion with head and
/// tail pointers (paper Section 2.1); a slot is the physical column, reused
/// once its previous occupant commits and the ring wraps around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstSlot(pub u32);

impl InstSlot {
    /// The column index of this slot.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// The paper's two branch classes (Section 4.1).
///
/// * `Calculated` — every register value the branch outcome depends on is
///   available at prediction time; "the input state precisely defines the
///   outcome".
/// * `Load` — the dependence chain has values that depend on outstanding
///   load instructions, so the machine state does not precisely define the
///   outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// All leaf register values available: deterministic signature.
    Calculated,
    /// At least one leaf value pends on an outstanding load.
    Load,
}

impl fmt::Display for BranchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BranchClass::Calculated => f.write_str("calculated"),
            BranchClass::Load => f.write_str("load"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PhysReg(5).to_string(), "p5");
        assert_eq!(InstSlot(3).to_string(), "slot3");
        assert_eq!(BranchClass::Calculated.to_string(), "calculated");
        assert_eq!(BranchClass::Load.to_string(), "load");
    }

    #[test]
    fn indices() {
        assert_eq!(PhysReg(9).index(), 9);
        assert_eq!(InstSlot(7).index(), 7);
    }
}

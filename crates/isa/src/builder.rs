//! A small assembler: builds [`Program`]s with labels and forward
//! references.

use crate::inst::{AluOp, Cond, Inst};
use crate::program::Program;
use crate::reg::Reg;

/// An abstract code location usable as a branch/jump target before it is
/// bound to a concrete instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental builder for [`Program`]s.
///
/// Supports backward targets via [`here`](ProgramBuilder::here) and forward
/// targets via [`label`](ProgramBuilder::label) / [`bind`](ProgramBuilder::bind);
/// all references are resolved by [`build`](ProgramBuilder::build).
///
/// # Example
///
/// ```
/// use arvi_isa::{ProgramBuilder, AluOp, Cond, regs};
///
/// let mut b = ProgramBuilder::new();
/// let done = b.label();
/// b.li(regs::T0, 3);
/// let head = b.here();
/// b.branch_to_label(Cond::Eq, regs::T0, regs::ZERO, done);
/// b.alu_imm(AluOp::Sub, regs::T0, regs::T0, 1);
/// b.jump(head);
/// b.bind(done);
/// b.halt();
/// let p = b.build();
/// assert_eq!(p.len(), 5);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    /// Resolved index for each label, if bound.
    labels: Vec<Option<u32>>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, Label)>,
    init_mem: Vec<(u64, u64)>,
    entry: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// The index the *next* emitted instruction will occupy. Useful as a
    /// backward branch target.
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Allocates an unbound label for a forward reference.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let position = self.here();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(position);
    }

    /// Sets the entry point to the current position.
    pub fn set_entry_here(&mut self) {
        self.entry = self.here();
    }

    /// Seeds a 64-bit word in the initial memory image.
    pub fn data(&mut self, addr: u64, value: u64) {
        self.init_mem.push((addr, value));
    }

    fn push(&mut self, inst: Inst) -> u32 {
        self.insts.push(inst);
        (self.insts.len() - 1) as u32
    }

    /// Emits a register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        self.push(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// Emits a register-immediate ALU operation.
    pub fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> u32 {
        self.push(Inst::AluImm { op, rd, rs1, imm })
    }

    /// Emits `rd = imm` (encoded as `add rd, r0, imm`).
    pub fn li(&mut self, rd: Reg, imm: i64) -> u32 {
        self.alu_imm(AluOp::Add, rd, Reg::ZERO, imm)
    }

    /// Emits `rd = rs` (encoded as `add rd, rs, r0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> u32 {
        self.alu(AluOp::Add, rd, rs, Reg::ZERO)
    }

    /// Emits a load: `rd = mem[base + offset]`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64) -> u32 {
        self.push(Inst::Load { rd, base, offset })
    }

    /// Emits a store: `mem[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) -> u32 {
        self.push(Inst::Store { src, base, offset })
    }

    /// Emits a conditional branch to a known (backward) index.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, target: u32) -> u32 {
        self.push(Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        })
    }

    /// Emits a conditional branch to a (possibly unbound) label.
    pub fn branch_to_label(&mut self, cond: Cond, rs1: Reg, rs2: Reg, label: Label) -> u32 {
        let idx = self.push(Inst::Branch {
            cond,
            rs1,
            rs2,
            target: u32::MAX,
        });
        self.fixups.push((idx as usize, label));
        idx
    }

    /// Emits an unconditional jump to a known (backward) index.
    pub fn jump(&mut self, target: u32) -> u32 {
        self.push(Inst::Jump { target, link: None })
    }

    /// Emits an unconditional jump to a (possibly unbound) label.
    pub fn jump_to_label(&mut self, label: Label) -> u32 {
        let idx = self.push(Inst::Jump {
            target: u32::MAX,
            link: None,
        });
        self.fixups.push((idx as usize, label));
        idx
    }

    /// Emits a call (jump-and-link) to a label.
    pub fn call_label(&mut self, label: Label, link: Reg) -> u32 {
        let idx = self.push(Inst::Jump {
            target: u32::MAX,
            link: Some(link),
        });
        self.fixups.push((idx as usize, label));
        idx
    }

    /// Emits an indirect jump through `rs` (return / dispatch).
    pub fn jump_reg(&mut self, rs: Reg) -> u32 {
        self.push(Inst::JumpReg { rs })
    }

    /// Emits a halt.
    pub fn halt(&mut self) -> u32 {
        self.push(Inst::Halt)
    }

    /// Resolves all label references and produces the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(mut self) -> Program {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let resolved = self.labels[label.0]
                .unwrap_or_else(|| panic!("label {label:?} referenced but never bound"));
            match &mut self.insts[idx] {
                Inst::Branch { target, .. } | Inst::Jump { target, .. } => *target = resolved,
                other => unreachable!("fixup on non-control instruction {other:?}"),
            }
        }
        Program::new(self.insts, self.entry, self.init_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn forward_and_backward_references_resolve() {
        let mut b = ProgramBuilder::new();
        let done = b.label();
        b.li(T0, 2);
        let head = b.here();
        b.branch_to_label(Cond::Eq, T0, ZERO, done);
        b.alu_imm(AluOp::Sub, T0, T0, 1);
        b.jump(head);
        b.bind(done);
        b.halt();
        let p = b.build();
        match p[1] {
            Inst::Branch { target, .. } => assert_eq!(target, 4),
            ref other => panic!("expected branch, got {other}"),
        }
        match p[3] {
            Inst::Jump { target, .. } => assert_eq!(target, 1),
            ref other => panic!("expected jump, got {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jump_to_label(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn data_and_entry() {
        let mut b = ProgramBuilder::new();
        b.data(0x100, 7);
        b.halt();
        b.set_entry_here();
        b.halt();
        let p = b.build();
        assert_eq!(p.entry(), 1);
        assert_eq!(p.init_mem(), &[(0x100, 7)]);
    }

    #[test]
    fn pseudo_ops_encode_as_expected() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 5);
        b.mv(T1, T0);
        b.halt();
        let p = b.build();
        assert!(matches!(
            p[0],
            Inst::AluImm {
                op: AluOp::Add,
                imm: 5,
                ..
            }
        ));
        assert!(matches!(
            p[1],
            Inst::Alu {
                op: AluOp::Add,
                rs2: Reg::ZERO,
                ..
            }
        ));
    }

    #[test]
    fn call_links_through_label() {
        let mut b = ProgramBuilder::new();
        let f = b.label();
        b.call_label(f, RA);
        b.halt();
        b.bind(f);
        b.jump_reg(RA);
        let p = b.build();
        assert!(matches!(
            p[0],
            Inst::Jump {
                target: 2,
                link: Some(RA)
            }
        ));
    }
}

//! Architectural emulator: functional execution producing the committed
//! dynamic instruction stream.

use crate::inst::Inst;
use crate::mem::Memory;
use crate::program::Program;
use crate::reg::{Reg, NUM_LOGICAL_REGS};
use crate::trace::{BranchInfo, DynInst};
use std::collections::HashMap;
use std::fmt;

/// Maximum load-back hoist distance tracked by the oracle (dynamic
/// instructions). Distances saturate here; the timing simulator never needs
/// more than the in-flight window.
pub const MAX_HOIST: u32 = 512;

/// Errors surfaced by [`Emulator::try_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuError {
    /// The program counter left the program text.
    PcOutOfRange {
        /// The offending instruction index.
        pc: u32,
    },
    /// The program executed a halt instruction.
    Halted,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            EmuError::Halted => write!(f, "program halted"),
        }
    }
}

impl std::error::Error for EmuError {}

/// Functional emulator for [`Program`]s.
///
/// Each [`step`](Emulator::step) retires one instruction and returns its
/// [`DynInst`] record. The emulator also computes the *load-back oracle*
/// (see [`DynInst::hoist`]): for every load, how many dynamic instructions
/// earlier it could have executed while respecting its address-register
/// producer and the most recent older store to the same word.
///
/// The emulator implements `Iterator<Item = DynInst>`; iteration ends at a
/// halt instruction or when the PC escapes the program.
pub struct Emulator {
    program: Program,
    regs: [u64; NUM_LOGICAL_REGS],
    mem: Memory,
    pc: u32,
    seq: u64,
    halted: bool,
    /// Dynamic sequence number of the most recent writer of each logical
    /// register (for the load-back oracle). `None` = program entry value.
    reg_writer: [Option<u64>; NUM_LOGICAL_REGS],
    /// Most recent store sequence number per 8-byte-aligned address.
    store_writer: HashMap<u64, u64>,
}

impl Emulator {
    /// Creates an emulator with the program's initial memory image loaded
    /// and all registers zero.
    pub fn new(program: Program) -> Emulator {
        let mut mem = Memory::new();
        mem.load_image(program.init_mem());
        let pc = program.entry();
        Emulator {
            program,
            regs: [0; NUM_LOGICAL_REGS],
            mem,
            pc,
            seq: 0,
            halted: false,
            reg_writer: [None; NUM_LOGICAL_REGS],
            store_writer: HashMap::new(),
        }
    }

    /// Current architectural value of a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Sets a register (used by tests and workload warm-starts). Writes to
    /// the zero register are ignored.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// The data memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the data memory (workload seeding).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.seq
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    #[inline]
    fn read_reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Hoist distance for a load at sequence `seq`: the number of dynamic
    /// instructions between the load and its latest producer (address
    /// register write or aliasing older store), minus one — i.e. how far
    /// back the load could move. Saturates at [`MAX_HOIST`].
    fn hoist_distance(&self, base: Reg, addr: u64) -> u32 {
        let mut latest_dep: Option<u64> = None;
        if !base.is_zero() {
            latest_dep = self.reg_writer[base.index()];
        }
        if let Some(&s) = self.store_writer.get(&(addr & !7)) {
            latest_dep = Some(latest_dep.map_or(s, |d| d.max(s)));
        }
        let dist = match latest_dep {
            // Producer at sequence d; load at self.seq. Instructions between
            // them: seq - d - 1; the load can move back that far.
            Some(d) => self.seq - d - 1,
            // No tracked producer: the load could have moved to the top.
            None => self.seq,
        };
        dist.min(MAX_HOIST as u64) as u32
    }

    /// Retires one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Halted`] once a halt has executed and
    /// [`EmuError::PcOutOfRange`] if control flow escapes the program text.
    pub fn try_step(&mut self) -> Result<DynInst, EmuError> {
        if self.halted {
            return Err(EmuError::Halted);
        }
        let pc = self.pc;
        let inst = *self.program.get(pc).ok_or(EmuError::PcOutOfRange { pc })?;

        let kind = inst.kind();
        let srcs_raw = inst.srcs();
        // The zero register is not renamed and carries no dependence.
        let srcs = [
            srcs_raw[0].filter(|r| !r.is_zero()),
            srcs_raw[1].filter(|r| !r.is_zero()),
        ];
        let dest = inst.dest();

        let mut result = 0u64;
        let mut mem_addr = 0u64;
        let mut branch = None;
        let mut hoist = 0u32;
        let mut next_pc = pc + 1;

        match inst {
            Inst::Alu { op, rs1, rs2, .. } => {
                result = op.apply(self.read_reg(rs1), self.read_reg(rs2));
            }
            Inst::AluImm { op, rs1, imm, .. } => {
                result = op.apply(self.read_reg(rs1), imm as u64);
            }
            Inst::Load { base, offset, .. } => {
                mem_addr = self.read_reg(base).wrapping_add(offset as u64);
                result = self.mem.read(mem_addr);
                hoist = self.hoist_distance(base, mem_addr);
            }
            Inst::Store { src, base, offset } => {
                mem_addr = self.read_reg(base).wrapping_add(offset as u64);
                let value = self.read_reg(src);
                self.mem.write(mem_addr, value);
                self.store_writer.insert(mem_addr & !7, self.seq);
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(self.read_reg(rs1), self.read_reg(rs2));
                next_pc = if taken { target } else { pc + 1 };
                branch = Some(BranchInfo {
                    taken,
                    next_pc,
                    fallthrough: pc + 1,
                    conditional: true,
                });
            }
            Inst::Jump { target, link } => {
                if link.is_some() {
                    result = (pc + 1) as u64;
                }
                next_pc = target;
                branch = Some(BranchInfo {
                    taken: true,
                    next_pc,
                    fallthrough: pc + 1,
                    conditional: false,
                });
            }
            Inst::JumpReg { rs } => {
                next_pc = self.read_reg(rs) as u32;
                branch = Some(BranchInfo {
                    taken: true,
                    next_pc,
                    fallthrough: pc + 1,
                    conditional: false,
                });
            }
            Inst::Halt => {
                self.halted = true;
                return Err(EmuError::Halted);
            }
        }

        if let Some(d) = dest {
            self.regs[d.index()] = result;
            self.reg_writer[d.index()] = Some(self.seq);
        }

        let record = DynInst {
            seq: self.seq,
            pc,
            kind,
            srcs,
            dest,
            result,
            mem_addr,
            branch,
            hoist,
        };
        self.seq += 1;
        self.pc = next_pc;
        Ok(record)
    }

    /// Retires one instruction, returning `None` at halt or when control
    /// flow escapes the program.
    pub fn step(&mut self) -> Option<DynInst> {
        self.try_step().ok()
    }
}

impl Iterator for Emulator {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        self.step()
    }
}

impl fmt::Debug for Emulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Emulator")
            .field("program", &self.program.name())
            .field("pc", &self.pc)
            .field("retired", &self.seq)
            .field("halted", &self.halted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{AluOp, Cond};
    use crate::reg::names::*;

    #[test]
    fn straight_line_arithmetic() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 6);
        b.li(T1, 7);
        b.alu(AluOp::Mul, T2, T0, T1);
        b.halt();
        let mut emu = Emulator::new(b.build());
        let t: Vec<_> = emu.by_ref().collect();
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].result, 42);
        assert_eq!(emu.reg(T2), 42);
        assert!(emu.is_halted());
    }

    #[test]
    fn zero_register_reads_zero_and_discards_writes() {
        let mut b = ProgramBuilder::new();
        b.alu_imm(AluOp::Add, ZERO, ZERO, 99);
        b.alu(AluOp::Add, T0, ZERO, ZERO);
        b.halt();
        let mut emu = Emulator::new(b.build());
        let t: Vec<_> = emu.by_ref().collect();
        assert_eq!(t[0].dest, None);
        assert_eq!(emu.reg(T0), 0);
        // zero-register sources carry no dependence
        assert_eq!(t[1].srcs, [None, None]);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut b = ProgramBuilder::new();
        b.data(0x100, 5);
        b.li(S0, 0x100);
        b.load(T0, S0, 0);
        b.alu_imm(AluOp::Add, T0, T0, 1);
        b.store(T0, S0, 8);
        b.load(T1, S0, 8);
        b.halt();
        let mut emu = Emulator::new(b.build());
        let t: Vec<_> = emu.by_ref().collect();
        assert_eq!(t[1].result, 5);
        assert_eq!(t[1].mem_addr, 0x100);
        assert_eq!(t[4].result, 6);
        assert_eq!(emu.reg(T1), 6);
    }

    #[test]
    fn branch_loop_iterates_exact_count() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 0);
        b.li(T1, 5);
        let head = b.here();
        b.alu_imm(AluOp::Add, T0, T0, 1);
        b.branch(Cond::Ne, T0, T1, head);
        b.halt();
        let emu = Emulator::new(b.build());
        let t: Vec<_> = emu.collect();
        let branches: Vec<_> = t.iter().filter(|d| d.is_branch()).collect();
        assert_eq!(branches.len(), 5);
        assert!(branches[..4].iter().all(|d| d.branch.unwrap().taken));
        assert!(!branches[4].branch.unwrap().taken);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        let f = b.label();
        b.call_label(f, RA); // 0
        b.halt(); // 1
        b.bind(f);
        b.li(V0, 9); // 2
        b.jump_reg(RA); // 3
        let mut emu = Emulator::new(b.build());
        let t: Vec<_> = emu.by_ref().collect();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].result, 1); // link value
        assert_eq!(t[2].branch.unwrap().next_pc, 1);
        assert_eq!(emu.reg(V0), 9);
    }

    #[test]
    fn pc_out_of_range_reported() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 1); // runs off the end
        let mut emu = Emulator::new(b.build());
        emu.try_step().unwrap();
        assert_eq!(emu.try_step(), Err(EmuError::PcOutOfRange { pc: 1 }));
    }

    #[test]
    fn halt_is_sticky() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let mut emu = Emulator::new(b.build());
        assert_eq!(emu.try_step(), Err(EmuError::Halted));
        assert_eq!(emu.try_step(), Err(EmuError::Halted));
        assert!(emu.is_halted());
    }

    #[test]
    fn hoist_respects_address_register_producer() {
        let mut b = ProgramBuilder::new();
        b.li(S0, 0x200); // seq 0: producer of address
        b.li(T4, 1); // seq 1 filler
        b.li(T5, 2); // seq 2 filler
        b.load(T0, S0, 0); // seq 3: can hoist past 2 fillers
        b.halt();
        let t: Vec<_> = Emulator::new(b.build()).collect();
        assert_eq!(t[3].hoist, 2);
    }

    #[test]
    fn hoist_respects_aliasing_store() {
        let mut b = ProgramBuilder::new();
        b.li(S0, 0x200); // seq 0
        b.li(T1, 7); // seq 1
        b.store(T1, S0, 0); // seq 2: aliasing store
        b.li(T4, 1); // seq 3 filler
        b.load(T0, S0, 0); // seq 4: blocked by store at seq 2
        b.halt();
        let t: Vec<_> = Emulator::new(b.build()).collect();
        assert_eq!(t[4].hoist, 1);
        assert_eq!(t[4].result, 7);
    }

    #[test]
    fn hoist_ignores_non_aliasing_store() {
        let mut b = ProgramBuilder::new();
        b.li(S0, 0x200); // seq 0
        b.li(T1, 7); // seq 1
        b.store(T1, S0, 64); // seq 2: different word
        b.li(T4, 1); // seq 3 filler
        b.load(T0, S0, 0); // seq 4: only blocked by seq 0
        b.halt();
        let t: Vec<_> = Emulator::new(b.build()).collect();
        assert_eq!(t[4].hoist, 3);
    }

    #[test]
    fn determinism() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.li(T0, 0);
            b.li(T1, 100);
            let head = b.here();
            b.alu_imm(AluOp::Add, T0, T0, 3);
            b.alu(AluOp::Rem, T2, T0, T1);
            b.branch(Cond::Ne, T2, ZERO, head);
            b.halt();
            b.build()
        };
        let a: Vec<_> = Emulator::new(build()).collect();
        let b: Vec<_> = Emulator::new(build()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seq_numbers_are_dense() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 1);
        b.li(T1, 2);
        b.alu(AluOp::Add, T2, T0, T1);
        b.halt();
        let t: Vec<_> = Emulator::new(b.build()).collect();
        for (i, d) in t.iter().enumerate() {
            assert_eq!(d.seq, i as u64);
        }
    }
}

//! Static instruction definitions.

use crate::reg::Reg;
use std::fmt;

/// Integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `rhs & 63`).
    Sll,
    /// Logical shift right (by `rhs & 63`).
    Srl,
    /// Arithmetic shift right (by `rhs & 63`).
    Sra,
    /// Wrapping multiplication (multi-cycle unit).
    Mul,
    /// Unsigned division; division by zero yields all-ones (multi-cycle unit).
    Div,
    /// Unsigned remainder; remainder by zero yields the dividend (multi-cycle unit).
    Rem,
    /// Set-if-less-than, signed (1 or 0).
    Slt,
    /// Set-if-less-than, unsigned (1 or 0).
    Sltu,
}

impl AluOp {
    /// Applies the operation to two 64-bit operand values.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
        }
    }

    /// Whether this operation executes on the multi-cycle multiply/divide
    /// unit (the architectural parameters in the paper's Table 2 provide a
    /// single integer mult/div unit next to four single-cycle ALUs).
    #[inline]
    pub fn is_long_latency(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// Evaluates the condition on two 64-bit operand values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// The logically inverted condition.
    #[inline]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A static instruction.
///
/// Program counters are *instruction indices* into the
/// [`Program`](crate::Program); the timing simulator scales them by four
/// bytes when indexing instruction caches and branch predictor tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Register-register ALU operation: `rd = op(rs1, rs2)`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source operand.
        rs1: Reg,
        /// Second source operand.
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd = op(rs1, imm)`.
    AluImm {
        /// The operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source operand.
        rs1: Reg,
        /// Immediate operand (sign-extended).
        imm: i64,
    },
    /// Load a 64-bit word: `rd = mem[rs(base) + offset]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Store a 64-bit word: `mem[rs(base) + offset] = src`.
    Store {
        /// Register holding the value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Conditional direct branch: `if cond(rs1, rs2) goto target`.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// First comparison operand.
        rs1: Reg,
        /// Second comparison operand.
        rs2: Reg,
        /// Target instruction index when taken.
        target: u32,
    },
    /// Unconditional direct jump, optionally linking the return address.
    Jump {
        /// Target instruction index.
        target: u32,
        /// If present, receives the instruction index after the jump
        /// (call semantics).
        link: Option<Reg>,
    },
    /// Indirect jump through a register holding an instruction index
    /// (returns, jump tables, interpreter dispatch).
    JumpReg {
        /// Register holding the target instruction index.
        rs: Reg,
    },
    /// Stops the emulator (end of program).
    Halt,
}

/// Coarse instruction class used for functional-unit selection, trace
/// records and the DDT's load-terminator rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer multiply.
    IntMul,
    /// Multi-cycle integer divide/remainder.
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional direct jump (including calls).
    Jump,
    /// Indirect jump through a register.
    JumpReg,
    /// Program halt marker.
    Halt,
}

impl InstKind {
    /// True for memory loads — the chain-terminator class in the paper's
    /// Register Set Extractor (Section 4.2).
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, InstKind::Load)
    }

    /// True for control-transfer instructions.
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(self, InstKind::Branch | InstKind::Jump | InstKind::JumpReg)
    }
}

impl Inst {
    /// The coarse class of this instruction.
    pub fn kind(&self) -> InstKind {
        match self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                AluOp::Mul => InstKind::IntMul,
                AluOp::Div | AluOp::Rem => InstKind::IntDiv,
                _ => InstKind::IntAlu,
            },
            Inst::Load { .. } => InstKind::Load,
            Inst::Store { .. } => InstKind::Store,
            Inst::Branch { .. } => InstKind::Branch,
            Inst::Jump { .. } => InstKind::Jump,
            Inst::JumpReg { .. } => InstKind::JumpReg,
            Inst::Halt => InstKind::Halt,
        }
    }

    /// The source registers read by this instruction (up to two).
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        match *self {
            Inst::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::AluImm { rs1, .. } => [Some(rs1), None],
            Inst::Load { base, .. } => [Some(base), None],
            Inst::Store { src, base, .. } => [Some(base), Some(src)],
            Inst::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::Jump { .. } => [None, None],
            Inst::JumpReg { rs } => [Some(rs), None],
            Inst::Halt => [None, None],
        }
    }

    /// The destination register written by this instruction, if any.
    ///
    /// Writes to the zero register are architectural no-ops and are
    /// reported as `None`.
    pub fn dest(&self) -> Option<Reg> {
        let d = match *self {
            Inst::Alu { rd, .. } | Inst::AluImm { rd, .. } | Inst::Load { rd, .. } => Some(rd),
            Inst::Jump { link, .. } => link,
            _ => None,
        };
        d.filter(|r| !r.is_zero())
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Inst::AluImm { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm}"),
            Inst::Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Inst::Store { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "{cond} {rs1}, {rs2}, @{target}"),
            Inst::Jump { target, link: None } => write!(f, "j @{target}"),
            Inst::Jump {
                target,
                link: Some(l),
            } => write!(f, "call @{target}, link {l}"),
            Inst::JumpReg { rs } => write!(f, "jr {rs}"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), u64::MAX); // wraps
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Srl.apply(u64::MAX, 63), 1);
        assert_eq!(AluOp::Sra.apply(u64::MAX, 63), u64::MAX); // sign fill
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
        assert_eq!(AluOp::Div.apply(42, 6), 7);
        assert_eq!(AluOp::Div.apply(42, 0), u64::MAX);
        assert_eq!(AluOp::Rem.apply(43, 6), 1);
        assert_eq!(AluOp::Rem.apply(43, 0), 43);
        assert_eq!(AluOp::Slt.apply(u64::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(AluOp::Sltu.apply(u64::MAX, 0), 0);
    }

    #[test]
    fn shift_amount_masked() {
        assert_eq!(AluOp::Sll.apply(1, 64), 1);
        assert_eq!(AluOp::Sll.apply(1, 65), 2);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Lt.eval(u64::MAX, 0)); // signed -1 < 0
        assert!(!Cond::Ltu.eval(u64::MAX, 0));
        assert!(Cond::Ge.eval(0, u64::MAX)); // 0 >= -1 signed
        assert!(Cond::Geu.eval(u64::MAX, 0));
    }

    #[test]
    fn cond_negate_is_involution() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu] {
            assert_eq!(c.negate().negate(), c);
            // negation flips the outcome on a sample of operand pairs
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 3)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn kinds_and_operands() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: T0,
            rs1: T1,
            rs2: T2,
        };
        assert_eq!(i.kind(), InstKind::IntAlu);
        assert_eq!(i.srcs(), [Some(T1), Some(T2)]);
        assert_eq!(i.dest(), Some(T0));

        let m = Inst::AluImm {
            op: AluOp::Mul,
            rd: T0,
            rs1: T1,
            imm: 3,
        };
        assert_eq!(m.kind(), InstKind::IntMul);

        let d = Inst::Alu {
            op: AluOp::Rem,
            rd: T0,
            rs1: T1,
            rs2: T2,
        };
        assert_eq!(d.kind(), InstKind::IntDiv);

        let l = Inst::Load {
            rd: T3,
            base: S0,
            offset: 8,
        };
        assert_eq!(l.kind(), InstKind::Load);
        assert!(l.kind().is_load());
        assert_eq!(l.srcs(), [Some(S0), None]);
        assert_eq!(l.dest(), Some(T3));

        let s = Inst::Store {
            src: T3,
            base: S0,
            offset: 8,
        };
        assert_eq!(s.dest(), None);
        assert_eq!(s.srcs(), [Some(S0), Some(T3)]);

        let b = Inst::Branch {
            cond: Cond::Eq,
            rs1: T0,
            rs2: ZERO,
            target: 7,
        };
        assert!(b.kind().is_control());
        assert_eq!(b.dest(), None);
    }

    #[test]
    fn zero_register_writes_report_no_dest() {
        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: ZERO,
            rs1: T1,
            imm: 1,
        };
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn call_links() {
        let c = Inst::Jump {
            target: 10,
            link: Some(RA),
        };
        assert_eq!(c.dest(), Some(RA));
        assert_eq!(c.kind(), InstKind::Jump);
    }

    #[test]
    fn display_smoke() {
        let i = Inst::Load {
            rd: T3,
            base: S0,
            offset: -8,
        };
        assert_eq!(i.to_string(), "ld r11, -8(r16)");
    }
}

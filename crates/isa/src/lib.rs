//! # arvi-isa
//!
//! A compact RISC instruction-set model, program builder, paged memory and
//! architectural emulator. This crate is the *workload substrate* of the
//! reproduction of *"Dynamic Data Dependence Tracking and its Application to
//! Branch Prediction"* (Chen, Dropsho & Albonesi, HPCA 2003): the paper
//! evaluates on SimpleScalar/PISA running SPEC95 integer binaries; here,
//! workloads are real programs in this ISA, functionally executed by
//! [`Emulator`] to yield a committed dynamic instruction stream
//! ([`DynInst`]) that the timing simulator (`arvi-sim`) replays.
//!
//! The ISA is deliberately minimal (32 integer registers, ALU ops, loads,
//! stores, conditional branches, direct and indirect jumps) but produces
//! genuine register dataflow, which is exactly what the paper's Data
//! Dependence Table observes.
//!
//! ## Example
//!
//! ```
//! use arvi_isa::{ProgramBuilder, Emulator, AluOp, Cond, regs};
//!
//! // for (t0 = 0; t0 != 10; t0++) {}
//! let mut b = ProgramBuilder::new();
//! b.li(regs::T0, 0);
//! b.li(regs::T1, 10);
//! let head = b.here();
//! b.alu_imm(AluOp::Add, regs::T0, regs::T0, 1);
//! b.branch(Cond::Ne, regs::T0, regs::T1, head);
//! b.halt();
//! let program = b.build();
//!
//! let mut emu = Emulator::new(program);
//! let trace: Vec<_> = emu.by_ref().take(100).collect();
//! assert_eq!(trace.iter().filter(|d| d.is_branch()).count(), 10);
//! ```

pub mod builder;
pub mod emulator;
pub mod inst;
pub mod mem;
pub mod program;
pub mod reg;
pub mod trace;

pub use builder::{Label, ProgramBuilder};
pub use emulator::{EmuError, Emulator};
pub use inst::{AluOp, Cond, Inst, InstKind};
pub use mem::Memory;
pub use program::Program;
pub use reg::names as regs;
pub use reg::{Reg, NUM_LOGICAL_REGS};
pub use trace::{BranchInfo, DynInst};

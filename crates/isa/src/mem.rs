//! Paged sparse data memory.
//!
//! The emulator's data memory holds 64-bit words at arbitrary byte
//! addresses (accesses are word-granular: the low three address bits select
//! a word, i.e. addresses are rounded down to a multiple of 8). Backing
//! storage is allocated in 4 KiB pages on first touch, so workloads can use
//! widely scattered heaps without cost.

use std::collections::HashMap;

const PAGE_BYTES: u64 = 4096;
const WORDS_PER_PAGE: usize = (PAGE_BYTES / 8) as usize;

/// Sparse, paged, word-granular memory.
///
/// Reads of untouched memory return zero, matching a zero-initialized
/// address space.
///
/// # Example
///
/// ```
/// use arvi_isa::Memory;
/// let mut m = Memory::new();
/// m.write(0x1_0008, 42);
/// assert_eq!(m.read(0x1_0008), 42);
/// assert_eq!(m.read(0x1_000C), 42); // same 8-byte word
/// assert_eq!(m.read(0xdead_0000), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u64; WORDS_PER_PAGE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn split(addr: u64) -> (u64, usize) {
        let page = addr / PAGE_BYTES;
        let word = ((addr % PAGE_BYTES) / 8) as usize;
        (page, word)
    }

    /// Reads the 64-bit word containing byte address `addr`.
    #[inline]
    pub fn read(&self, addr: u64) -> u64 {
        let (page, word) = Memory::split(addr);
        match self.pages.get(&page) {
            Some(p) => p[word],
            None => 0,
        }
    }

    /// Writes the 64-bit word containing byte address `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64) {
        let (page, word) = Memory::split(addr);
        let page = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0u64; WORDS_PER_PAGE]));
        page[word] = value;
    }

    /// Number of 4 KiB pages currently allocated.
    pub fn pages_allocated(&self) -> usize {
        self.pages.len()
    }

    /// Bulk-loads `(address, value)` pairs (used for program images).
    pub fn load_image<'a, I: IntoIterator<Item = &'a (u64, u64)>>(&mut self, image: I) {
        for &(addr, value) in image {
            self.write(addr, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(u64::MAX - 7), 0);
        assert_eq!(m.pages_allocated(), 0);
    }

    #[test]
    fn read_after_write() {
        let mut m = Memory::new();
        m.write(16, 99);
        assert_eq!(m.read(16), 99);
        assert_eq!(m.pages_allocated(), 1);
    }

    #[test]
    fn word_granularity() {
        let mut m = Memory::new();
        m.write(8, 1);
        m.write(11, 2); // same word as 8
        assert_eq!(m.read(8), 2);
        m.write(16, 3); // next word untouched by the above
        assert_eq!(m.read(8), 2);
        assert_eq!(m.read(16), 3);
    }

    #[test]
    fn sparse_pages() {
        let mut m = Memory::new();
        m.write(0, 1);
        m.write(1 << 40, 2);
        assert_eq!(m.pages_allocated(), 2);
        assert_eq!(m.read(0), 1);
        assert_eq!(m.read(1 << 40), 2);
    }

    #[test]
    fn page_boundary_isolation() {
        let mut m = Memory::new();
        m.write(4095, 7); // last word of page 0
        assert_eq!(m.read(4088), 7);
        assert_eq!(m.read(4096), 0); // first word of page 1
    }

    #[test]
    fn load_image_applies_all() {
        let mut m = Memory::new();
        m.load_image(&[(0, 1), (8, 2), (4096, 3)]);
        assert_eq!(m.read(0), 1);
        assert_eq!(m.read(8), 2);
        assert_eq!(m.read(4096), 3);
    }
}

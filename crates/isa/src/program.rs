//! Static program representation.

use crate::inst::Inst;
use std::fmt;
use std::ops::Index;

/// A static program: a sequence of instructions addressed by instruction
/// index, plus an entry point and an initial memory image.
///
/// Programs are produced by [`ProgramBuilder`](crate::ProgramBuilder) and
/// consumed by the [`Emulator`](crate::Emulator).
#[derive(Debug, Clone, Default)]
pub struct Program {
    insts: Vec<Inst>,
    entry: u32,
    init_mem: Vec<(u64, u64)>,
    name: String,
}

impl Program {
    /// Creates a program from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range, or if any direct control-transfer
    /// target is out of range.
    pub fn new(insts: Vec<Inst>, entry: u32, init_mem: Vec<(u64, u64)>) -> Program {
        assert!(
            (entry as usize) < insts.len() || insts.is_empty(),
            "entry point {entry} out of range"
        );
        for (pc, inst) in insts.iter().enumerate() {
            let target = match *inst {
                Inst::Branch { target, .. } | Inst::Jump { target, .. } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                assert!(
                    (t as usize) < insts.len(),
                    "instruction {pc} targets out-of-range index {t}"
                );
            }
        }
        Program {
            insts,
            entry,
            init_mem,
            name: String::new(),
        }
    }

    /// Sets a human-readable name (used in reports).
    pub fn with_name(mut self, name: impl Into<String>) -> Program {
        self.name = name.into();
        self
    }

    /// The program name, or an empty string.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry-point instruction index.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`, if in range.
    pub fn get(&self, pc: u32) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// All instructions in index order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The initial memory image as `(byte address, 64-bit value)` pairs.
    pub fn init_mem(&self) -> &[(u64, u64)] {
        &self.init_mem
    }

    /// A textual disassembly listing (for debugging and examples).
    pub fn disassemble(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            let marker = if pc as u32 == self.entry { '>' } else { ' ' };
            let _ = writeln!(out, "{marker}{pc:5}: {inst}");
        }
        out
    }
}

impl Index<u32> for Program {
    type Output = Inst;

    fn index(&self, pc: u32) -> &Inst {
        &self.insts[pc as usize]
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program {:?} ({} instructions, entry {})",
            self.name,
            self.insts.len(),
            self.entry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond};
    use crate::reg::names::*;

    fn sample() -> Vec<Inst> {
        vec![
            Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: ZERO,
                imm: 1,
            },
            Inst::Branch {
                cond: Cond::Ne,
                rs1: T0,
                rs2: ZERO,
                target: 0,
            },
            Inst::Halt,
        ]
    }

    #[test]
    fn construction_and_access() {
        let p = Program::new(sample(), 0, vec![(8, 42)]).with_name("sample");
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.entry(), 0);
        assert_eq!(p.name(), "sample");
        assert_eq!(p.init_mem(), &[(8, 42)]);
        assert!(matches!(p[1], Inst::Branch { .. }));
        assert!(p.get(3).is_none());
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn rejects_out_of_range_target() {
        let insts = vec![Inst::Jump {
            target: 9,
            link: None,
        }];
        let _ = Program::new(insts, 0, vec![]);
    }

    #[test]
    #[should_panic(expected = "entry point")]
    fn rejects_out_of_range_entry() {
        let _ = Program::new(sample(), 3, vec![]);
    }

    #[test]
    fn disassembly_contains_each_instruction() {
        let p = Program::new(sample(), 0, vec![]);
        let d = p.disassemble();
        assert!(d.contains("addi r8, r0, 1"));
        assert!(d.contains("bne r8, r0, @0"));
        assert!(d.contains("halt"));
    }
}

//! Logical (architectural) integer registers.
//!
//! The ISA defines 32 integer registers, matching the paper's assumption
//! ("assuming the ISA defines a set of 32 logical registers", Section 4.4).
//! Register 0 is hard-wired to zero, as in MIPS/PISA.

use std::fmt;

/// Number of logical integer registers in the ISA.
pub const NUM_LOGICAL_REGS: usize = 32;

/// A logical register identifier in `0..32`.
///
/// `Reg(0)` is the hard-wired zero register: reads return 0 and writes are
/// discarded by the [`Emulator`](crate::Emulator).
///
/// # Example
///
/// ```
/// use arvi_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.low_bits(3), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < NUM_LOGICAL_REGS,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// The register's index in `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns true for the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The low `n` bits of the register identifier.
    ///
    /// The paper's shadow register map table stores only the low 3 bits of
    /// the logical register ID (Section 4.4); this is the accessor that
    /// models that truncation.
    #[inline]
    pub fn low_bits(self, n: u32) -> u64 {
        (self.0 as u64) & ((1u64 << n) - 1)
    }

    /// Iterator over all 32 logical registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_LOGICAL_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

/// Conventional register names used by the program builder and workloads.
///
/// The split mirrors common RISC calling conventions: `A*` for arguments,
/// `T*` for caller-saved temporaries, `S*` for callee-saved values, plus a
/// link register, stack pointer and global pointer.
pub mod names {
    use super::Reg;

    /// Hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return-address (link) register.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global (data segment base) pointer.
    pub const GP: Reg = Reg(3);
    /// Argument registers.
    pub const A0: Reg = Reg(4);
    pub const A1: Reg = Reg(5);
    pub const A2: Reg = Reg(6);
    pub const A3: Reg = Reg(7);
    /// Temporary registers.
    pub const T0: Reg = Reg(8);
    pub const T1: Reg = Reg(9);
    pub const T2: Reg = Reg(10);
    pub const T3: Reg = Reg(11);
    pub const T4: Reg = Reg(12);
    pub const T5: Reg = Reg(13);
    pub const T6: Reg = Reg(14);
    pub const T7: Reg = Reg(15);
    /// Saved registers.
    pub const S0: Reg = Reg(16);
    pub const S1: Reg = Reg(17);
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    /// Extra temporaries.
    pub const T8: Reg = Reg(24);
    pub const T9: Reg = Reg(25);
    pub const T10: Reg = Reg(26);
    pub const T11: Reg = Reg(27);
    /// Value registers.
    pub const V0: Reg = Reg(28);
    pub const V1: Reg = Reg(29);
    pub const V2: Reg = Reg(30);
    pub const V3: Reg = Reg(31);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in 0..32u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::ZERO, names::ZERO);
    }

    #[test]
    fn low_bits_truncates() {
        assert_eq!(Reg::new(13).low_bits(3), 5); // 13 = 0b1101 -> 0b101
        assert_eq!(Reg::new(13).low_bits(4), 13);
        assert_eq!(Reg::new(8).low_bits(3), 0);
    }

    #[test]
    fn all_yields_32_distinct() {
        let v: Vec<_> = Reg::all().collect();
        assert_eq!(v.len(), 32);
        for (i, r) in v.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::new(7).to_string(), "r7");
    }
}

//! Committed dynamic instruction records (the trace format).
//!
//! The timing simulator in `arvi-sim` is trace-driven: it replays the
//! committed instruction stream produced by the
//! [`Emulator`](crate::Emulator), consulting its own predictors for timing
//! while the functional outcome (register values, branch directions, memory
//! addresses) comes from these records.

use crate::inst::InstKind;
use crate::reg::Reg;

/// Control-flow outcome of a dynamic branch or jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch was taken (always true for jumps).
    pub taken: bool,
    /// The instruction index executed next.
    pub next_pc: u32,
    /// The fall-through instruction index (`pc + 1`).
    pub fallthrough: u32,
    /// True for conditional branches (as opposed to jumps), which are the
    /// instructions the direction predictors are measured on.
    pub conditional: bool,
}

/// One committed dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Dynamic sequence number (0-based, commit order).
    pub seq: u64,
    /// Static instruction index.
    pub pc: u32,
    /// Coarse instruction class (functional unit selection).
    pub kind: InstKind,
    /// Source registers read (zero register excluded).
    pub srcs: [Option<Reg>; 2],
    /// Destination register written (zero register excluded).
    pub dest: Option<Reg>,
    /// New value of `dest` (0 when `dest` is `None`).
    pub result: u64,
    /// Effective byte address for loads and stores (0 otherwise).
    pub mem_addr: u64,
    /// Control-flow outcome for branches/jumps.
    pub branch: Option<BranchInfo>,
    /// Load-back oracle: the number of dynamic instructions this load could
    /// be hoisted while respecting its address-register dependence and
    /// memory (store-to-load) dependences. Zero for non-loads. Models the
    /// paper's *load back* configuration (Section 5), which "aggressively
    /// compares addresses at run-time to disambiguate memory references".
    pub hoist: u32,
}

impl DynInst {
    /// True for conditional branches (the instructions direction predictors
    /// are measured on).
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.branch.map(|b| b.conditional).unwrap_or(false)
    }

    /// True for any control transfer (branch or jump).
    #[inline]
    pub fn is_control(&self) -> bool {
        self.branch.is_some()
    }

    /// True for memory loads.
    #[inline]
    pub fn is_load(&self) -> bool {
        self.kind.is_load()
    }

    /// True for memory stores.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self.kind, InstKind::Store)
    }

    /// The byte program counter (instruction index scaled by 4), used when
    /// indexing caches and predictor tables.
    #[inline]
    pub fn byte_pc(&self) -> u64 {
        (self.pc as u64) << 2
    }

    /// The instruction index executed after this one (next sequential, or
    /// the control-flow target).
    #[inline]
    pub fn next_pc(&self) -> u32 {
        match self.branch {
            Some(b) => b.next_pc,
            None => self.pc + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstKind;
    use crate::reg::names::*;

    fn blank(kind: InstKind) -> DynInst {
        DynInst {
            seq: 0,
            pc: 10,
            kind,
            srcs: [None, None],
            dest: None,
            result: 0,
            mem_addr: 0,
            branch: None,
            hoist: 0,
        }
    }

    #[test]
    fn classification() {
        assert!(blank(InstKind::Load).is_load());
        assert!(blank(InstKind::Store).is_store());
        assert!(!blank(InstKind::IntAlu).is_load());

        let mut b = blank(InstKind::Branch);
        b.branch = Some(BranchInfo {
            taken: true,
            next_pc: 3,
            fallthrough: 11,
            conditional: true,
        });
        assert!(b.is_branch());
        assert!(b.is_control());
        assert_eq!(b.next_pc(), 3);

        let mut j = blank(InstKind::Jump);
        j.branch = Some(BranchInfo {
            taken: true,
            next_pc: 40,
            fallthrough: 11,
            conditional: false,
        });
        assert!(!j.is_branch());
        assert!(j.is_control());
    }

    #[test]
    fn byte_pc_scales_by_four() {
        assert_eq!(blank(InstKind::IntAlu).byte_pc(), 40);
    }

    #[test]
    fn sequential_next_pc() {
        let d = blank(InstKind::IntAlu);
        assert_eq!(d.next_pc(), 11);
    }

    #[test]
    fn record_carries_operands() {
        let mut d = blank(InstKind::Load);
        d.srcs = [Some(S0), None];
        d.dest = Some(T1);
        d.result = 77;
        d.mem_addr = 0x80;
        assert_eq!(d.srcs[0], Some(S0));
        assert_eq!(d.dest, Some(T1));
    }
}

//! The zero-alloc counter/histogram probe.

use crate::hist::Log2Hist;
use crate::{BranchResolution, CacheSnapshot, Probe};

/// Issue counts above this are clamped into the last bucket (the
/// modeled machines are 4-wide; 15 leaves generous headroom). Public so
/// full-fidelity serializers can round-trip the raw issue state.
pub const ISSUE_BUCKETS: usize = 16;

/// Fixed-footprint pipeline/predictor telemetry: event counters plus
/// log2-bucket histograms, recorded with zero steady-state allocation
/// (everything is inline arrays; pinned by `tests/alloc_steady_state.rs`).
///
/// Histograms cover *active* cycles — quiet cycles the calendar queue
/// skips execute nothing and fire no hooks.
#[derive(Debug, Clone, Default)]
pub struct CounterProbe {
    /// Active machine cycles observed.
    pub cycles: u64,
    /// Instructions fetched/renamed.
    pub fetched: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Writeback events.
    pub writebacks: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Full mispredicts (fetch-blocking).
    pub mispredicts: u64,
    /// ROB occupancy sampled at every active cycle.
    pub rob_occupancy: Log2Hist,
    /// DDT occupancy sampled at every insert (ARVI configurations).
    pub ddt_occupancy: Log2Hist,
    /// Dependence-chain length per branch chain read (ARVI).
    pub chain_len: Log2Hist,
    /// Leaf-register-set size per chain read (ARVI).
    pub leaf_set: Log2Hist,
    /// Fetch-blocked cycles per full mispredict (recovery depth).
    pub recovery: Log2Hist,
    /// Data-access latency per load/store.
    pub mem_latency: Log2Hist,
    /// issued-per-cycle counts; index clamped to `ISSUE_BUCKETS - 1`.
    issue_counts: [u64; ISSUE_BUCKETS],
    /// Cycles on which the issue stage ran (had candidates).
    issue_cycles: u64,
    /// The machine's issue width (recorded from the first issue event).
    issue_width: u32,
    /// End-of-run cache/TLB totals.
    pub cache: CacheSnapshot,
}

impl CounterProbe {
    /// An empty probe.
    pub fn new() -> CounterProbe {
        CounterProbe::default()
    }

    /// Issue-width utilization as `(issued, cycles)` rows, `0..=width`.
    /// Active cycles on which the issue stage never ran (no candidates)
    /// count as zero-issue cycles.
    pub fn issue_utilization(&self) -> Vec<(u32, u64)> {
        let width = (self.issue_width as usize).clamp(1, ISSUE_BUCKETS - 1);
        let idle = self.cycles.saturating_sub(self.issue_cycles);
        (0..=width)
            .map(|n| {
                let mut c = self.issue_counts[n];
                if n == 0 {
                    c += idle;
                }
                (n as u32, c)
            })
            .collect()
    }

    /// Mean instructions issued per active cycle.
    pub fn mean_issued(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let total: u64 = self
            .issue_counts
            .iter()
            .enumerate()
            .map(|(n, &c)| n as u64 * c)
            .sum();
        total as f64 / self.cycles as f64
    }

    /// The raw issue-stage state `(counts, issue_cycles, issue_width)`.
    /// Unlike [`CounterProbe::issue_utilization`] — which folds idle
    /// cycles into the zero bucket and clamps to the issue width — this
    /// is the exact internal state, so serializing it round-trips.
    pub fn issue_state(&self) -> ([u64; ISSUE_BUCKETS], u64, u32) {
        (self.issue_counts, self.issue_cycles, self.issue_width)
    }

    /// Restores state captured by [`CounterProbe::issue_state`]
    /// (deserialization seam for merged-telemetry journals).
    pub fn restore_issue_state(&mut self, counts: [u64; ISSUE_BUCKETS], cycles: u64, width: u32) {
        self.issue_counts = counts;
        self.issue_cycles = cycles;
        self.issue_width = width;
    }

    /// Adds every sample of `other` into `self` (per-workload merge).
    pub fn merge(&mut self, other: &CounterProbe) {
        self.cycles += other.cycles;
        self.fetched += other.fetched;
        self.committed += other.committed;
        self.writebacks += other.writebacks;
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
        self.rob_occupancy.merge(&other.rob_occupancy);
        self.ddt_occupancy.merge(&other.ddt_occupancy);
        self.chain_len.merge(&other.chain_len);
        self.leaf_set.merge(&other.leaf_set);
        self.recovery.merge(&other.recovery);
        self.mem_latency.merge(&other.mem_latency);
        for (a, b) in self.issue_counts.iter_mut().zip(other.issue_counts.iter()) {
            *a += b;
        }
        self.issue_cycles += other.issue_cycles;
        self.issue_width = self.issue_width.max(other.issue_width);
        self.cache.merge(&other.cache);
    }

    /// The histograms as `(name, hist)` rows in report order.
    pub fn histograms(&self) -> [(&'static str, &Log2Hist); 6] {
        [
            ("rob_occupancy", &self.rob_occupancy),
            ("ddt_occupancy", &self.ddt_occupancy),
            ("chain_len", &self.chain_len),
            ("leaf_set", &self.leaf_set),
            ("recovery_cycles", &self.recovery),
            ("mem_latency", &self.mem_latency),
        ]
    }

    /// The histograms as mutable `(name, hist)` rows, mirroring
    /// [`CounterProbe::histograms`] (deserialization seam).
    pub fn histograms_mut(&mut self) -> [(&'static str, &mut Log2Hist); 6] {
        [
            ("rob_occupancy", &mut self.rob_occupancy),
            ("ddt_occupancy", &mut self.ddt_occupancy),
            ("chain_len", &mut self.chain_len),
            ("leaf_set", &mut self.leaf_set),
            ("recovery_cycles", &mut self.recovery),
            ("mem_latency", &mut self.mem_latency),
        ]
    }

    /// Markdown report: counters, issue utilization, histograms,
    /// cache/TLB totals.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| counter | value |\n|---|---|\n");
        for (name, v) in [
            ("active cycles", self.cycles),
            ("fetched", self.fetched),
            ("committed", self.committed),
            ("writebacks", self.writebacks),
            ("branches", self.branches),
            ("full mispredicts", self.mispredicts),
        ] {
            out.push_str(&format!("| {name} | {v} |\n"));
        }
        out.push_str(&format!(
            "| mean issued/cycle | {:.3} |\n\n",
            self.mean_issued()
        ));
        out.push_str("| issued/cycle | cycles | share |\n|---|---|---|\n");
        for (n, c) in self.issue_utilization() {
            let share = if self.cycles == 0 {
                0.0
            } else {
                c as f64 / self.cycles as f64 * 100.0
            };
            out.push_str(&format!("| {n} | {c} | {share:.1}% |\n"));
        }
        out.push_str("\n| histogram | bucket | count | share |\n|---|---|---|---|\n");
        for (name, h) in self.histograms() {
            h.markdown_rows(name, &mut out);
        }
        out.push_str("\n| level | hits | misses | miss rate |\n|---|---|---|---|\n");
        for (name, hits, misses) in self.cache.rows() {
            let total = hits + misses;
            let rate = if total == 0 {
                0.0
            } else {
                misses as f64 / total as f64 * 100.0
            };
            out.push_str(&format!("| {name} | {hits} | {misses} | {rate:.2}% |\n"));
        }
        out
    }

    /// Compact JSON object (all keys static, no escaping needed).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"cycles\":{},\"fetched\":{},\"committed\":{},\"writebacks\":{},\
             \"branches\":{},\"mispredicts\":{},\"mean_issued\":{:.4},\"issue\":[",
            self.cycles,
            self.fetched,
            self.committed,
            self.writebacks,
            self.branches,
            self.mispredicts,
            self.mean_issued()
        );
        for (i, (n, c)) in self.issue_utilization().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{n},{c}]"));
        }
        out.push_str("],\"hist\":{");
        for (i, (name, h)) in self.histograms().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", h.to_json()));
        }
        out.push_str("},\"cache\":{");
        for (i, (name, hits, misses)) in self.cache.rows().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":[{hits},{misses}]"));
        }
        out.push_str("}}");
        out
    }
}

impl Probe for CounterProbe {
    #[inline]
    fn on_cycle(&mut self, _cycle: u64, rob_occupancy: u32) {
        self.cycles += 1;
        self.rob_occupancy.record(rob_occupancy as u64);
    }

    #[inline]
    fn on_fetch(&mut self, _cycle: u64, _seq: u64, _pc: u64, _is_branch: bool, _is_load: bool) {
        self.fetched += 1;
    }

    #[inline]
    fn on_ddt_insert(&mut self, _cycle: u64, _seq: u64, occupancy: u32) {
        self.ddt_occupancy.record(occupancy as u64);
    }

    #[inline]
    fn on_chain_read(
        &mut self,
        _cycle: u64,
        _pc: u64,
        chain_len: u32,
        leaf_regs: u32,
        _available: u32,
    ) {
        self.chain_len.record(chain_len as u64);
        self.leaf_set.record(leaf_regs as u64);
    }

    #[inline]
    fn on_issue(&mut self, _cycle: u64, issued: u32, width: u32) {
        self.issue_cycles += 1;
        self.issue_width = width;
        self.issue_counts[(issued as usize).min(ISSUE_BUCKETS - 1)] += 1;
    }

    #[inline]
    fn on_mem_access(&mut self, _cycle: u64, _seq: u64, latency: u64) {
        self.mem_latency.record(latency);
    }

    #[inline]
    fn on_writeback(&mut self, _cycle: u64, _seq: u64) {
        self.writebacks += 1;
    }

    #[inline]
    fn on_commit(&mut self, _cycle: u64, _seq: u64) {
        self.committed += 1;
    }

    #[inline]
    fn on_branch_resolve(&mut self, _cycle: u64, _pc: u64, _res: &BranchResolution) {
        self.branches += 1;
    }

    #[inline]
    fn on_mispredict(&mut self, _cycle: u64, _seq: u64, _pc: u64, _inflight: u32) {
        self.mispredicts += 1;
    }

    #[inline]
    fn on_recovery(&mut self, _cycle: u64, blocked_cycles: u64) {
        self.recovery.record(blocked_cycles);
    }

    #[inline]
    fn on_cache_stats(&mut self, snap: &CacheSnapshot) {
        self.cache = *snap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_through_hooks() {
        let mut p = CounterProbe::new();
        p.on_cycle(0, 10);
        p.on_cycle(1, 20);
        p.on_issue(0, 4, 4);
        p.on_fetch(0, 0, 0x40, false, true);
        p.on_commit(1, 0);
        p.on_mem_access(0, 0, 3);
        p.on_mispredict(1, 5, 0x80, 12);
        p.on_recovery(9, 8);
        assert_eq!(p.cycles, 2);
        assert_eq!(p.fetched, 1);
        assert_eq!(p.committed, 1);
        assert_eq!(p.mispredicts, 1);
        assert_eq!(p.rob_occupancy.count(), 2);
        assert_eq!(p.recovery.sum(), 8);
        // One 4-wide issue cycle + one idle active cycle.
        assert_eq!(
            p.issue_utilization(),
            vec![(0, 1), (1, 0), (2, 0), (3, 0), (4, 1)]
        );
        assert!((p.mean_issued() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CounterProbe::new();
        a.on_cycle(0, 4);
        a.on_issue(0, 2, 4);
        let mut b = CounterProbe::new();
        b.on_cycle(0, 8);
        b.on_commit(0, 1);
        b.cache.l1d = (10, 2);
        a.merge(&b);
        assert_eq!(a.cycles, 2);
        assert_eq!(a.committed, 1);
        assert_eq!(a.rob_occupancy.count(), 2);
        assert_eq!(a.cache.l1d, (10, 2));
    }

    #[test]
    fn renders_markdown_and_json() {
        let mut p = CounterProbe::new();
        p.on_cycle(0, 4);
        p.on_issue(0, 1, 4);
        p.on_chain_read(0, 0x40, 3, 2, 1);
        let md = p.to_markdown();
        assert!(md.contains("| active cycles | 1 |"));
        assert!(md.contains("chain_len"));
        let json = p.to_json();
        assert!(json.starts_with("{\"cycles\":1,"), "{json}");
        assert!(json.contains("\"cache\":{\"l1i\":[0,0]"), "{json}");
    }
}

//! Fixed-size log2-bucket histograms.
//!
//! The probe layer records distributions on the machine's hot path, so
//! histograms must be fixed-size and allocation-free: a [`Log2Hist`] is
//! 67 words inline, `record` is a `leading_zeros` and two adds, and
//! rendering (which may allocate) happens only at report time.

/// A power-of-two-bucket histogram over `u64` samples.
///
/// Bucket 0 counts zero samples; bucket `k >= 1` counts samples in
/// `[2^(k-1), 2^k)`. Sum and max ride along so reports can show exact
/// means next to the bucketed shape.
#[derive(Debug, Clone)]
pub struct Log2Hist {
    buckets: [u64; 65],
    sum: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Log2Hist {
        Log2Hist {
            buckets: [0; 65],
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Log2Hist {
        Log2Hist::default()
    }

    /// Records one sample. Allocation-free. The running sum saturates
    /// rather than overflowing on pathological inputs.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b] += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Reconstructs a histogram from its serialized parts: the
    /// `(lower_bound, count)` rows of [`Log2Hist::nonzero_buckets`] plus
    /// the exact sum and max — the inverse of the JSON emission, used
    /// when merged telemetry is restored from an obs journal. Any
    /// in-range bound lands in the bucket that would have counted it,
    /// so round-tripping through bucket lower bounds is lossless.
    pub fn from_parts(
        buckets: impl IntoIterator<Item = (u64, u64)>,
        sum: u64,
        max: u64,
    ) -> Log2Hist {
        let mut h = Log2Hist {
            buckets: [0; 65],
            sum,
            max,
        };
        for (lo, n) in buckets {
            let k = (64 - lo.leading_zeros()) as usize;
            h.buckets[k] += n;
        }
        h
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)` in ascending order.
    /// Bucket `k`'s lower bound is `0` for `k = 0`, else `2^(k-1)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| (if k == 0 { 0 } else { 1u64 << (k - 1) }, n))
    }

    /// Human label of the bucket whose lower bound is `lo`.
    pub fn bucket_label(lo: u64) -> String {
        if lo == 0 {
            "0".to_string()
        } else if lo == 1 {
            "1".to_string()
        } else {
            format!("{}-{}", lo, 2 * lo - 1)
        }
    }

    /// Compact JSON: `{"count":..,"sum":..,"max":..,"mean":..,
    /// "buckets":[[lo,count],..]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"buckets\":[",
            self.count(),
            self.sum,
            self.max,
            self.mean()
        );
        let mut first = true;
        for (lo, n) in self.nonzero_buckets() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{lo},{n}]"));
        }
        out.push_str("]}");
        out
    }

    /// Appends `| name | bucket | count | share |` markdown rows, one
    /// per non-empty bucket, plus a summary row.
    pub fn markdown_rows(&self, name: &str, out: &mut String) {
        let total = self.count();
        if total == 0 {
            out.push_str(&format!("| {name} | (empty) | 0 | - |\n"));
            return;
        }
        for (lo, n) in self.nonzero_buckets() {
            out.push_str(&format!(
                "| {name} | {} | {n} | {:.1}% |\n",
                Log2Hist::bucket_label(lo),
                n as f64 / total as f64 * 100.0
            ));
        }
        out.push_str(&format!(
            "| {name} | mean {:.2}, max {} | {total} | 100% |\n",
            self.mean(),
            self.max
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut h = Log2Hist::new();
        for v in [0u64, 0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        let got: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(
            got,
            vec![
                (0, 2),
                (1, 1),
                (2, 2),
                (4, 2),
                (8, 1),
                (1024, 1),
                (1 << 63, 1)
            ]
        );
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn mean_and_merge() {
        let mut a = Log2Hist::new();
        a.record(2);
        a.record(4);
        let mut b = Log2Hist::new();
        b.record(6);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 12);
        assert!((a.mean() - 4.0).abs() < 1e-9);
        assert_eq!(a.max(), 6);
    }

    #[test]
    fn labels() {
        assert_eq!(Log2Hist::bucket_label(0), "0");
        assert_eq!(Log2Hist::bucket_label(1), "1");
        assert_eq!(Log2Hist::bucket_label(2), "2-3");
        assert_eq!(Log2Hist::bucket_label(64), "64-127");
    }

    #[test]
    fn json_shape() {
        let mut h = Log2Hist::new();
        h.record(5);
        let j = h.to_json();
        assert!(j.starts_with("{\"count\":1,\"sum\":5,\"max\":5"), "{j}");
        assert!(j.contains("\"buckets\":[[4,1]]"), "{j}");
    }
}

//! # arvi-obs
//!
//! The observability layer of the ARVI reproduction: a **zero-cost probe
//! seam** plus the telemetry consumers that ride on it.
//!
//! The timing machine (`arvi-sim`) is generic over a [`Probe`] whose
//! hook methods fire at every pipeline event — fetch, rename/DDT insert,
//! dependence-chain read, issue, memory access, writeback, commit,
//! branch resolution, mispredict recovery. Every hook has an empty
//! `#[inline]` default, and the machine is *monomorphized* over the
//! probe type, so the default [`NullProbe`] compiles to literally
//! nothing: the probed and unprobed machines are the same machine
//! (bit-identity is asserted by `tests/probe_equivalence.rs`, perf
//! neutrality by the `perf_guard` CI gate).
//!
//! Consumers shipped here:
//!
//! * [`CounterProbe`] — fixed log2-bucket histograms (ROB occupancy,
//!   issue-width utilization, mispredict recovery, DDT chain length,
//!   memory latency) plus cache/TLB hit-miss counters per level. Zero
//!   steady-state allocation (pinned by `tests/alloc_steady_state.rs`).
//! * [`SiteProbe`] — per-static-branch attribution: top-N mispredicting
//!   sites, per-site ARVI-vs-L1 accuracy, confident-wrong rates — the
//!   paper's Figure-5-style analysis made queryable.
//! * [`ChromeTracer`] — a bounded-window event tracer emitting Chrome
//!   `about:tracing` JSON for a cycle range, so a pipeline bubble can be
//!   inspected visually (`chrome://tracing`, Perfetto).
//!
//! Probes compose structurally: `(A, B)` is a probe that forwards every
//! hook to both halves, still monomorphized.

pub mod counters;
pub mod hist;
pub mod sites;
pub mod trace;

pub use counters::CounterProbe;
pub use hist::Log2Hist;
pub use sites::{SiteProbe, SiteStats};
pub use trace::ChromeTracer;

/// Everything a probe learns when one conditional branch resolves at
/// commit. Plain scalars so hook calls stay register-passed.
#[derive(Debug, Clone, Copy)]
pub struct BranchResolution {
    /// The architectural outcome.
    pub actual: bool,
    /// The direction the machine followed (post-override).
    pub final_taken: bool,
    /// The level-1 direction (pre-override).
    pub l1_taken: bool,
    /// Whether the confidence estimator rated the branch
    /// high-confidence.
    pub confident: bool,
    /// Whether the level-2 result overrode the level-1 direction.
    pub override_fired: bool,
    /// Whether the ARVI BVIT hit (always `false` for the hybrid L2).
    pub bvit_hit: bool,
    /// ARVI classification: `Some(true)` load-class, `Some(false)`
    /// calculated, `None` for non-ARVI configurations.
    pub load_class: Option<bool>,
}

impl BranchResolution {
    /// Whether the followed direction was correct.
    #[inline]
    pub fn final_correct(&self) -> bool {
        self.final_taken == self.actual
    }

    /// Whether the level-1 direction alone would have been correct.
    #[inline]
    pub fn l1_correct(&self) -> bool {
        self.l1_taken == self.actual
    }
}

/// End-of-run hit/miss totals of the memory hierarchy, per level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// L1 instruction cache (hits, misses).
    pub l1i: (u64, u64),
    /// L1 data cache (hits, misses).
    pub l1d: (u64, u64),
    /// Unified L2 (hits, misses).
    pub l2: (u64, u64),
    /// Instruction TLB (hits, misses).
    pub itlb: (u64, u64),
    /// Data TLB (hits, misses).
    pub dtlb: (u64, u64),
}

impl CacheSnapshot {
    /// Element-wise sum (for merging per-workload snapshots).
    pub fn merge(&mut self, other: &CacheSnapshot) {
        let add = |a: &mut (u64, u64), b: (u64, u64)| {
            a.0 += b.0;
            a.1 += b.1;
        };
        add(&mut self.l1i, other.l1i);
        add(&mut self.l1d, other.l1d);
        add(&mut self.l2, other.l2);
        add(&mut self.itlb, other.itlb);
        add(&mut self.dtlb, other.dtlb);
    }

    /// `(name, hits, misses)` rows in report order.
    pub fn rows(&self) -> [(&'static str, u64, u64); 5] {
        [
            ("l1i", self.l1i.0, self.l1i.1),
            ("l1d", self.l1d.0, self.l1d.1),
            ("l2", self.l2.0, self.l2.1),
            ("itlb", self.itlb.0, self.itlb.1),
            ("dtlb", self.dtlb.0, self.dtlb.1),
        ]
    }
}

/// The probe seam: pipeline hook points with empty inlined defaults.
///
/// The machine calls every hook unconditionally — an implementation
/// that ignores a hook costs nothing after monomorphization. Hook sites
/// whose *arguments* are expensive to compute (DDT occupancy, chain
/// telemetry) are additionally gated on [`Probe::ENABLED`] in the
/// machine, so [`NullProbe`] pays for neither the call nor the
/// argument.
///
/// `cycle` arguments are machine cycles since construction. Quiet
/// cycles skipped by the calendar queue fire no hooks (they execute
/// nothing), so per-cycle samples cover *active* cycles.
pub trait Probe {
    /// Whether this probe observes anything at all. Gates
    /// argument-construction work at expensive hook sites; the
    /// [`NullProbe`] sets it `false`.
    const ENABLED: bool = true;

    /// Start of an active machine cycle, with the ROB occupancy
    /// (instructions in flight).
    #[inline]
    fn on_cycle(&mut self, cycle: u64, rob_occupancy: u32) {
        let _ = (cycle, rob_occupancy);
    }

    /// An instruction was fetched and renamed.
    #[inline]
    fn on_fetch(&mut self, cycle: u64, seq: u64, pc: u64, is_branch: bool, is_load: bool) {
        let _ = (cycle, seq, pc, is_branch, is_load);
    }

    /// An instruction was inserted into the DDT (ARVI configurations),
    /// with the tracker occupancy after insertion.
    #[inline]
    fn on_ddt_insert(&mut self, cycle: u64, seq: u64, occupancy: u32) {
        let _ = (cycle, seq, occupancy);
    }

    /// A branch's dependence chain was read out of the DDT/RSE at
    /// prediction time: chain length, leaf-register-set size, and how
    /// many leaves had available values.
    #[inline]
    fn on_chain_read(
        &mut self,
        cycle: u64,
        pc: u64,
        chain_len: u32,
        leaf_regs: u32,
        available: u32,
    ) {
        let _ = (cycle, pc, chain_len, leaf_regs, available);
    }

    /// The issue stage selected `issued` instructions (of `width`
    /// possible) this cycle. Fires only on cycles with issue
    /// candidates.
    #[inline]
    fn on_issue(&mut self, cycle: u64, issued: u32, width: u32) {
        let _ = (cycle, issued, width);
    }

    /// A load or store accessed the data memory hierarchy with the
    /// given total latency.
    #[inline]
    fn on_mem_access(&mut self, cycle: u64, seq: u64, latency: u64) {
        let _ = (cycle, seq, latency);
    }

    /// An instruction's result wrote back.
    #[inline]
    fn on_writeback(&mut self, cycle: u64, seq: u64) {
        let _ = (cycle, seq);
    }

    /// An instruction committed (in order).
    #[inline]
    fn on_commit(&mut self, cycle: u64, seq: u64) {
        let _ = (cycle, seq);
    }

    /// A conditional branch resolved at commit.
    #[inline]
    fn on_branch_resolve(&mut self, cycle: u64, pc: u64, res: &BranchResolution) {
        let _ = (cycle, pc, res);
    }

    /// A full mispredict blocked fetch, with the in-flight instruction
    /// count at that moment.
    #[inline]
    fn on_mispredict(&mut self, cycle: u64, seq: u64, pc: u64, inflight: u32) {
        let _ = (cycle, seq, pc, inflight);
    }

    /// A mispredicted branch resolved and released fetch after
    /// `blocked_cycles` cycles — the mispredict recovery depth.
    #[inline]
    fn on_recovery(&mut self, cycle: u64, blocked_cycles: u64) {
        let _ = (cycle, blocked_cycles);
    }

    /// End-of-run cache/TLB totals (fired once by the run harness).
    #[inline]
    fn on_cache_stats(&mut self, snap: &CacheSnapshot) {
        let _ = snap;
    }
}

/// The default probe: observes nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;
}

/// Structural composition: a pair of probes is a probe forwarding every
/// hook to both halves (monomorphized — no dispatch).
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn on_cycle(&mut self, cycle: u64, rob_occupancy: u32) {
        self.0.on_cycle(cycle, rob_occupancy);
        self.1.on_cycle(cycle, rob_occupancy);
    }

    #[inline]
    fn on_fetch(&mut self, cycle: u64, seq: u64, pc: u64, is_branch: bool, is_load: bool) {
        self.0.on_fetch(cycle, seq, pc, is_branch, is_load);
        self.1.on_fetch(cycle, seq, pc, is_branch, is_load);
    }

    #[inline]
    fn on_ddt_insert(&mut self, cycle: u64, seq: u64, occupancy: u32) {
        self.0.on_ddt_insert(cycle, seq, occupancy);
        self.1.on_ddt_insert(cycle, seq, occupancy);
    }

    #[inline]
    fn on_chain_read(
        &mut self,
        cycle: u64,
        pc: u64,
        chain_len: u32,
        leaf_regs: u32,
        available: u32,
    ) {
        self.0
            .on_chain_read(cycle, pc, chain_len, leaf_regs, available);
        self.1
            .on_chain_read(cycle, pc, chain_len, leaf_regs, available);
    }

    #[inline]
    fn on_issue(&mut self, cycle: u64, issued: u32, width: u32) {
        self.0.on_issue(cycle, issued, width);
        self.1.on_issue(cycle, issued, width);
    }

    #[inline]
    fn on_mem_access(&mut self, cycle: u64, seq: u64, latency: u64) {
        self.0.on_mem_access(cycle, seq, latency);
        self.1.on_mem_access(cycle, seq, latency);
    }

    #[inline]
    fn on_writeback(&mut self, cycle: u64, seq: u64) {
        self.0.on_writeback(cycle, seq);
        self.1.on_writeback(cycle, seq);
    }

    #[inline]
    fn on_commit(&mut self, cycle: u64, seq: u64) {
        self.0.on_commit(cycle, seq);
        self.1.on_commit(cycle, seq);
    }

    #[inline]
    fn on_branch_resolve(&mut self, cycle: u64, pc: u64, res: &BranchResolution) {
        self.0.on_branch_resolve(cycle, pc, res);
        self.1.on_branch_resolve(cycle, pc, res);
    }

    #[inline]
    fn on_mispredict(&mut self, cycle: u64, seq: u64, pc: u64, inflight: u32) {
        self.0.on_mispredict(cycle, seq, pc, inflight);
        self.1.on_mispredict(cycle, seq, pc, inflight);
    }

    #[inline]
    fn on_recovery(&mut self, cycle: u64, blocked_cycles: u64) {
        self.0.on_recovery(cycle, blocked_cycles);
        self.1.on_recovery(cycle, blocked_cycles);
    }

    #[inline]
    fn on_cache_stats(&mut self, snap: &CacheSnapshot) {
        self.0.on_cache_stats(snap);
        self.1.on_cache_stats(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting {
        cycles: u64,
        commits: u64,
    }

    impl Probe for Counting {
        fn on_cycle(&mut self, _c: u64, _r: u32) {
            self.cycles += 1;
        }
        fn on_commit(&mut self, _c: u64, _s: u64) {
            self.commits += 1;
        }
    }

    #[test]
    fn null_probe_is_disabled() {
        const { assert!(!NullProbe::ENABLED) };
        const { assert!(Counting::ENABLED) };
    }

    #[test]
    fn pair_forwards_to_both_halves() {
        let mut pair = (Counting::default(), Counting::default());
        pair.on_cycle(0, 3);
        pair.on_cycle(1, 4);
        pair.on_commit(1, 0);
        assert_eq!(pair.0.cycles, 2);
        assert_eq!(pair.1.cycles, 2);
        assert_eq!(pair.0.commits, 1);
        assert_eq!(pair.1.commits, 1);
        const { assert!(<(Counting, NullProbe) as Probe>::ENABLED) };
        const { assert!(!<(NullProbe, NullProbe) as Probe>::ENABLED) };
    }

    #[test]
    fn cache_snapshot_merges_elementwise() {
        let mut a = CacheSnapshot {
            l1i: (1, 2),
            l1d: (3, 4),
            l2: (5, 6),
            itlb: (7, 8),
            dtlb: (9, 10),
        };
        a.merge(&a.clone());
        assert_eq!(a.l1i, (2, 4));
        assert_eq!(a.dtlb, (18, 20));
        assert_eq!(a.rows()[2], ("l2", 10, 12));
    }

    #[test]
    fn resolution_accessors() {
        let r = BranchResolution {
            actual: true,
            final_taken: true,
            l1_taken: false,
            confident: false,
            override_fired: true,
            bvit_hit: true,
            load_class: Some(false),
        };
        assert!(r.final_correct());
        assert!(!r.l1_correct());
    }
}

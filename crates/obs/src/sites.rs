//! Per-static-branch (per-PC) attribution.

use crate::{BranchResolution, Probe};

/// Default site-table capacity (power of two). The SPEC-like synthetic
/// suite has a few hundred static branches per workload; 8192 leaves an
/// order of magnitude of headroom before sites are dropped.
pub const DEFAULT_SITE_CAPACITY: usize = 8192;

/// Accumulated outcomes of one static branch site.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteStats {
    /// The branch PC (byte address).
    pub pc: u64,
    /// Dynamic executions.
    pub total: u64,
    /// Followed direction correct.
    pub final_correct: u64,
    /// Level-1 direction correct (the no-L2 baseline).
    pub l1_correct: u64,
    /// L2 overrides fired.
    pub overrides: u64,
    /// Overrides that corrected a wrong L1 direction.
    pub overrides_correcting: u64,
    /// Rated high-confidence by the estimator.
    pub confident: u64,
    /// High-confidence *and* finally wrong — the estimator's worst
    /// failure mode (confidence pins the L1 result).
    pub confident_wrong: u64,
    /// ARVI BVIT hits.
    pub bvit_hits: u64,
    /// ARVI load-class instances.
    pub load_class: u64,
}

impl SiteStats {
    /// Final mispredicts at this site.
    pub fn mispredicts(&self) -> u64 {
        self.total - self.final_correct
    }

    /// Final-direction accuracy.
    pub fn final_accuracy(&self) -> f64 {
        rate(self.final_correct, self.total)
    }

    /// Level-1-only accuracy (what the site would score without ARVI).
    pub fn l1_accuracy(&self) -> f64 {
        rate(self.l1_correct, self.total)
    }

    /// Fraction of executions that were confident-but-wrong.
    pub fn confident_wrong_rate(&self) -> f64 {
        rate(self.confident_wrong, self.total)
    }
}

fn rate(n: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        n as f64 / total as f64
    }
}

/// Per-branch-PC attribution over a fixed open-addressed table: which
/// sites mispredict, whether ARVI beats the level-1 baseline there, and
/// where the confidence estimator pins wrong answers. Allocation
/// happens once at construction; recording is allocation-free.
#[derive(Debug, Clone)]
pub struct SiteProbe {
    slots: Box<[SiteStats]>,
    mask: usize,
    /// Distinct sites recorded.
    pub sites: usize,
    /// Resolutions dropped because the table was full.
    pub dropped: u64,
}

impl Default for SiteProbe {
    fn default() -> SiteProbe {
        SiteProbe::with_capacity(DEFAULT_SITE_CAPACITY)
    }
}

impl SiteProbe {
    /// A probe with the default site capacity.
    pub fn new() -> SiteProbe {
        SiteProbe::default()
    }

    /// A probe tracking at most `capacity` (rounded up to a power of
    /// two) distinct sites.
    pub fn with_capacity(capacity: usize) -> SiteProbe {
        let cap = capacity.next_power_of_two().max(16);
        SiteProbe {
            slots: vec![SiteStats::default(); cap].into_boxed_slice(),
            mask: cap - 1,
            sites: 0,
            dropped: 0,
        }
    }

    /// The slot for `pc`, inserting if absent; `None` when the table is
    /// full. Linear probing; empty slots have `total == 0`.
    #[inline]
    fn slot_for(&mut self, pc: u64) -> Option<&mut SiteStats> {
        // Fibonacci hash spreads consecutive word PCs across the table.
        let mut i = (pc.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize & self.mask;
        for _ in 0..=self.mask {
            let s = &self.slots[i];
            if s.total == 0 {
                self.sites += 1;
                let s = &mut self.slots[i];
                s.pc = pc;
                return Some(s);
            }
            if s.pc == pc {
                return Some(&mut self.slots[i]);
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Adds a whole [`SiteStats`] record into the table, inserting the
    /// PC if absent. Returns `false` — charging `stats.total` to
    /// [`SiteProbe::dropped`] instead — when the table is full and the
    /// PC is not already present. Records with `total == 0` are no-ops
    /// (an empty slot is the `total == 0` sentinel, so they carry no
    /// information anyway).
    pub fn record_stats(&mut self, stats: &SiteStats) -> bool {
        if stats.total == 0 {
            return true;
        }
        match self.slot_for(stats.pc) {
            Some(s) => {
                s.total += stats.total;
                s.final_correct += stats.final_correct;
                s.l1_correct += stats.l1_correct;
                s.overrides += stats.overrides;
                s.overrides_correcting += stats.overrides_correcting;
                s.confident += stats.confident;
                s.confident_wrong += stats.confident_wrong;
                s.bvit_hits += stats.bvit_hits;
                s.load_class += stats.load_class;
                true
            }
            None => {
                self.dropped = self.dropped.saturating_add(stats.total);
                false
            }
        }
    }

    /// Open-addressed table union: adds every site of `other` into
    /// `self`, inserting PCs that are absent. Drop accounting saturates
    /// and never loses resolutions silently — `other`'s already-dropped
    /// count carries over, and sites that no longer fit in `self` charge
    /// their executions to [`SiteProbe::dropped`].
    pub fn merge(&mut self, other: &SiteProbe) {
        self.dropped = self.dropped.saturating_add(other.dropped);
        for s in other.iter() {
            self.record_stats(s);
        }
    }

    /// All recorded sites (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &SiteStats> {
        self.slots.iter().filter(|s| s.total > 0)
    }

    /// The `n` sites with the most final mispredicts, worst first
    /// (ties broken by PC for determinism).
    pub fn top_sites(&self, n: usize) -> Vec<SiteStats> {
        let mut all: Vec<SiteStats> = self.iter().copied().collect();
        all.sort_by(|a, b| b.mispredicts().cmp(&a.mispredicts()).then(a.pc.cmp(&b.pc)));
        all.truncate(n);
        all
    }

    /// Markdown table of the top `n` mispredicting sites.
    pub fn to_markdown(&self, n: usize) -> String {
        let mut out = String::from(
            "| pc | executed | mispredicts | final acc | l1 acc | overrides (correcting) \
             | conf-wrong | bvit hits | load-class |\n|---|---|---|---|---|---|---|---|---|\n",
        );
        for s in self.top_sites(n) {
            out.push_str(&format!(
                "| 0x{:x} | {} | {} | {:.2}% | {:.2}% | {} ({}) | {:.2}% | {} | {} |\n",
                s.pc,
                s.total,
                s.mispredicts(),
                s.final_accuracy() * 100.0,
                s.l1_accuracy() * 100.0,
                s.overrides,
                s.overrides_correcting,
                s.confident_wrong_rate() * 100.0,
                s.bvit_hits,
                s.load_class,
            ));
        }
        out.push_str(&format!(
            "\n{} distinct sites ({} resolutions dropped, table capacity {})\n",
            self.sites,
            self.dropped,
            self.mask + 1
        ));
        out
    }

    /// Compact JSON: `{"sites":..,"dropped":..,"top":[{..},..]}` for
    /// the top `n` sites.
    pub fn to_json(&self, n: usize) -> String {
        let mut out = format!(
            "{{\"sites\":{},\"dropped\":{},\"top\":[",
            self.sites, self.dropped
        );
        for (i, s) in self.top_sites(n).into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pc\":{},\"total\":{},\"mispredicts\":{},\"final_correct\":{},\
                 \"l1_correct\":{},\"overrides\":{},\"overrides_correcting\":{},\
                 \"confident\":{},\"confident_wrong\":{},\"bvit_hits\":{},\"load_class\":{}}}",
                s.pc,
                s.total,
                s.mispredicts(),
                s.final_correct,
                s.l1_correct,
                s.overrides,
                s.overrides_correcting,
                s.confident,
                s.confident_wrong,
                s.bvit_hits,
                s.load_class,
            ));
        }
        out.push_str("]}");
        out
    }
}

impl Probe for SiteProbe {
    #[inline]
    fn on_branch_resolve(&mut self, _cycle: u64, pc: u64, res: &BranchResolution) {
        let Some(s) = self.slot_for(pc) else {
            self.dropped += 1;
            return;
        };
        s.total += 1;
        s.final_correct += res.final_correct() as u64;
        s.l1_correct += res.l1_correct() as u64;
        s.overrides += res.override_fired as u64;
        s.overrides_correcting +=
            (res.override_fired && res.final_correct() && !res.l1_correct()) as u64;
        s.confident += res.confident as u64;
        s.confident_wrong += (res.confident && !res.final_correct()) as u64;
        s.bvit_hits += res.bvit_hit as u64;
        s.load_class += res.load_class.unwrap_or(false) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(actual: bool, l1: bool, fin: bool, confident: bool) -> BranchResolution {
        BranchResolution {
            actual,
            final_taken: fin,
            l1_taken: l1,
            confident,
            override_fired: l1 != fin,
            bvit_hit: true,
            load_class: Some(false),
        }
    }

    #[test]
    fn attribution_per_site() {
        let mut p = SiteProbe::with_capacity(16);
        // Site A: L1 wrong, ARVI corrects (override fires).
        for _ in 0..10 {
            p.on_branch_resolve(0, 0x40, &res(true, false, true, false));
        }
        // Site B: confidently wrong twice.
        for _ in 0..2 {
            p.on_branch_resolve(0, 0x80, &res(true, false, false, true));
        }
        assert_eq!(p.sites, 2);
        let top = p.top_sites(10);
        assert_eq!(top[0].pc, 0x80, "most mispredicts first");
        assert_eq!(top[0].confident_wrong, 2);
        assert_eq!(top[1].pc, 0x40);
        assert_eq!(top[1].mispredicts(), 0);
        assert_eq!(top[1].overrides_correcting, 10);
        assert!((top[1].l1_accuracy() - 0.0).abs() < 1e-9);
        assert!((top[1].final_accuracy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_table_drops_new_sites_not_old() {
        let mut p = SiteProbe::with_capacity(16);
        for pc in 0..40u64 {
            p.on_branch_resolve(0, pc * 4, &res(true, true, true, true));
        }
        assert_eq!(p.sites, 16);
        assert_eq!(p.dropped, 24);
        // Existing sites still record.
        let known = p.iter().next().unwrap().pc;
        let before = p.iter().find(|s| s.pc == known).unwrap().total;
        p.on_branch_resolve(0, known, &res(true, true, true, true));
        assert_eq!(p.iter().find(|s| s.pc == known).unwrap().total, before + 1);
    }

    #[test]
    fn merge_unions_tables() {
        let mut a = SiteProbe::with_capacity(16);
        let mut b = SiteProbe::with_capacity(16);
        for _ in 0..3 {
            a.on_branch_resolve(0, 0x40, &res(true, false, true, false));
        }
        for _ in 0..5 {
            b.on_branch_resolve(0, 0x40, &res(true, true, true, true));
        }
        b.on_branch_resolve(0, 0x80, &res(true, false, false, true));
        b.dropped = 7;
        a.merge(&b);
        assert_eq!(a.sites, 2);
        assert_eq!(a.dropped, 7, "other's drops carry over");
        let shared = a.iter().find(|s| s.pc == 0x40).unwrap();
        assert_eq!(shared.total, 8);
        assert_eq!(shared.final_correct, 8);
        assert_eq!(shared.l1_correct, 5);
        assert_eq!(shared.overrides, 3);
        assert_eq!(shared.confident, 5);
        let new = a.iter().find(|s| s.pc == 0x80).unwrap();
        assert_eq!(new.total, 1);
        assert_eq!(new.confident_wrong, 1);
    }

    #[test]
    fn merge_into_full_table_counts_drops() {
        let mut a = SiteProbe::with_capacity(16);
        for pc in 0..16u64 {
            a.on_branch_resolve(0, pc * 4, &res(true, true, true, true));
        }
        assert_eq!(a.sites, 16);
        let mut b = SiteProbe::with_capacity(16);
        // One PC already in `a`, one that cannot fit.
        for _ in 0..2 {
            b.on_branch_resolve(0, 0, &res(true, true, true, true));
        }
        for _ in 0..9 {
            b.on_branch_resolve(0, 0x9000, &res(true, true, true, true));
        }
        a.merge(&b);
        assert_eq!(a.sites, 16);
        assert_eq!(a.dropped, 9, "unfittable site's executions are charged");
        assert_eq!(a.iter().find(|s| s.pc == 0).unwrap().total, 3);
    }

    #[test]
    fn record_stats_ignores_empty() {
        let mut a = SiteProbe::with_capacity(16);
        assert!(a.record_stats(&SiteStats::default()));
        assert_eq!(a.sites, 0);
    }

    #[test]
    fn renders() {
        let mut p = SiteProbe::new();
        p.on_branch_resolve(0, 0x40, &res(true, false, false, false));
        let md = p.to_markdown(5);
        assert!(md.contains("0x40"), "{md}");
        let json = p.to_json(5);
        assert!(json.contains("\"pc\":64"), "{json}");
        assert!(json.starts_with("{\"sites\":1,\"dropped\":0"), "{json}");
    }
}

//! Bounded-window event tracing in Chrome `about:tracing` JSON.
//!
//! A [`ChromeTracer`] watches a cycle range `[start, end)` and emits one
//! complete ("X") event per instruction that commits inside the window
//! (span = fetch cycle to commit cycle), instant ("i") events for
//! mispredicts and recoveries, and counter ("C") series for ROB
//! occupancy and issue width. The output loads directly into
//! `chrome://tracing` or Perfetto; cycles are mapped to microseconds
//! 1:1 so the timeline reads in cycles.

use crate::Probe;

/// Event capacity cap: ~64k events keeps the JSON in the tens of MB at
/// worst. Past the cap events are dropped and counted.
const DEFAULT_EVENT_CAP: usize = 1 << 16;

/// In-flight ring size (power of two); must cover the ROB (256 entries)
/// plus fetch-to-rename skid.
const INFLIGHT_RING: usize = 1 << 10;

/// Instruction spans are spread over this many timeline rows so
/// overlapping lifetimes render side by side instead of stacking.
const SPAN_ROWS: u64 = 16;

#[derive(Debug, Clone, Copy, Default)]
struct Inflight {
    seq: u64,
    fetch_cycle: u64,
    pc: u64,
    is_branch: bool,
    is_load: bool,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Instruction lifetime: fetch..=commit.
    Span {
        seq: u64,
        pc: u64,
        start: u64,
        dur: u64,
        is_branch: bool,
        is_load: bool,
    },
    /// A full mispredict blocked fetch.
    Mispredict { cycle: u64, seq: u64, pc: u64 },
    /// Fetch released after a mispredict.
    Recovery { cycle: u64, blocked: u64 },
    /// Per-cycle counter sample.
    Counter { cycle: u64, rob: u32 },
    /// Issue-stage sample.
    Issue { cycle: u64, issued: u32 },
}

/// A probe that records pipeline events inside a cycle window and
/// renders them as Chrome trace JSON. Event storage is pre-allocated at
/// construction; when full, further events are dropped (and counted)
/// rather than reallocating on the hot path.
#[derive(Debug, Clone)]
pub struct ChromeTracer {
    start: u64,
    end: u64,
    events: Vec<Event>,
    inflight: Box<[Inflight]>,
    /// Events not recorded because the buffer filled.
    pub dropped: u64,
    /// Process id stamped on every event (distinguishes workloads when
    /// several tracers merge into one file).
    pub pid: u32,
}

impl Default for ChromeTracer {
    fn default() -> ChromeTracer {
        ChromeTracer::new(0, u64::MAX)
    }
}

impl ChromeTracer {
    /// A tracer for the cycle window `[start, end)` with the default
    /// event capacity.
    pub fn new(start: u64, end: u64) -> ChromeTracer {
        ChromeTracer::with_capacity(start, end, DEFAULT_EVENT_CAP)
    }

    /// A tracer with an explicit event-buffer capacity.
    pub fn with_capacity(start: u64, end: u64, cap: usize) -> ChromeTracer {
        ChromeTracer {
            start,
            end,
            events: Vec::with_capacity(cap),
            inflight: vec![Inflight::default(); INFLIGHT_RING].into_boxed_slice(),
            dropped: 0,
            pid: 0,
        }
    }

    /// The traced window as `(start, end)`.
    pub fn window(&self) -> (u64, u64) {
        (self.start, self.end)
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    #[inline]
    fn in_window(&self, cycle: u64) -> bool {
        cycle >= self.start && cycle < self.end
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        if self.events.len() < self.events.capacity() {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Renders this tracer's events as a complete Chrome trace document
    /// `{"traceEvents":[...]}`.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        self.render_events_into(&mut out, &mut first, None);
        out.push_str("]}");
        out
    }

    /// Appends this tracer's events (comma-separated JSON objects, no
    /// enclosing array) to `out`. `first` tracks whether a comma is
    /// needed; `process_name`, when given, emits a process-name metadata
    /// event so merged multi-workload traces are labelled.
    pub fn render_events_into(
        &self,
        out: &mut String,
        first: &mut bool,
        process_name: Option<&str>,
    ) {
        let mut emit = |out: &mut String, s: &str| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(s);
        };
        if let Some(name) = process_name {
            emit(
                out,
                &format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    self.pid,
                    escape(name)
                ),
            );
        }
        for ev in &self.events {
            match *ev {
                Event::Span {
                    seq,
                    pc,
                    start,
                    dur,
                    is_branch,
                    is_load,
                } => {
                    let kind = if is_branch {
                        "branch"
                    } else if is_load {
                        "mem"
                    } else {
                        "alu"
                    };
                    emit(
                        out,
                        &format!(
                            "{{\"name\":\"0x{pc:x}\",\"cat\":\"{kind}\",\"ph\":\"X\",\
                             \"ts\":{start},\"dur\":{dur},\"pid\":{},\"tid\":{},\
                             \"args\":{{\"seq\":{seq}}}}}",
                            self.pid,
                            1 + seq % SPAN_ROWS
                        ),
                    );
                }
                Event::Mispredict { cycle, seq, pc } => emit(
                    out,
                    &format!(
                        "{{\"name\":\"mispredict 0x{pc:x}\",\"cat\":\"branch\",\"ph\":\"i\",\
                         \"s\":\"p\",\"ts\":{cycle},\"pid\":{},\"tid\":0,\
                         \"args\":{{\"seq\":{seq}}}}}",
                        self.pid
                    ),
                ),
                Event::Recovery { cycle, blocked } => emit(
                    out,
                    &format!(
                        "{{\"name\":\"recovery\",\"cat\":\"branch\",\"ph\":\"i\",\
                         \"s\":\"p\",\"ts\":{cycle},\"pid\":{},\"tid\":0,\
                         \"args\":{{\"blocked_cycles\":{blocked}}}}}",
                        self.pid
                    ),
                ),
                Event::Counter { cycle, rob } => emit(
                    out,
                    &format!(
                        "{{\"name\":\"rob\",\"ph\":\"C\",\"ts\":{cycle},\"pid\":{},\
                         \"args\":{{\"occupancy\":{rob}}}}}",
                        self.pid
                    ),
                ),
                Event::Issue { cycle, issued } => emit(
                    out,
                    &format!(
                        "{{\"name\":\"issue\",\"ph\":\"C\",\"ts\":{cycle},\"pid\":{},\
                         \"args\":{{\"issued\":{issued}}}}}",
                        self.pid
                    ),
                ),
            }
        }
    }

    /// Merges several tracers (e.g. one per workload) into one Chrome
    /// trace document, labelling each with its name.
    pub fn render_merged<'a>(
        tracers: impl IntoIterator<Item = (&'a str, &'a ChromeTracer)>,
    ) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (name, t) in tracers {
            t.render_events_into(&mut out, &mut first, Some(name));
        }
        out.push_str("]}");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Probe for ChromeTracer {
    #[inline]
    fn on_cycle(&mut self, cycle: u64, rob_occupancy: u32) {
        if self.in_window(cycle) {
            self.push(Event::Counter {
                cycle,
                rob: rob_occupancy,
            });
        }
    }

    #[inline]
    fn on_fetch(&mut self, cycle: u64, seq: u64, pc: u64, is_branch: bool, is_load: bool) {
        // Track every fetch (cheap ring write) so an instruction fetched
        // just before the window still gets a span if it commits inside.
        self.inflight[(seq as usize) & (INFLIGHT_RING - 1)] = Inflight {
            seq,
            fetch_cycle: cycle,
            pc,
            is_branch,
            is_load,
        };
    }

    #[inline]
    fn on_issue(&mut self, cycle: u64, issued: u32, _width: u32) {
        if self.in_window(cycle) {
            self.push(Event::Issue { cycle, issued });
        }
    }

    #[inline]
    fn on_commit(&mut self, cycle: u64, seq: u64) {
        if !self.in_window(cycle) {
            return;
        }
        let rec = self.inflight[(seq as usize) & (INFLIGHT_RING - 1)];
        if rec.seq != seq {
            return; // overwritten or fetched before tracing began
        }
        self.push(Event::Span {
            seq,
            pc: rec.pc,
            start: rec.fetch_cycle,
            dur: cycle - rec.fetch_cycle + 1,
            is_branch: rec.is_branch,
            is_load: rec.is_load,
        });
    }

    #[inline]
    fn on_mispredict(&mut self, cycle: u64, seq: u64, pc: u64, _inflight: u32) {
        if self.in_window(cycle) {
            self.push(Event::Mispredict { cycle, seq, pc });
        }
    }

    #[inline]
    fn on_recovery(&mut self, cycle: u64, blocked_cycles: u64) {
        if self.in_window(cycle) {
            self.push(Event::Recovery {
                cycle,
                blocked: blocked_cycles,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_fetch_to_commit() {
        let mut t = ChromeTracer::new(10, 100);
        t.on_fetch(8, 1, 0x40, false, true);
        t.on_commit(12, 1); // fetched before window, commits inside
        t.on_fetch(20, 2, 0x44, true, false);
        t.on_commit(200, 2); // commits after window: no span
        assert_eq!(t.len(), 1);
        let json = t.render();
        assert!(json.contains("\"ts\":8"), "{json}");
        assert!(json.contains("\"dur\":5"), "{json}");
        assert!(json.contains("\"cat\":\"mem\""), "{json}");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn window_filters_instants_and_counters() {
        let mut t = ChromeTracer::new(10, 20);
        t.on_cycle(5, 1);
        t.on_cycle(15, 2);
        t.on_mispredict(25, 0, 0x40, 3);
        t.on_recovery(15, 7);
        t.on_issue(15, 3, 4);
        assert_eq!(t.len(), 3); // counter@15, recovery@15, issue@15
        let json = t.render();
        assert!(json.contains("\"blocked_cycles\":7"), "{json}");
        assert!(!json.contains("mispredict"), "{json}");
    }

    #[test]
    fn capacity_cap_drops_and_counts() {
        let mut t = ChromeTracer::with_capacity(0, u64::MAX, 4);
        for c in 0..10 {
            t.on_cycle(c, 1);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped, 6);
    }

    #[test]
    fn merged_traces_carry_process_names() {
        let mut a = ChromeTracer::new(0, 10);
        a.pid = 1;
        a.on_cycle(1, 2);
        let mut b = ChromeTracer::new(0, 10);
        b.pid = 2;
        b.on_cycle(2, 3);
        let json = ChromeTracer::render_merged([("loop\"y", &a), ("gap", &b)]);
        assert!(json.contains("\"process_name\""), "{json}");
        assert!(json.contains("loop\\\"y"), "{json}");
        assert!(json.contains("\"pid\":2"), "{json}");
        // Valid JSON shape: balanced outer object.
        assert!(json.starts_with("{\"traceEvents\":[") && json.ends_with("]}"));
    }
}

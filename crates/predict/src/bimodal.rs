//! Bimodal (per-PC 2-bit counter) predictor.

use crate::packed::PackedCounters;
use crate::traits::{DirectionPredictor, Prediction};

/// The classic bimodal predictor: a direct-mapped table of 2-bit saturating
/// counters indexed by the branch address, stored packed 32-per-word
/// ([`PackedCounters`]).
///
/// # Example
///
/// ```
/// use arvi_predict::{Bimodal, DirectionPredictor, traits::run_immediate};
/// let mut p = Bimodal::new(10);
/// // a fully biased branch converges to 100% after warmup
/// let stream = (0..100).map(|_| (64u64, true));
/// let (correct, total) = run_immediate(&mut p, stream);
/// assert!(correct >= total - 2);
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: PackedCounters,
    index_mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> Bimodal {
        assert!(
            (1..=28).contains(&index_bits),
            "index width {index_bits} unsupported"
        );
        let size = 1usize << index_bits;
        Bimodal {
            table: PackedCounters::new(size, 1),
            index_mask: (size - 1) as u64,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        // Instruction PCs are word aligned; drop the two zero bits.
        ((pc >> 2) & self.index_mask) as usize
    }

    /// The number of table entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a constructed predictor).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> Prediction {
        let idx = self.index(pc);
        Prediction {
            taken: self.table.is_set(idx),
            checkpoint: 0,
            banks: [idx as u32, 0, 0, 0],
        }
    }

    fn spec_push(&mut self, _taken: bool) {}

    fn update(&mut self, _pc: u64, pred: &Prediction, taken: bool) {
        self.table.update(pred.banks[0] as usize, taken);
    }

    fn storage_bits(&self) -> usize {
        self.table.storage_bits()
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::run_immediate;

    #[test]
    fn learns_bias_quickly() {
        let mut p = Bimodal::new(8);
        let (correct, total) = run_immediate(&mut p, (0..50).map(|_| (128u64, false)));
        assert!(correct >= total - 2, "{correct}/{total}");
    }

    #[test]
    fn alternating_pattern_is_hard() {
        // T,N,T,N ... defeats a 2-bit counter (at most ~50%).
        let mut p = Bimodal::new(8);
        let stream = (0..200).map(|i| (256u64, i % 2 == 0));
        let (correct, total) = run_immediate(&mut p, stream);
        assert!(correct <= total / 2 + 2, "{correct}/{total}");
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = Bimodal::new(8);
        // Branch A always taken, branch B always not-taken; both learnable.
        let stream = (0..100).flat_map(|_| [(0u64, true), (4u64, false)]);
        let (correct, total) = run_immediate(&mut p, stream);
        assert!(correct >= total - 4, "{correct}/{total}");
    }

    #[test]
    fn aliasing_wraps_modulo_table() {
        let p = Bimodal::new(4);
        assert_eq!(p.index(0), p.index(16 << 2));
    }

    #[test]
    fn prediction_carries_its_index() {
        let mut p = Bimodal::new(8);
        let pred = p.predict(0x40);
        assert_eq!(pred.banks[0] as usize, p.index(0x40));
        assert_eq!(pred.banks[1..], [0, 0, 0]);
    }

    #[test]
    fn storage_accounting() {
        // 4096 entries x 2 bits = 8192 bits = 1 KB (one paper L1 bank).
        let p = Bimodal::new(12);
        assert_eq!(p.storage_bits(), 8192);
    }
}

//! Branch confidence estimation.
//!
//! The paper (Section 5) filters which branches the ARVI second level may
//! override: "since the L1 hybrid is used to filter easily predicted highly
//! biased branches, a confidence estimator indicates whether the branch is
//! more difficult to predict and that the ARVI predictor should be used."
//! We implement the classic resetting-counter estimator (Jacobsen,
//! Rotenberg & Smith): a table of counters incremented on a correct L1
//! prediction and reset on a misprediction; a branch is *high confidence*
//! when its counter has reached a threshold.

use crate::counter::ResettingCounter;

/// Shape parameters for [`ConfidenceEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfidenceConfig {
    /// log2 of the number of table entries.
    pub index_bits: u32,
    /// Counter width in bits.
    pub counter_bits: u32,
    /// Counter value at or above which the branch is high-confidence.
    pub threshold: u8,
    /// Global-history bits XOR'd into the index (0 = PC-only).
    pub history_bits: u32,
}

impl Default for ConfidenceConfig {
    /// 1K entries of 4-bit resetting counters, threshold 8, 4 history bits —
    /// a conventional mid-size estimator.
    fn default() -> ConfidenceConfig {
        ConfidenceConfig {
            index_bits: 10,
            counter_bits: 4,
            threshold: 8,
            history_bits: 4,
        }
    }
}

/// Resetting-counter confidence estimator for the level-1 predictor.
///
/// # Example
///
/// ```
/// use arvi_predict::ConfidenceEstimator;
/// let mut ce = ConfidenceEstimator::new(Default::default());
/// for _ in 0..8 {
///     assert!(!ce.is_confident(64, 0));
///     ce.update(64, 0, true); // L1 was correct
/// }
/// assert!(ce.is_confident(64, 0));
/// ce.update(64, 0, false); // L1 mispredicted: confidence collapses
/// assert!(!ce.is_confident(64, 0));
/// ```
#[derive(Debug, Clone)]
pub struct ConfidenceEstimator {
    table: Vec<ResettingCounter>,
    cfg: ConfidenceConfig,
    mask: u64,
}

impl ConfidenceEstimator {
    /// Creates an estimator.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24, or the threshold is
    /// not representable in `counter_bits`.
    pub fn new(cfg: ConfidenceConfig) -> ConfidenceEstimator {
        assert!((1..=24).contains(&cfg.index_bits));
        let max = ((1u16 << cfg.counter_bits) - 1) as u8;
        assert!(
            cfg.threshold <= max,
            "threshold {} not representable in {} bits",
            cfg.threshold,
            cfg.counter_bits
        );
        let size = 1usize << cfg.index_bits;
        ConfidenceEstimator {
            table: vec![ResettingCounter::new(cfg.counter_bits); size],
            cfg,
            mask: (size - 1) as u64,
        }
    }

    #[inline]
    fn index(&self, pc: u64, history: u64) -> usize {
        let h = if self.cfg.history_bits == 0 {
            0
        } else {
            history & ((1u64 << self.cfg.history_bits) - 1)
        };
        (((pc >> 2) ^ (h << 3)) & self.mask) as usize
    }

    /// The table slot the branch at `pc` (under `history`) maps to.
    /// Callers that carry the slot from prediction to commit (the branch
    /// unit's decision record) avoid re-hashing at training time.
    #[inline]
    pub fn slot(&self, pc: u64, history: u64) -> u32 {
        self.index(pc, history) as u32
    }

    /// Whether the counter at `slot` has reached the high-confidence
    /// threshold.
    #[inline]
    pub fn is_confident_at(&self, slot: u32) -> bool {
        self.table[slot as usize].value() >= self.cfg.threshold
    }

    /// Trains the counter at `slot` with whether the level-1 prediction
    /// was correct.
    #[inline]
    pub fn update_at(&mut self, slot: u32, l1_correct: bool) {
        let ctr = &mut self.table[slot as usize];
        if l1_correct {
            ctr.increment();
        } else {
            ctr.reset();
        }
    }

    /// Whether the branch at `pc` (under `history`) is currently
    /// high-confidence for the level-1 predictor.
    pub fn is_confident(&self, pc: u64, history: u64) -> bool {
        self.is_confident_at(self.slot(pc, history))
    }

    /// Trains the estimator with whether the level-1 prediction was
    /// correct.
    pub fn update(&mut self, pc: u64, history: u64, l1_correct: bool) {
        self.update_at(self.slot(pc, history), l1_correct);
    }

    /// Table storage in bits.
    pub fn storage_bits(&self) -> usize {
        self.table.len() * self.cfg.counter_bits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_run_of_correct_predictions() {
        let mut ce = ConfidenceEstimator::new(ConfidenceConfig {
            threshold: 4,
            ..Default::default()
        });
        for i in 0..4 {
            assert!(!ce.is_confident(0, 0), "confident too early at step {i}");
            ce.update(0, 0, true);
        }
        assert!(ce.is_confident(0, 0));
    }

    #[test]
    fn misprediction_resets() {
        let mut ce = ConfidenceEstimator::new(Default::default());
        for _ in 0..15 {
            ce.update(0, 0, true);
        }
        assert!(ce.is_confident(0, 0));
        ce.update(0, 0, false);
        assert!(!ce.is_confident(0, 0));
    }

    #[test]
    fn history_differentiates_contexts() {
        let cfg = ConfidenceConfig {
            history_bits: 4,
            ..Default::default()
        };
        let mut ce = ConfidenceEstimator::new(cfg);
        for _ in 0..15 {
            ce.update(0, 0b0000, true);
        }
        assert!(ce.is_confident(0, 0b0000));
        assert!(!ce.is_confident(0, 0b1111));
    }

    #[test]
    #[should_panic(expected = "not representable")]
    fn threshold_must_fit() {
        let _ = ConfidenceEstimator::new(ConfidenceConfig {
            counter_bits: 2,
            threshold: 9,
            ..Default::default()
        });
    }

    #[test]
    fn storage_accounting() {
        let ce = ConfidenceEstimator::new(Default::default());
        assert_eq!(ce.storage_bits(), 1024 * 4);
    }
}

//! Saturating and resetting counters — the building blocks of every table
//! in this crate.

/// An `n`-bit saturating up/down counter (3-bit in the BVIT performance
/// counter; historically 2-bit in every predictor table, a role now
/// served by the packed storage in
/// [`PackedCounters`](crate::PackedCounters)).
///
/// # Example
///
/// ```
/// use arvi_predict::SatCounter;
/// let mut c = SatCounter::two_bit(); // 2-bit, weakly not-taken
/// assert!(!c.is_set());
/// c.increment();
/// assert!(c.is_set());
/// c.increment();
/// c.increment(); // saturates at 3
/// assert_eq!(c.value(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates a counter with `bits` width initialized to `initial`.
    ///
    /// Deprecated for new predictor tables: a scalar `SatCounter` spends
    /// two bytes (value plus a per-instance `max` that every 2-bit table
    /// replicates) on two bits of state. Pack tables with
    /// [`PackedCounters`](crate::PackedCounters) instead; this
    /// constructor remains for odd widths (the BVIT's 3-bit performance
    /// counter) and the preserved scalar baselines in `arvi-bench`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7, or if `initial` exceeds the
    /// maximum representable value.
    #[deprecated(note = "2-bit predictor tables should use PackedCounters; \
                SatCounter::new remains for odd widths (BVIT) and the \
                preserved scalar baselines")]
    pub fn new(bits: u32, initial: u8) -> SatCounter {
        assert!((1..=7).contains(&bits), "counter width {bits} unsupported");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        SatCounter {
            value: initial,
            max,
        }
    }

    /// A 2-bit counter initialized weakly not-taken (value 1).
    pub fn two_bit() -> SatCounter {
        #[allow(deprecated)]
        SatCounter::new(2, 1)
    }

    /// The current value.
    #[inline]
    pub fn value(self) -> u8 {
        self.value
    }

    /// The maximum (saturation) value.
    #[inline]
    pub fn max(self) -> u8 {
        self.max
    }

    /// True when the counter is in its upper half — the "taken" /
    /// "predict set" interpretation.
    #[inline]
    pub fn is_set(self) -> bool {
        self.value > self.max / 2
    }

    /// Saturating increment.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Moves the counter toward an outcome: increment when `toward` is
    /// true, decrement otherwise.
    #[inline]
    pub fn update(&mut self, toward: bool) {
        if toward {
            self.increment();
        } else {
            self.decrement();
        }
    }

    /// Strengthens the counter in its current direction (partial-update
    /// rule of 2Bc-gskew: correct banks are reinforced, not retrained).
    #[inline]
    pub fn strengthen(&mut self) {
        let set = self.is_set();
        self.update(set);
    }
}

/// A resetting counter: saturating increment, reset-to-zero on the other
/// event. Used by JRS-style confidence estimators — a run of `n` correct
/// predictions is required before a branch is deemed high-confidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResettingCounter {
    value: u8,
    max: u8,
}

impl ResettingCounter {
    /// Creates a zeroed counter with `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7.
    pub fn new(bits: u32) -> ResettingCounter {
        assert!((1..=7).contains(&bits), "counter width {bits} unsupported");
        ResettingCounter {
            value: 0,
            max: ((1u16 << bits) - 1) as u8,
        }
    }

    /// The current value.
    #[inline]
    pub fn value(self) -> u8 {
        self.value
    }

    /// Saturating increment (the "correct prediction" event).
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Reset to zero (the "misprediction" event).
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

#[cfg(test)]
#[allow(deprecated)] // the scalar constructor is exactly what is under test
mod tests {
    use super::*;

    #[test]
    fn two_bit_cycle() {
        let mut c = SatCounter::two_bit();
        assert_eq!(c.value(), 1);
        assert!(!c.is_set());
        c.increment();
        assert_eq!(c.value(), 2);
        assert!(c.is_set());
        c.increment();
        c.increment();
        assert_eq!(c.value(), 3); // saturated
        c.decrement();
        c.decrement();
        c.decrement();
        c.decrement();
        assert_eq!(c.value(), 0); // saturated at floor
    }

    #[test]
    fn hysteresis() {
        // From strongly-taken, one not-taken outcome must not flip the
        // prediction (the 2-bit counter property the paper relies on).
        let mut c = SatCounter::new(2, 3);
        c.update(false);
        assert!(c.is_set());
        c.update(false);
        assert!(!c.is_set());
    }

    #[test]
    fn strengthen_preserves_direction() {
        let mut c = SatCounter::new(2, 2);
        c.strengthen();
        assert_eq!(c.value(), 3);
        let mut d = SatCounter::new(2, 1);
        d.strengthen();
        assert_eq!(d.value(), 0);
    }

    #[test]
    fn three_bit_threshold() {
        let c = SatCounter::new(3, 4);
        assert!(c.is_set());
        let c = SatCounter::new(3, 3);
        assert!(!c.is_set());
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn zero_width_rejected() {
        let _ = SatCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn initial_out_of_range_rejected() {
        let _ = SatCounter::new(2, 4);
    }

    #[test]
    fn resetting_counter_behaviour() {
        let mut r = ResettingCounter::new(4);
        for _ in 0..20 {
            r.increment();
        }
        assert_eq!(r.value(), 15);
        r.reset();
        assert_eq!(r.value(), 0);
    }
}

//! Gshare: global-history XOR PC indexed 2-bit counters.

use crate::history::GlobalHistory;
use crate::packed::PackedCounters;
use crate::traits::{DirectionPredictor, Prediction};

/// The gshare predictor of McFarling: one packed table of 2-bit counters
/// indexed by `PC XOR global history`.
///
/// # Example
///
/// ```
/// use arvi_predict::{Gshare, traits::run_immediate};
/// // A period-4 pattern is unlearnable by bimodal but trivial with history.
/// let pattern = [true, true, false, true];
/// let stream = (0..400).map(|i| (64u64, pattern[i % 4]));
/// let mut p = Gshare::new(12, 8);
/// let (correct, total) = run_immediate(&mut p, stream);
/// assert!(correct as f64 / total as f64 > 0.95);
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: PackedCounters,
    index_mask: u64,
    history: GlobalHistory,
    history_len: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `2^index_bits` counters and
    /// `history_len` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28, or if `history_len`
    /// exceeds 64.
    pub fn new(index_bits: u32, history_len: u32) -> Gshare {
        assert!(
            (1..=28).contains(&index_bits),
            "index width {index_bits} unsupported"
        );
        assert!(
            history_len <= 64,
            "history length {history_len} unsupported"
        );
        let size = 1usize << index_bits;
        Gshare {
            table: PackedCounters::new(size, 1),
            index_mask: (size - 1) as u64,
            history: GlobalHistory::new(),
            history_len,
        }
    }

    #[inline]
    fn index(&self, pc: u64, history: u64) -> usize {
        let h = if self.history_len >= 64 {
            history
        } else if self.history_len == 0 {
            0
        } else {
            history & ((1u64 << self.history_len) - 1)
        };
        (((pc >> 2) ^ h) & self.index_mask) as usize
    }

    /// The current global history bits.
    pub fn history(&self) -> u64 {
        self.history.bits()
    }

    /// The counter value at `idx` (tests and diagnostics).
    pub fn counter(&self, idx: usize) -> u8 {
        self.table.get(idx)
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&mut self, pc: u64) -> Prediction {
        let checkpoint = self.history.bits();
        let idx = self.index(pc, checkpoint);
        Prediction {
            taken: self.table.is_set(idx),
            checkpoint,
            banks: [idx as u32, 0, 0, 0],
        }
    }

    fn spec_push(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn update(&mut self, _pc: u64, pred: &Prediction, taken: bool) {
        // The carried index is the one the prediction's checkpoint
        // resolved to — no second history hash at commit.
        self.table.update(pred.banks[0] as usize, taken);
    }

    fn storage_bits(&self) -> usize {
        self.table.storage_bits()
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::run_immediate;

    #[test]
    fn learns_periodic_pattern() {
        let pattern = [true, false, false, true, true, false];
        let stream = (0..600).map(|i| (1024u64, pattern[i % pattern.len()]));
        let mut p = Gshare::new(12, 10);
        let (correct, total) = run_immediate(&mut p, stream);
        assert!(
            correct as f64 / total as f64 > 0.9,
            "accuracy {correct}/{total}"
        );
    }

    #[test]
    fn update_uses_carried_index_not_current_history() {
        let mut p = Gshare::new(10, 8);
        let pred = p.predict(0);
        // History moves on before the delayed update.
        p.spec_push(true);
        p.spec_push(false);
        p.spec_push(true);
        p.update(0, &pred, true);
        // The entry trained must be the one the prediction resolved (and
        // carried), not one re-derived from the current history.
        let idx = p.index(0, pred.checkpoint);
        assert_eq!(pred.banks[0] as usize, idx);
        assert_eq!(p.table.get(idx), 2);
        let wrong_idx = p.index(0, p.history());
        assert_ne!(idx, wrong_idx, "test requires distinct indices");
        assert_eq!(p.table.get(wrong_idx), 1);
    }

    #[test]
    fn zero_history_degenerates_to_bimodal_indexing() {
        let p = Gshare::new(10, 0);
        assert_eq!(p.index(64, u64::MAX), p.index(64, 0));
    }

    #[test]
    fn storage_accounting() {
        let p = Gshare::new(12, 12);
        assert_eq!(p.storage_bits(), 8192);
    }
}

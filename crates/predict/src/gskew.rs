//! 2Bc-gskew — the Alpha EV8 hybrid predictor (Seznec, Felix, Krishnan &
//! Sazeides, ISCA 2002) used by the paper as both the level-1 and the
//! level-2 baseline predictor.
//!
//! Four banks of 2-bit counters:
//!
//! * **BIM** — bimodal, indexed by PC only;
//! * **G0**, **G1** — global-history banks with different history lengths
//!   and *skewed* index hash functions (distinct per-bank hashes decorrelate
//!   conflict aliasing);
//! * **META** — chooses between BIM alone and the e-gskew majority vote of
//!   {BIM, G0, G1}.
//!
//! The *partial update* policy is the one described for the EV8: on a
//! correct prediction only the banks that agreed with the outcome are
//! strengthened (and only those that participated in the prediction); on a
//! misprediction all three direction banks are retrained toward the
//! outcome. META trains toward the component (BIM vs majority) that was
//! correct whenever the two disagree.

use crate::counter::SatCounter;
use crate::history::GlobalHistory;
use crate::traits::{DirectionPredictor, Prediction};

/// Size/shape parameters for [`TwoBcGskew`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GskewConfig {
    /// log2 of entries per bank (each entry is a 2-bit counter).
    pub index_bits: u32,
    /// History length of the G0 bank.
    pub g0_history: u32,
    /// History length of the G1 bank.
    pub g1_history: u32,
    /// History length used by the META bank hash.
    pub meta_history: u32,
}

impl GskewConfig {
    /// The paper's level-1 configuration: four 1 KB banks (4096 2-bit
    /// counters each) for 4 KB total.
    pub fn level1() -> GskewConfig {
        GskewConfig {
            index_bits: 12,
            g0_history: 8,
            g1_history: 13,
            meta_history: 8,
        }
    }

    /// The paper's level-2 configuration: four 8 KB banks (32768 2-bit
    /// counters each) for 32 KB total, with longer histories.
    pub fn level2() -> GskewConfig {
        GskewConfig {
            index_bits: 15,
            g0_history: 11,
            g1_history: 17,
            meta_history: 11,
        }
    }
}

/// The 2Bc-gskew hybrid predictor.
///
/// # Example
///
/// ```
/// use arvi_predict::{TwoBcGskew, GskewConfig, traits::run_immediate};
/// let mut p = TwoBcGskew::new(GskewConfig::level1());
/// let pattern = [true, true, true, false];
/// let stream = (0..2000).map(|i| (512u64, pattern[i % 4]));
/// let (correct, total) = run_immediate(&mut p, stream);
/// assert!(correct as f64 / total as f64 > 0.95);
/// ```
#[derive(Debug, Clone)]
pub struct TwoBcGskew {
    bim: Vec<SatCounter>,
    g0: Vec<SatCounter>,
    g1: Vec<SatCounter>,
    meta: Vec<SatCounter>,
    cfg: GskewConfig,
    mask: u64,
    history: GlobalHistory,
}

/// Skewing hash: mixes PC and history with a bank-specific rotation so the
/// three banks map conflicting branches to different entries (the defining
/// property of skewed predictors).
#[inline]
fn skew_hash(pc: u64, hist: u64, hist_len: u32, bank: u32, mask: u64) -> usize {
    let h = if hist_len == 0 {
        0
    } else if hist_len >= 64 {
        hist
    } else {
        hist & ((1u64 << hist_len) - 1)
    };
    let a = pc >> 2;
    // Distinct odd multipliers per bank approximate the H/H^-1 skewing
    // functions of Seznec's original design.
    let mult: u64 = match bank {
        0 => 0x9E37_79B9_7F4A_7C15,
        1 => 0xC2B2_AE3D_27D4_EB4F,
        _ => 0x1656_67B1_9E37_79F9,
    };
    let mixed = (a ^ h.rotate_left(bank * 7 + 1)).wrapping_mul(mult);
    ((mixed >> 17) & mask) as usize
}

impl TwoBcGskew {
    /// Creates a predictor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 26.
    pub fn new(cfg: GskewConfig) -> TwoBcGskew {
        assert!(
            (1..=26).contains(&cfg.index_bits),
            "index width {} unsupported",
            cfg.index_bits
        );
        let size = 1usize << cfg.index_bits;
        TwoBcGskew {
            bim: vec![SatCounter::two_bit(); size],
            g0: vec![SatCounter::two_bit(); size],
            g1: vec![SatCounter::two_bit(); size],
            meta: vec![SatCounter::two_bit(); size],
            cfg,
            mask: (size - 1) as u64,
            history: GlobalHistory::new(),
        }
    }

    #[inline]
    fn indices(&self, pc: u64, hist: u64) -> [usize; 4] {
        [
            ((pc >> 2) & self.mask) as usize,
            skew_hash(pc, hist, self.cfg.g0_history, 1, self.mask),
            skew_hash(pc, hist, self.cfg.g1_history, 2, self.mask),
            skew_hash(pc, hist, self.cfg.meta_history, 0, self.mask),
        ]
    }

    /// The current global history bits.
    pub fn history(&self) -> u64 {
        self.history.bits()
    }

    /// Detailed component votes for a PC under the current history
    /// (exposed for tests and the predictor-anatomy example).
    pub fn component_votes(&self, pc: u64) -> (bool, bool, bool, bool) {
        let [bi, g0i, g1i, mi] = self.indices(pc, self.history.bits());
        (
            self.bim[bi].is_set(),
            self.g0[g0i].is_set(),
            self.g1[g1i].is_set(),
            self.meta[mi].is_set(),
        )
    }
}

impl DirectionPredictor for TwoBcGskew {
    fn predict(&mut self, pc: u64) -> Prediction {
        let checkpoint = self.history.bits();
        let [bi, g0i, g1i, mi] = self.indices(pc, checkpoint);
        let bim = self.bim[bi].is_set();
        let g0 = self.g0[g0i].is_set();
        let g1 = self.g1[g1i].is_set();
        let majority = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        let use_majority = self.meta[mi].is_set();
        Prediction {
            taken: if use_majority { majority } else { bim },
            checkpoint,
        }
    }

    fn spec_push(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn update(&mut self, pc: u64, checkpoint: u64, taken: bool) {
        let [bi, g0i, g1i, mi] = self.indices(pc, checkpoint);
        let bim = self.bim[bi].is_set();
        let g0 = self.g0[g0i].is_set();
        let g1 = self.g1[g1i].is_set();
        let majority = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        let use_majority = self.meta[mi].is_set();
        let pred = if use_majority { majority } else { bim };

        // META learns which component to trust whenever they disagree.
        if bim != majority {
            self.meta[mi].update(majority == taken);
        }

        if pred == taken {
            // Partial update: strengthen only the banks that agreed with
            // the outcome, and only within the component that predicted.
            if use_majority {
                if bim == taken {
                    self.bim[bi].strengthen();
                }
                if g0 == taken {
                    self.g0[g0i].strengthen();
                }
                if g1 == taken {
                    self.g1[g1i].strengthen();
                }
            } else {
                self.bim[bi].strengthen();
            }
        } else {
            // Misprediction: retrain all three direction banks.
            self.bim[bi].update(taken);
            self.g0[g0i].update(taken);
            self.g1[g1i].update(taken);
        }
    }

    fn storage_bits(&self) -> usize {
        (self.bim.len() + self.g0.len() + self.g1.len() + self.meta.len()) * 2
    }

    fn name(&self) -> &'static str {
        "2Bc-gskew"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::run_immediate;

    #[test]
    fn level1_storage_is_4_kb() {
        let p = TwoBcGskew::new(GskewConfig::level1());
        assert_eq!(p.storage_bits(), 4 * 4096 * 2); // 4 banks x 1KB
        assert_eq!(p.storage_bits() / 8, 4096);
    }

    #[test]
    fn level2_storage_is_32_kb() {
        let p = TwoBcGskew::new(GskewConfig::level2());
        assert_eq!(p.storage_bits() / 8, 32768);
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        let (correct, total) = run_immediate(&mut p, (0..100).map(|_| (64u64, true)));
        assert!(correct >= total - 4);
    }

    #[test]
    fn learns_history_pattern() {
        let pattern = [true, false, true, true, false, false];
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        let stream = (0..3000).map(|i| (2048u64, pattern[i % pattern.len()]));
        let (correct, total) = run_immediate(&mut p, stream);
        assert!(
            correct as f64 / total as f64 > 0.93,
            "accuracy {correct}/{total}"
        );
    }

    #[test]
    fn beats_bimodal_on_correlated_branches() {
        // Branch B's outcome equals branch A's previous outcome: pure
        // history correlation that bimodal cannot express.
        use crate::bimodal::Bimodal;
        let mut outcomes = Vec::new();
        let mut a_prev = false;
        for i in 0..4000usize {
            let a = (i / 3) % 2 == 0;
            outcomes.push((0u64, a));
            outcomes.push((4096u64, a_prev));
            a_prev = a;
        }
        let mut gskew = TwoBcGskew::new(GskewConfig::level1());
        let (gc, gt) = run_immediate(&mut gskew, outcomes.iter().copied());
        let mut bim = Bimodal::new(12);
        let (bc, _) = run_immediate(&mut bim, outcomes.iter().copied());
        assert!(gc > bc, "gskew {gc} vs bimodal {bc} of {gt}");
    }

    #[test]
    fn skewed_banks_use_different_indices() {
        let p = TwoBcGskew::new(GskewConfig::level1());
        let hist = 0b1011_0110_1010u64;
        let [_, g0, g1, _] = p.indices(0x4000, hist);
        assert_ne!(g0, g1);
    }

    #[test]
    fn update_with_checkpoint_trains_prediction_entries() {
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        let pr = p.predict(0x80);
        p.spec_push(true);
        p.spec_push(true);
        // Delayed update must not be affected by the history movement.
        let before = p.indices(0x80, pr.checkpoint);
        p.update(0x80, pr.checkpoint, true);
        let after = p.indices(0x80, pr.checkpoint);
        assert_eq!(before, after);
    }

    #[test]
    fn meta_converges_to_better_component() {
        // A branch whose outcome strictly alternates and is perfectly
        // captured by history banks but not by BIM: meta should learn to
        // select the majority component, lifting accuracy well above 50%.
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        let stream = (0..4000).map(|i| (8192u64, i % 2 == 0));
        let (correct, total) = run_immediate(&mut p, stream);
        assert!(
            correct as f64 / total as f64 > 0.9,
            "accuracy {correct}/{total}"
        );
    }
}

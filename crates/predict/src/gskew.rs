//! 2Bc-gskew — the Alpha EV8 hybrid predictor (Seznec, Felix, Krishnan &
//! Sazeides, ISCA 2002) used by the paper as both the level-1 and the
//! level-2 baseline predictor.
//!
//! Four banks of 2-bit counters:
//!
//! * **BIM** — bimodal, indexed by PC only;
//! * **G0**, **G1** — global-history banks with different history lengths
//!   and *skewed* index hash functions (distinct per-bank hashes decorrelate
//!   conflict aliasing);
//! * **META** — chooses between BIM alone and the e-gskew majority vote of
//!   {BIM, G0, G1}.
//!
//! The *partial update* policy is the one described for the EV8: on a
//! correct prediction only the banks that agreed with the outcome are
//! strengthened (and only those that participated in the prediction); on a
//! misprediction all three direction banks are retrained toward the
//! outcome. META trains toward the component (BIM vs majority) that was
//! correct whenever the two disagree.
//!
//! # Storage layout (PR 5)
//!
//! The four banks live in one bank-interleaved [`PackedCounters`] table:
//! the physical index of entry `i` of bank `b` is `(i << 2) | b`, so the
//! four counters sharing an entry index occupy one byte and a whole
//! 64-byte cache line holds 64 entry groups — where the previous
//! `Vec<SatCounter>`-of-structs layout spent two *bytes* per counter in
//! four separate allocations (an 8x density loss on every bank).
//! Predictions carry their resolved physical indices
//! ([`Prediction::banks`], order BIM/G0/G1/META), so the commit-time
//! update re-reads exactly the predicted entries without re-hashing.

use crate::history::GlobalHistory;
use crate::packed::PackedCounters;
use crate::traits::{DirectionPredictor, Prediction};

/// Size/shape parameters for [`TwoBcGskew`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GskewConfig {
    /// log2 of entries per bank (each entry is a 2-bit counter).
    pub index_bits: u32,
    /// History length of the G0 bank.
    pub g0_history: u32,
    /// History length of the G1 bank.
    pub g1_history: u32,
    /// History length used by the META bank hash.
    pub meta_history: u32,
}

impl GskewConfig {
    /// The paper's level-1 configuration: four 1 KB banks (4096 2-bit
    /// counters each) for 4 KB total.
    pub fn level1() -> GskewConfig {
        GskewConfig {
            index_bits: 12,
            g0_history: 8,
            g1_history: 13,
            meta_history: 8,
        }
    }

    /// The paper's level-2 configuration: four 8 KB banks (32768 2-bit
    /// counters each) for 32 KB total, with longer histories.
    pub fn level2() -> GskewConfig {
        GskewConfig {
            index_bits: 15,
            g0_history: 11,
            g1_history: 17,
            meta_history: 11,
        }
    }
}

/// Bank tags in the interleaved layout (and in [`Prediction::banks`]).
const BIM: usize = 0;
const G0: usize = 1;
const G1: usize = 2;
const META: usize = 3;

/// The 2Bc-gskew hybrid predictor.
///
/// # Example
///
/// ```
/// use arvi_predict::{TwoBcGskew, GskewConfig, traits::run_immediate};
/// let mut p = TwoBcGskew::new(GskewConfig::level1());
/// let pattern = [true, true, true, false];
/// let stream = (0..2000).map(|i| (512u64, pattern[i % 4]));
/// let (correct, total) = run_immediate(&mut p, stream);
/// assert!(correct as f64 / total as f64 > 0.95);
/// ```
#[derive(Debug, Clone)]
pub struct TwoBcGskew {
    /// All four banks, bank-interleaved (see module docs).
    table: PackedCounters,
    cfg: GskewConfig,
    mask: u64,
    history: GlobalHistory,
}

/// Skewing hash: mixes PC and history with a bank-specific rotation so the
/// three banks map conflicting branches to different entries (the defining
/// property of skewed predictors).
#[inline]
fn skew_hash(pc: u64, hist: u64, hist_len: u32, bank: u32, mask: u64) -> usize {
    let h = if hist_len == 0 {
        0
    } else if hist_len >= 64 {
        hist
    } else {
        hist & ((1u64 << hist_len) - 1)
    };
    let a = pc >> 2;
    // Distinct odd multipliers per bank approximate the H/H^-1 skewing
    // functions of Seznec's original design.
    let mult: u64 = match bank {
        0 => 0x9E37_79B9_7F4A_7C15,
        1 => 0xC2B2_AE3D_27D4_EB4F,
        _ => 0x1656_67B1_9E37_79F9,
    };
    let mixed = (a ^ h.rotate_left(bank * 7 + 1)).wrapping_mul(mult);
    ((mixed >> 17) & mask) as usize
}

impl TwoBcGskew {
    /// Creates a predictor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 26.
    pub fn new(cfg: GskewConfig) -> TwoBcGskew {
        assert!(
            (1..=26).contains(&cfg.index_bits),
            "index width {} unsupported",
            cfg.index_bits
        );
        let size = 1usize << cfg.index_bits;
        TwoBcGskew {
            table: PackedCounters::new(4 * size, 1),
            cfg,
            mask: (size - 1) as u64,
            history: GlobalHistory::new(),
        }
    }

    /// Per-bank *entry* indices (pre-interleaving), BIM/G0/G1/META order.
    #[inline]
    fn entry_indices(&self, pc: u64, hist: u64) -> [usize; 4] {
        [
            ((pc >> 2) & self.mask) as usize,
            skew_hash(pc, hist, self.cfg.g0_history, 1, self.mask),
            skew_hash(pc, hist, self.cfg.g1_history, 2, self.mask),
            skew_hash(pc, hist, self.cfg.meta_history, 0, self.mask),
        ]
    }

    /// Physical (interleaved) indices into the packed table.
    #[inline]
    fn bank_indices(&self, pc: u64, hist: u64) -> [u32; 4] {
        let [bi, g0i, g1i, mi] = self.entry_indices(pc, hist);
        [
            ((bi << 2) | BIM) as u32,
            ((g0i << 2) | G0) as u32,
            ((g1i << 2) | G1) as u32,
            ((mi << 2) | META) as u32,
        ]
    }

    /// The current global history bits.
    pub fn history(&self) -> u64 {
        self.history.bits()
    }

    /// Detailed component votes for a PC under the current history
    /// (exposed for tests and the predictor-anatomy example).
    pub fn component_votes(&self, pc: u64) -> (bool, bool, bool, bool) {
        let banks = self.bank_indices(pc, self.history.bits());
        (
            self.table.is_set(banks[BIM] as usize),
            self.table.is_set(banks[G0] as usize),
            self.table.is_set(banks[G1] as usize),
            self.table.is_set(banks[META] as usize),
        )
    }
}

impl DirectionPredictor for TwoBcGskew {
    fn predict(&mut self, pc: u64) -> Prediction {
        let checkpoint = self.history.bits();
        let banks = self.bank_indices(pc, checkpoint);
        let bim = self.table.is_set(banks[BIM] as usize);
        let g0 = self.table.is_set(banks[G0] as usize);
        let g1 = self.table.is_set(banks[G1] as usize);
        let majority = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        let use_majority = self.table.is_set(banks[META] as usize);
        Prediction {
            taken: if use_majority { majority } else { bim },
            checkpoint,
            banks,
        }
    }

    fn spec_push(&mut self, taken: bool) {
        self.history.push(taken);
    }

    fn update(&mut self, _pc: u64, pred: &Prediction, taken: bool) {
        // The four physical indices computed at predict ride in `pred`;
        // the counters themselves are re-read here (they may have moved
        // since prediction — aliasing branches trained in between), which
        // is exactly what the checkpoint-re-hashing implementation did.
        let [bi, g0i, g1i, mi] = [
            pred.banks[BIM] as usize,
            pred.banks[G0] as usize,
            pred.banks[G1] as usize,
            pred.banks[META] as usize,
        ];
        let bim = self.table.is_set(bi);
        let g0 = self.table.is_set(g0i);
        let g1 = self.table.is_set(g1i);
        let majority = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        let use_majority = self.table.is_set(mi);
        let pred_dir = if use_majority { majority } else { bim };

        // META learns which component to trust whenever they disagree.
        if bim != majority {
            self.table.update(mi, majority == taken);
        }

        if pred_dir == taken {
            // Partial update: strengthen only the banks that agreed with
            // the outcome, and only within the component that predicted.
            if use_majority {
                if bim == taken {
                    self.table.strengthen(bi);
                }
                if g0 == taken {
                    self.table.strengthen(g0i);
                }
                if g1 == taken {
                    self.table.strengthen(g1i);
                }
            } else {
                self.table.strengthen(bi);
            }
        } else {
            // Misprediction: retrain all three direction banks.
            self.table.update(bi, taken);
            self.table.update(g0i, taken);
            self.table.update(g1i, taken);
        }
    }

    fn storage_bits(&self) -> usize {
        self.table.storage_bits()
    }

    fn name(&self) -> &'static str {
        "2Bc-gskew"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::run_immediate;

    #[test]
    fn level1_storage_is_4_kb() {
        let p = TwoBcGskew::new(GskewConfig::level1());
        assert_eq!(p.storage_bits(), 4 * 4096 * 2); // 4 banks x 1KB
        assert_eq!(p.storage_bits() / 8, 4096);
    }

    #[test]
    fn level2_storage_is_32_kb() {
        let p = TwoBcGskew::new(GskewConfig::level2());
        assert_eq!(p.storage_bits() / 8, 32768);
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        let (correct, total) = run_immediate(&mut p, (0..100).map(|_| (64u64, true)));
        assert!(correct >= total - 4);
    }

    #[test]
    fn learns_history_pattern() {
        let pattern = [true, false, true, true, false, false];
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        let stream = (0..3000).map(|i| (2048u64, pattern[i % pattern.len()]));
        let (correct, total) = run_immediate(&mut p, stream);
        assert!(
            correct as f64 / total as f64 > 0.93,
            "accuracy {correct}/{total}"
        );
    }

    #[test]
    fn beats_bimodal_on_correlated_branches() {
        // Branch B's outcome equals branch A's previous outcome: pure
        // history correlation that bimodal cannot express.
        use crate::bimodal::Bimodal;
        let mut outcomes = Vec::new();
        let mut a_prev = false;
        for i in 0..4000usize {
            let a = (i / 3) % 2 == 0;
            outcomes.push((0u64, a));
            outcomes.push((4096u64, a_prev));
            a_prev = a;
        }
        let mut gskew = TwoBcGskew::new(GskewConfig::level1());
        let (gc, gt) = run_immediate(&mut gskew, outcomes.iter().copied());
        let mut bim = Bimodal::new(12);
        let (bc, _) = run_immediate(&mut bim, outcomes.iter().copied());
        assert!(gc > bc, "gskew {gc} vs bimodal {bc} of {gt}");
    }

    #[test]
    fn skewed_banks_use_different_entry_indices() {
        let p = TwoBcGskew::new(GskewConfig::level1());
        let hist = 0b1011_0110_1010u64;
        let [_, g0, g1, _] = p.entry_indices(0x4000, hist);
        assert_ne!(g0, g1);
    }

    #[test]
    fn interleaving_keeps_banks_disjoint() {
        let p = TwoBcGskew::new(GskewConfig::level1());
        let banks = p.bank_indices(0x4000, 0b1011);
        for (b, &phys) in banks.iter().enumerate() {
            assert_eq!(phys as usize & 0b11, b, "bank tag in low bits");
            assert!((phys as usize) < p.table.len());
        }
    }

    #[test]
    fn update_with_carried_indices_trains_prediction_entries() {
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        let pr = p.predict(0x80);
        p.spec_push(true);
        p.spec_push(true);
        // Delayed update must train the entries the prediction resolved,
        // unaffected by the history movement.
        assert_eq!(pr.banks, p.bank_indices(0x80, pr.checkpoint));
        p.update(0x80, &pr, true);
        assert_eq!(pr.banks, p.bank_indices(0x80, pr.checkpoint));
    }

    #[test]
    fn meta_converges_to_better_component() {
        // A branch whose outcome strictly alternates and is perfectly
        // captured by history banks but not by BIM: meta should learn to
        // select the majority component, lifting accuracy well above 50%.
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        let stream = (0..4000).map(|i| (8192u64, i % 2 == 0));
        let (correct, total) = run_immediate(&mut p, stream);
        assert!(
            correct as f64 / total as f64 > 0.9,
            "accuracy {correct}/{total}"
        );
    }
}

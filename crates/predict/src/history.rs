//! Global branch history register.

/// A shift register of recent branch outcomes (1 = taken), newest in the
/// least-significant bit.
///
/// The simulator shifts the history *speculatively at fetch* with the
/// followed direction; because the trace-driven model fetches the correct
/// path, this is equivalent to speculative update with perfect repair —
/// the policy the EV8 predictor implements in hardware.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct GlobalHistory {
    bits: u64,
}

impl GlobalHistory {
    /// Creates an all-zero (all not-taken) history.
    pub fn new() -> GlobalHistory {
        GlobalHistory::default()
    }

    /// The raw history bits, newest outcome in bit 0.
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// The newest `len` outcomes (`len <= 64`).
    #[inline]
    pub fn low(self, len: u32) -> u64 {
        if len == 0 {
            0
        } else if len >= 64 {
            self.bits
        } else {
            self.bits & ((1u64 << len) - 1)
        }
    }

    /// Shifts in a new outcome.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.bits = (self.bits << 1) | taken as u64;
    }

    /// Restores a checkpointed history value (misprediction repair).
    #[inline]
    pub fn restore(&mut self, bits: u64) {
        self.bits = bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_order_is_lsb_newest() {
        let mut h = GlobalHistory::new();
        h.push(true);
        h.push(false);
        h.push(true);
        assert_eq!(h.bits() & 0b111, 0b101);
    }

    #[test]
    fn low_masks() {
        let mut h = GlobalHistory::new();
        for _ in 0..10 {
            h.push(true);
        }
        assert_eq!(h.low(4), 0b1111);
        assert_eq!(h.low(0), 0);
        assert_eq!(h.low(64), h.bits());
    }

    #[test]
    fn restore_round_trips() {
        let mut h = GlobalHistory::new();
        h.push(true);
        let ckpt = h.bits();
        h.push(false);
        h.restore(ckpt);
        assert_eq!(h.bits(), ckpt);
    }
}

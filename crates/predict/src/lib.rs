//! # arvi-predict
//!
//! Baseline dynamic branch direction predictors for the ARVI reproduction
//! (Chen, Dropsho & Albonesi, HPCA 2003):
//!
//! * [`Bimodal`] — per-PC 2-bit saturating counters.
//! * [`Gshare`] — global history XOR PC indexed counters.
//! * [`Local`] — two-level local-history predictor.
//! * [`TwoBcGskew`] — the Alpha EV8-style hybrid (Seznec et al., ISCA 2002)
//!   the paper uses for both predictor levels of its baseline: BIM/G0/G1
//!   banks with skewed indexing, majority vote, a meta chooser and partial
//!   update.
//! * [`ConfidenceEstimator`] — resetting-counter confidence table used to
//!   decide when the ARVI second level should override the first level.
//!
//! All predictors implement [`DirectionPredictor`]: `predict` returns the
//! direction *and* a checkpoint of the indexing state (the global history
//! at prediction time) which callers hand back to `update`, so that delayed
//! (commit-time) updates index the same table entries the prediction used —
//! as the real hardware's history checkpointing does.

pub mod bimodal;
pub mod confidence;
pub mod counter;
pub mod gshare;
pub mod gskew;
pub mod history;
pub mod local;
pub mod traits;
pub mod value;

pub use bimodal::Bimodal;
pub use confidence::{ConfidenceConfig, ConfidenceEstimator};
pub use counter::{ResettingCounter, SatCounter};
pub use gshare::Gshare;
pub use gskew::{GskewConfig, TwoBcGskew};
pub use history::GlobalHistory;
pub use local::Local;
pub use traits::{DirectionPredictor, Prediction};
pub use value::{LastValue, Stride};

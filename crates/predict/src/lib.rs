//! # arvi-predict
//!
//! Baseline dynamic branch direction predictors for the ARVI reproduction
//! (Chen, Dropsho & Albonesi, HPCA 2003):
//!
//! * [`Bimodal`] — per-PC 2-bit saturating counters.
//! * [`Gshare`] — global history XOR PC indexed counters.
//! * [`Local`] — two-level local-history predictor.
//! * [`TwoBcGskew`] — the Alpha EV8-style hybrid (Seznec et al., ISCA 2002)
//!   the paper uses for both predictor levels of its baseline: BIM/G0/G1
//!   banks with skewed indexing, majority vote, a meta chooser and partial
//!   update.
//! * [`ConfidenceEstimator`] — resetting-counter confidence table used to
//!   decide when the ARVI second level should override the first level.
//!
//! Every predictor's table storage is a [`PackedCounters`]: 2-bit
//! saturating counters packed 32 per `u64` word (the 2Bc-gskew's four
//! banks additionally bank-interleaved), replacing the seed-era
//! `Vec<SatCounter>`-of-structs layout that spent 16x the cache
//! footprint on the same state.
//!
//! All predictors implement [`DirectionPredictor`]: `predict` returns the
//! direction, a checkpoint of the indexing state (the global history at
//! prediction time) *and* the resolved table indices, which callers hand
//! back to `update` — so a delayed (commit-time) update trains exactly
//! the entries the prediction read without re-hashing PC and history a
//! second time. The scalar pre-PR5 predictors are preserved verbatim in
//! `arvi_bench::baseline` and pinned stream-identical by
//! `tests/predictor_equivalence.rs`.

pub mod bimodal;
pub mod confidence;
pub mod counter;
pub mod gshare;
pub mod gskew;
pub mod history;
pub mod local;
pub mod packed;
pub mod traits;
pub mod value;

pub use bimodal::Bimodal;
pub use confidence::{ConfidenceConfig, ConfidenceEstimator};
pub use counter::{ResettingCounter, SatCounter};
pub use gshare::Gshare;
pub use gskew::{GskewConfig, TwoBcGskew};
pub use history::GlobalHistory;
pub use local::Local;
pub use packed::PackedCounters;
pub use traits::{DirectionPredictor, Prediction};
pub use value::{LastValue, Stride};

//! Two-level local-history predictor (PAg style, as in the Alpha 21264
//! tournament predictor's local component).

use crate::packed::PackedCounters;
use crate::traits::{DirectionPredictor, Prediction};

/// A two-level local predictor: a table of per-branch history registers
/// selecting into a shared packed table of counters.
///
/// Included as an additional baseline for predictor-comparison examples;
/// the paper's hybrid uses global components only.
#[derive(Debug, Clone)]
pub struct Local {
    histories: Vec<u16>,
    counters: PackedCounters,
    history_len: u32,
    hist_mask: u64,
    ctr_mask: u64,
}

impl Local {
    /// Creates a local predictor with `2^hist_index_bits` history registers
    /// of `history_len` bits and `2^counter_index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero, `history_len > 16`, or
    /// `counter_index_bits < history_len`.
    pub fn new(hist_index_bits: u32, history_len: u32, counter_index_bits: u32) -> Local {
        assert!((1..=24).contains(&hist_index_bits));
        assert!((1..=16).contains(&history_len));
        assert!((1..=28).contains(&counter_index_bits));
        assert!(
            counter_index_bits >= history_len,
            "counter table must index the full local history"
        );
        Local {
            histories: vec![0; 1 << hist_index_bits],
            counters: PackedCounters::new(1 << counter_index_bits, 1),
            history_len,
            hist_mask: ((1u64 << hist_index_bits) - 1),
            ctr_mask: ((1u64 << counter_index_bits) - 1),
        }
    }

    #[inline]
    fn hist_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.hist_mask) as usize
    }

    #[inline]
    fn ctr_index(&self, pc: u64, local: u16) -> usize {
        // Concatenate local history with low PC bits beyond the history.
        let pc_part = (pc >> 2) << self.history_len;
        (((local as u64) | pc_part) & self.ctr_mask) as usize
    }
}

impl DirectionPredictor for Local {
    fn predict(&mut self, pc: u64) -> Prediction {
        let local = self.histories[self.hist_index(pc)];
        let idx = self.ctr_index(pc, local);
        Prediction {
            taken: self.counters.is_set(idx),
            // The checkpoint carries the *local* history used.
            checkpoint: local as u64,
            banks: [idx as u32, 0, 0, 0],
        }
    }

    fn spec_push(&mut self, _taken: bool) {}

    fn update(&mut self, pc: u64, pred: &Prediction, taken: bool) {
        self.counters.update(pred.banks[0] as usize, taken);
        let hist_idx = self.hist_index(pc);
        let h = &mut self.histories[hist_idx];
        *h = (((*h as u32) << 1) | taken as u32) as u16 & ((1u16 << self.history_len) - 1);
    }

    fn storage_bits(&self) -> usize {
        self.histories.len() * self.history_len as usize + self.counters.storage_bits()
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::run_immediate;

    #[test]
    fn learns_per_branch_period() {
        // Two interleaved branches with different private periods — global
        // history sees an interleaving, local history separates them.
        let mut p = Local::new(10, 8, 14);
        let stream = (0..2000).flat_map(|i| {
            [
                (0u64, i % 3 == 0),   // period 3
                (400u64, i % 5 == 0), // period 5
            ]
        });
        let (correct, total) = run_immediate(&mut p, stream);
        assert!(
            correct as f64 / total as f64 > 0.95,
            "accuracy {correct}/{total}"
        );
    }

    #[test]
    fn history_length_respected() {
        let mut p = Local::new(4, 4, 8);
        for _ in 0..100 {
            let pr = p.predict(0);
            p.update(0, &pr, true);
        }
        assert_eq!(p.histories[0], 0b1111);
    }

    #[test]
    fn prediction_carries_the_counter_index() {
        let mut p = Local::new(4, 4, 8);
        let pr = p.predict(0x20);
        assert_eq!(
            pr.banks[0] as usize,
            p.ctr_index(0x20, pr.checkpoint as u16)
        );
    }

    #[test]
    fn storage_accounting() {
        let p = Local::new(10, 10, 10);
        assert_eq!(p.storage_bits(), 1024 * 10 + 1024 * 2);
    }
}

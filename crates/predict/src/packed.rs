//! Packed 2-bit saturating-counter storage — the predictor-table layout
//! shared by every direction predictor in this crate.
//!
//! The reproduction-era tables stored one [`SatCounter`] struct per
//! entry: two bytes (value + per-instance max) for two bits of state, an
//! 8x density loss that turns the 2Bc-gskew's four banks into a
//! cache-thrashing 256 KB of traffic where the EV8 design holds 32 KB.
//! `PackedCounters` stores 32 two-bit counters per `u64` word, exactly
//! matching [`SatCounter`]'s 2-bit saturate/update/strengthen semantics
//! bit for bit (pinned by the proptest in `tests/predictor_properties.rs`
//! and the stream-equivalence harness in `tests/predictor_equivalence.rs`).
//!
//! [`SatCounter`]: crate::SatCounter

/// A dense table of 2-bit saturating up/down counters, 32 per `u64`.
///
/// Counter values are 0–3; the "set" (predict-taken) interpretation is
/// the upper half, matching `SatCounter::is_set` for 2-bit widths.
///
/// # Example
///
/// ```
/// use arvi_predict::PackedCounters;
/// let mut t = PackedCounters::new(64, 1); // weakly not-taken
/// assert!(!t.is_set(33));
/// t.update(33, true);
/// assert!(t.is_set(33));
/// t.update(33, true);
/// t.update(33, true); // saturates at 3
/// assert_eq!(t.get(33), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedCounters {
    words: Box<[u64]>,
    len: usize,
}

/// Replicates a 2-bit field across all 32 lanes of a word.
#[inline]
const fn splat(v: u8) -> u64 {
    (v as u64 & 0b11).wrapping_mul(0x5555_5555_5555_5555)
}

impl PackedCounters {
    /// Creates `len` counters, each initialized to `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` exceeds 3 (the 2-bit maximum).
    pub fn new(len: usize, initial: u8) -> PackedCounters {
        assert!(initial <= 3, "initial value {initial} exceeds 2-bit max 3");
        let words = len.div_ceil(32);
        PackedCounters {
            words: vec![splat(initial); words].into_boxed_slice(),
            len,
        }
    }

    /// The number of counters.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no counters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Table storage in bits (2 per counter — the hardware budget, not
    /// the padded host words).
    #[inline]
    pub fn storage_bits(&self) -> usize {
        self.len * 2
    }

    /// The current value of counter `i` (0–3).
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        ((self.words[i >> 5] >> ((i & 31) << 1)) & 0b11) as u8
    }

    /// True when counter `i` is in its upper half — the "taken" /
    /// "predict set" interpretation (`SatCounter::is_set` for 2 bits).
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        // The high bit of the 2-bit field decides the upper half.
        (self.words[i >> 5] >> (((i & 31) << 1) + 1)) & 1 != 0
    }

    /// Fused read-modify-write: one word access per operation (the
    /// scalar `SatCounter` pays one byte access; splitting this into
    /// `get` + `put` would double the bounds-checked word traffic on
    /// the hottest predictor path).
    #[inline]
    fn rmw(&mut self, i: usize, f: impl FnOnce(u64) -> u64) {
        debug_assert!(i < self.len);
        let shift = (i & 31) << 1;
        let w = &mut self.words[i >> 5];
        let v = (*w >> shift) & 0b11;
        *w = (*w & !(0b11 << shift)) | (f(v) << shift);
    }

    /// Saturating increment of counter `i`.
    #[inline]
    pub fn increment(&mut self, i: usize) {
        self.rmw(i, |v| (v + 1).min(3));
    }

    /// Saturating decrement of counter `i`.
    #[inline]
    pub fn decrement(&mut self, i: usize) {
        self.rmw(i, |v| v.saturating_sub(1));
    }

    /// Moves counter `i` toward an outcome: increment when `toward` is
    /// true, decrement otherwise.
    #[inline]
    pub fn update(&mut self, i: usize, toward: bool) {
        self.rmw(i, |v| {
            if toward {
                (v + 1).min(3)
            } else {
                v.saturating_sub(1)
            }
        });
    }

    /// Strengthens counter `i` in its current direction (the partial-
    /// update rule of 2Bc-gskew: correct banks are reinforced, not
    /// retrained).
    #[inline]
    pub fn strengthen(&mut self, i: usize) {
        // Toward the rail the high bit already points at: 2|3 -> 3,
        // 0|1 -> 0.
        self.rmw(i, |v| if v & 0b10 != 0 { 3 } else { 0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_fills_every_lane() {
        for init in 0..=3u8 {
            let t = PackedCounters::new(100, init);
            for i in 0..100 {
                assert_eq!(t.get(i), init, "counter {i} init {init}");
            }
        }
    }

    #[test]
    fn two_bit_cycle_matches_satcounter_semantics() {
        let mut t = PackedCounters::new(40, 1);
        assert_eq!(t.get(37), 1);
        assert!(!t.is_set(37));
        t.increment(37);
        assert_eq!(t.get(37), 2);
        assert!(t.is_set(37));
        t.increment(37);
        t.increment(37);
        assert_eq!(t.get(37), 3); // saturated
        t.decrement(37);
        t.decrement(37);
        t.decrement(37);
        t.decrement(37);
        assert_eq!(t.get(37), 0); // saturated at floor
    }

    #[test]
    fn neighbours_are_untouched() {
        let mut t = PackedCounters::new(96, 1);
        t.update(31, true);
        t.update(32, false);
        assert_eq!(t.get(30), 1);
        assert_eq!(t.get(31), 2);
        assert_eq!(t.get(32), 0);
        assert_eq!(t.get(33), 1);
    }

    #[test]
    fn strengthen_preserves_direction() {
        let mut t = PackedCounters::new(8, 2);
        t.strengthen(5);
        assert_eq!(t.get(5), 3);
        let mut u = PackedCounters::new(8, 1);
        u.strengthen(5);
        assert_eq!(u.get(5), 0);
    }

    #[test]
    fn storage_counts_logical_bits() {
        let t = PackedCounters::new(4096, 1);
        assert_eq!(t.storage_bits(), 8192); // one paper L1 bank = 1 KB
        assert_eq!(t.len(), 4096);
        // Non-multiple-of-32 lengths pad the host word but not the budget.
        let u = PackedCounters::new(33, 0);
        assert_eq!(u.storage_bits(), 66);
    }

    #[test]
    #[should_panic(expected = "exceeds 2-bit max")]
    fn initial_out_of_range_rejected() {
        let _ = PackedCounters::new(4, 4);
    }
}

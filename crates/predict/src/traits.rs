//! The direction-predictor interface shared by all predictors.

/// The maximum number of table indices a prediction carries (the
/// 2Bc-gskew reads four banks; simpler predictors use a prefix).
pub const MAX_BANKS: usize = 4;

/// The result of a prediction: the direction, a checkpoint of the
/// global-history state used to index the tables, and the table indices
/// the prediction actually read.
///
/// The whole record must be handed back to
/// [`DirectionPredictor::update`] so that a commit-time (delayed) update
/// trains exactly the entries the prediction read — mirroring the history
/// checkpointing real pipelines carry with each in-flight branch. Since
/// PR 5 the record also carries the resolved bank indices, so training
/// re-reads the counters without re-hashing PC and history a second
/// time (the index computation happens once, at predict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (true = taken).
    pub taken: bool,
    /// Global-history bits at prediction time (0 for history-less
    /// predictors). Kept alongside the indices for history repair and
    /// diagnostics; `update` no longer needs it to re-derive indices.
    pub checkpoint: u64,
    /// Resolved table indices, one per bank the predictor read (unused
    /// lanes are 0). For the 2Bc-gskew these are the interleaved
    /// physical indices of BIM/G0/G1/META in that order.
    pub banks: [u32; MAX_BANKS],
}

impl Prediction {
    /// A prediction carrying no table indices (trivial predictors).
    #[inline]
    pub fn plain(taken: bool, checkpoint: u64) -> Prediction {
        Prediction {
            taken,
            checkpoint,
            banks: [0; MAX_BANKS],
        }
    }
}

/// A dynamic branch direction predictor.
///
/// The protocol, per dynamic branch, in program order:
///
/// 1. [`predict`](DirectionPredictor::predict) at fetch;
/// 2. [`spec_push`](DirectionPredictor::spec_push) immediately after, with
///    the direction fetch follows (the trace-driven simulator pushes the
///    actual outcome — speculative update with perfect repair);
/// 3. [`update`](DirectionPredictor::update) at commit with the actual
///    outcome and the full prediction record from step 1.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at byte address `pc`,
    /// resolving and recording the table indices the caller hands back
    /// at training time.
    fn predict(&mut self, pc: u64) -> Prediction;

    /// Shifts the predictor's global history with the followed direction.
    /// History-less predictors ignore this.
    fn spec_push(&mut self, taken: bool);

    /// Trains the predictor with the actual outcome of a branch previously
    /// predicted at `pc`, using the indices (and, where a structure is
    /// not index-addressed, the checkpoint) carried by `pred`.
    fn update(&mut self, pc: u64, pred: &Prediction, taken: bool);

    /// Total table storage in bits (for the paper's size-matched
    /// comparisons, Table 4).
    fn storage_bits(&self) -> usize;

    /// A short human-readable name ("bimodal", "gshare", "2Bc-gskew", ...).
    fn name(&self) -> &'static str;
}

/// Runs a predictor over a `(pc, taken)` outcome stream with immediate
/// update, returning the number of correct predictions. A convenience for
/// tests and microbenchmarks — the timing simulator drives predictors
/// through the full three-step protocol instead.
pub fn run_immediate<P: DirectionPredictor, I: IntoIterator<Item = (u64, bool)>>(
    predictor: &mut P,
    stream: I,
) -> (u64, u64) {
    let mut correct = 0u64;
    let mut total = 0u64;
    for (pc, taken) in stream {
        let p = predictor.predict(pc);
        predictor.spec_push(taken);
        predictor.update(pc, &p, taken);
        correct += (p.taken == taken) as u64;
        total += 1;
    }
    (correct, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial always-taken predictor used to exercise the helper.
    struct AlwaysTaken;

    impl DirectionPredictor for AlwaysTaken {
        fn predict(&mut self, _pc: u64) -> Prediction {
            Prediction::plain(true, 0)
        }
        fn spec_push(&mut self, _taken: bool) {}
        fn update(&mut self, _pc: u64, _pred: &Prediction, _taken: bool) {}
        fn storage_bits(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "always-taken"
        }
    }

    #[test]
    fn run_immediate_counts() {
        let stream = [(0u64, true), (4, false), (8, true)];
        let (correct, total) = run_immediate(&mut AlwaysTaken, stream);
        assert_eq!((correct, total), (2, 3));
    }
}

//! Value predictors — the substrate for the paper's selective value
//! prediction application (Section 3) and the related-work comparisons
//! (Lipasti & Shen's value prediction, Heil's value-difference
//! correlation).

/// A last-value predictor: predicts that an instruction produces the same
/// value as its previous execution.
///
/// # Example
///
/// ```
/// use arvi_predict::value::LastValue;
/// let mut p = LastValue::new(8);
/// assert_eq!(p.predict(0x40), None); // cold
/// p.update(0x40, 7);
/// assert_eq!(p.predict(0x40), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct LastValue {
    table: Vec<Option<u64>>,
    mask: u64,
}

impl LastValue {
    /// Creates a table of `2^index_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> LastValue {
        assert!((1..=24).contains(&index_bits));
        LastValue {
            table: vec![None; 1 << index_bits],
            mask: (1u64 << index_bits) - 1,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// The predicted value for the instruction at `pc`, if any history
    /// exists.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        self.table[self.index(pc)]
    }

    /// Trains with the actual produced value.
    pub fn update(&mut self, pc: u64, value: u64) {
        let idx = self.index(pc);
        self.table[idx] = Some(value);
    }
}

/// A stride predictor: learns `value[n+1] = value[n] + stride` patterns
/// (induction variables, sequential pointers).
///
/// # Example
///
/// ```
/// use arvi_predict::value::Stride;
/// let mut p = Stride::new(8);
/// p.update(0x40, 10);
/// p.update(0x40, 14);
/// p.update(0x40, 18);           // stride 4 confirmed
/// assert_eq!(p.predict(0x40), Some(22));
/// ```
#[derive(Debug, Clone)]
pub struct Stride {
    last: Vec<Option<u64>>,
    stride: Vec<i64>,
    confidence: Vec<u8>,
    mask: u64,
}

impl Stride {
    /// Creates a table of `2^index_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Stride {
        assert!((1..=24).contains(&index_bits));
        let n = 1usize << index_bits;
        Stride {
            last: vec![None; n],
            stride: vec![0; n],
            confidence: vec![0; n],
            mask: (1u64 << index_bits) - 1,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// The predicted next value, once the stride has been confirmed at
    /// least once.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        let i = self.index(pc);
        match (self.last[i], self.confidence[i]) {
            (Some(last), c) if c >= 2 => Some(last.wrapping_add(self.stride[i] as u64)),
            _ => None,
        }
    }

    /// Trains with the actual produced value.
    pub fn update(&mut self, pc: u64, value: u64) {
        let i = self.index(pc);
        if let Some(last) = self.last[i] {
            let observed = value.wrapping_sub(last) as i64;
            if observed == self.stride[i] {
                self.confidence[i] = (self.confidence[i] + 1).min(3);
            } else {
                self.stride[i] = observed;
                self.confidence[i] = 1;
            }
        }
        self.last[i] = Some(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks_stable_values() {
        let mut p = LastValue::new(6);
        p.update(0x10, 99);
        assert_eq!(p.predict(0x10), Some(99));
        p.update(0x10, 100);
        assert_eq!(p.predict(0x10), Some(100));
        assert_eq!(p.predict(0x14), None);
    }

    #[test]
    fn stride_learns_induction_variables() {
        let mut p = Stride::new(6);
        for v in (0..40u64).step_by(8) {
            p.update(0x20, v);
        }
        assert_eq!(p.predict(0x20), Some(40));
    }

    #[test]
    fn stride_withholds_until_confirmed() {
        let mut p = Stride::new(6);
        p.update(0x20, 5);
        assert_eq!(p.predict(0x20), None, "one sample: no stride");
        p.update(0x20, 9);
        assert_eq!(p.predict(0x20), None, "stride seen once, unconfirmed");
        p.update(0x20, 13);
        assert_eq!(p.predict(0x20), Some(17));
    }

    #[test]
    fn stride_zero_degenerates_to_last_value() {
        let mut p = Stride::new(6);
        for _ in 0..4 {
            p.update(0x30, 42);
        }
        assert_eq!(p.predict(0x30), Some(42));
    }

    #[test]
    fn stride_retrains_on_pattern_change() {
        let mut p = Stride::new(6);
        for v in [0u64, 4, 8, 12] {
            p.update(0x40, v);
        }
        assert_eq!(p.predict(0x40), Some(16));
        // Break the pattern: new stride must be re-confirmed.
        p.update(0x40, 100);
        assert_eq!(p.predict(0x40), None);
        p.update(0x40, 107);
        p.update(0x40, 114);
        assert_eq!(p.predict(0x40), Some(121));
    }

    #[test]
    fn wrapping_values_are_handled() {
        let mut p = Stride::new(6);
        for v in [u64::MAX - 8, u64::MAX - 4, u64::MAX] {
            p.update(0x50, v);
        }
        assert_eq!(p.predict(0x50), Some(3)); // wraps past zero
    }
}

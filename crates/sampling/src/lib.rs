//! # arvi-sampling
//!
//! SMARTS-style interval sampling over recorded traces (Wunderlich et
//! al., ISCA 2003, adapted to this reproduction's trace-driven
//! substrate): instead of simulating a long window in detail end to
//! end, a [`SamplePlan`] slices it into `k`-periodic units, each unit
//! runs **functional warmup** (emulation-speed predictor/DDT/cache
//! training via [`WarmupMachine`]) followed by a short **detailed
//! measurement** on the full [`Machine`](arvi_sim::Machine), and the
//! per-unit counter blocks aggregate into a weighted-mean estimate with
//! a 95% confidence interval ([`SampleEstimate`]).
//!
//! Because every unit is independent — it seeks straight to its trace
//! position via [`TraceReplayer::seek_to_inst`] and carries its own
//! machine — units fan out over a deterministic worker pool
//! ([`run_units`]), so one long window saturates all cores where the
//! full run is serial by construction.
//!
//! Determinism contract: for a fixed trace, plan and seed, the unit
//! list, every per-unit [`MachineStats`], and the aggregated
//! [`SampleReport`] are bit-identical regardless of thread count —
//! results are committed in unit order, and the point estimates are
//! ratios of summed integer counters (see [`arvi_stats::sample`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use arvi_sim::{MachineStats, PredictorConfig, RebasedSource, SimParams, WarmupMachine};
use arvi_stats::SampleEstimate;
use arvi_trace::{Trace, TraceError, TraceReplayer};

/// How detail windows are placed inside each stratum of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMode {
    /// The detail window sits at the start of every stratum — the
    /// classic SMARTS systematic design. With `k = 1` the units tile
    /// the region exactly.
    Systematic,
    /// The detail window lands at a seed-derived offset inside each
    /// stratum (deterministic per `(seed, unit index)`), guarding
    /// against periodicity in the workload that aliases with the
    /// sampling stride.
    Stratified,
}

/// A sampling plan: every `k`-th window of `unit_detail` instructions
/// is measured in detail, each preceded by `unit_warmup` instructions
/// of functional warm-up.
///
/// The textual form is `k:warmup:detail` (systematic) or
/// `stratified:k:warmup:detail`; see [`SamplePlan::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePlan {
    /// Sampling period: one unit per `k * unit_detail` instructions.
    /// `k = 1` measures everything (100% coverage).
    pub k: u64,
    /// Functional warm-up length before each detail window.
    pub unit_warmup: u64,
    /// Detailed measurement length of each unit.
    pub unit_detail: u64,
    /// Detail-window placement within strata.
    pub mode: SampleMode,
}

impl SamplePlan {
    /// A systematic plan (detail window at the start of each stratum).
    pub fn systematic(k: u64, unit_warmup: u64, unit_detail: u64) -> SamplePlan {
        SamplePlan {
            k,
            unit_warmup,
            unit_detail,
            mode: SampleMode::Systematic,
        }
    }

    /// A stratified plan (seed-derived detail offset per stratum).
    pub fn stratified(k: u64, unit_warmup: u64, unit_detail: u64) -> SamplePlan {
        SamplePlan {
            k,
            unit_warmup,
            unit_detail,
            mode: SampleMode::Stratified,
        }
    }

    /// Parses `k:warmup:detail` or `stratified:k:warmup:detail` (an
    /// explicit `systematic:` prefix is also accepted). Requires
    /// `k >= 1` and `detail >= 1`.
    pub fn parse(s: &str) -> Result<SamplePlan, String> {
        let (mode, rest) = match s.split_once(':') {
            Some(("stratified", rest)) => (SampleMode::Stratified, rest),
            Some(("systematic", rest)) => (SampleMode::Systematic, rest),
            _ => (SampleMode::Systematic, s),
        };
        let parts: Vec<&str> = rest.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "bad sample plan {s:?}: expected k:warmup:detail \
                 (optionally prefixed with systematic: or stratified:)"
            ));
        }
        let field = |i: usize, name: &str| -> Result<u64, String> {
            parts[i].parse::<u64>().map_err(|_| {
                format!(
                    "bad sample plan {s:?}: {name} {:?} is not a number",
                    parts[i]
                )
            })
        };
        let plan = SamplePlan {
            k: field(0, "period k")?,
            unit_warmup: field(1, "warmup")?,
            unit_detail: field(2, "detail")?,
            mode,
        };
        if plan.k == 0 {
            return Err(format!("bad sample plan {s:?}: period k must be >= 1"));
        }
        if plan.unit_detail == 0 {
            return Err(format!("bad sample plan {s:?}: detail must be >= 1"));
        }
        Ok(plan)
    }

    /// Instructions between consecutive detail-window strata.
    pub fn stride(&self) -> u64 {
        self.k * self.unit_detail
    }

    /// Fraction of the region measured in detail (upper bound; the last
    /// partial stratum may contribute slightly more).
    pub fn coverage(&self) -> f64 {
        1.0 / self.k as f64
    }

    /// Slices `[region_start, region_start + region_len)` of a trace
    /// into sampling units. `seed` feeds the stratified offsets (it is
    /// ignored for systematic plans, so systematic unit lists depend
    /// only on the plan and region).
    ///
    /// Warm-up may extend before `region_start` (into the trace prefix,
    /// saturating at 0) — earlier history is valid training input — but
    /// detail windows never leave the region. With `k = 1` and
    /// systematic mode the detail windows tile the region exactly:
    /// no gaps, no overlaps.
    pub fn units(&self, region_start: u64, region_len: u64, seed: u64) -> Vec<SampleUnit> {
        let region_end = region_start + region_len;
        let stride = self.stride();
        let mut out = Vec::new();
        let mut index = 0u64;
        let mut stratum_start = region_start;
        while stratum_start < region_end {
            let stratum_len = (region_end - stratum_start).min(stride);
            let max_offset = stratum_len.saturating_sub(self.unit_detail);
            let offset = match self.mode {
                SampleMode::Systematic => 0,
                SampleMode::Stratified => stratified_offset(seed, index) % (max_offset + 1),
            };
            let detail_start = stratum_start + offset;
            let detail_len = self.unit_detail.min(region_end - detail_start);
            out.push(SampleUnit {
                index,
                warmup_start: detail_start.saturating_sub(self.unit_warmup),
                detail_start,
                detail_len,
            });
            index += 1;
            stratum_start += stride;
        }
        out
    }
}

impl std::fmt::Display for SamplePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.mode == SampleMode::Stratified {
            write!(f, "stratified:")?;
        }
        write!(f, "{}:{}:{}", self.k, self.unit_warmup, self.unit_detail)
    }
}

/// FNV-1a over `(seed, index)`; the deterministic randomness source for
/// stratified detail-window placement (no RNG state to thread through
/// the worker pool).
fn stratified_offset(seed: u64, index: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in seed.to_le_bytes().into_iter().chain(index.to_le_bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One sampling unit: absolute trace positions of its warm-up prefix
/// and detailed measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleUnit {
    /// Position of this unit in the plan (stratum number).
    pub index: u64,
    /// First trace position streamed through functional warm-up.
    pub warmup_start: u64,
    /// First trace position of the detailed window.
    pub detail_start: u64,
    /// Detailed-window length in instructions.
    pub detail_len: u64,
}

impl SampleUnit {
    /// Functional warm-up length of this unit.
    pub fn warmup_len(&self) -> u64 {
        self.detail_start - self.warmup_start
    }
}

/// Detailed pipeline-fill ramp: the last up-to-this-many instructions
/// of each unit's warm-up region run on the detailed machine,
/// unmeasured, before the measurement snapshot is taken. A detailed
/// machine started cold spends tens of cycles refilling its fetch and
/// rename stages before the first commit; against a short detail window
/// that fill cost reads as a systematic IPC under-estimate, so the ramp
/// absorbs it outside the measured window (SMARTS' "detailed warming").
/// The ramp is carved out of the warm-up region — detail windows and
/// unit boundaries are unchanged — and shrinks to the available warm-up
/// when a unit has less than this much (0 warm-up keeps the old
/// cold-start behaviour, preserving exact `k = 1` full-coverage
/// tiling).
pub const DETAIL_RAMP: u64 = 2_000;

/// Runs one sampling unit: seek to the warm-up start, train a
/// [`WarmupMachine`] up to [`DETAIL_RAMP`] instructions before the
/// detail window, run the ramp on the detailed machine to fill the
/// pipeline, then measure the window. Returns the detail window's
/// counter block.
///
/// Fails with [`TraceError::SeekPastEnd`] when the unit lies outside
/// the recording (a plan/trace length mismatch).
pub fn run_unit(
    trace: &Arc<Trace>,
    params: &SimParams,
    config: PredictorConfig,
    unit: &SampleUnit,
) -> Result<MachineStats, TraceError> {
    if unit.detail_start + unit.detail_len > trace.len() {
        return Err(TraceError::SeekPastEnd {
            seq: unit.detail_start + unit.detail_len - 1,
            len: trace.len(),
        });
    }
    let ramp = unit.warmup_len().min(DETAIL_RAMP);
    let mut replayer = TraceReplayer::new(Arc::clone(trace));
    replayer.seek_to_inst(unit.warmup_start)?;
    let mut warm = WarmupMachine::new(params.clone(), config);
    warm.warm(&mut replayer, unit.warmup_len() - ramp);
    let mut machine = warm.into_machine(RebasedSource::new(replayer, unit.detail_start - ramp));
    // Exact commit boundaries on both calls: the ramp must hand over at
    // precisely `detail_start`, and the window must close at precisely
    // `detail_len` committed — otherwise each unit overshoots by up to
    // a commit group and tiled units double-count boundary instructions.
    let fill = machine.stats().clone();
    machine.run_until_committed_exact(fill.committed + ramp);
    let start = machine.stats().clone();
    machine.run_until_committed_exact(start.committed + unit.detail_len);
    Ok(machine.stats().since(&start))
}

/// Runs every unit of a plan over a shared trace, fanning out across
/// `threads` workers. Results are returned **in unit order** and are
/// bit-identical for any thread count: workers pull units from an
/// atomic cursor and write into per-unit slots, so scheduling affects
/// only wall-clock, never results.
pub fn run_units(
    trace: &Arc<Trace>,
    params: &SimParams,
    config: PredictorConfig,
    units: &[SampleUnit],
    threads: usize,
) -> Result<Vec<MachineStats>, TraceError> {
    let threads = threads.clamp(1, units.len().max(1));
    if threads == 1 {
        return units
            .iter()
            .map(|u| run_unit(trace, params, config, u))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<MachineStats, TraceError>>>> =
        units.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= units.len() {
                    break;
                }
                let r = run_unit(trace, params, config, &units[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

/// Sums two per-unit counter blocks field by field. Plain integer
/// addition end to end, so merging is exact, associative and
/// commutative — the aggregation order (thread interleaving, resume
/// replay) cannot change the totals.
pub fn merge_stats(a: &MachineStats, b: &MachineStats) -> MachineStats {
    let mut out = a.clone();
    out.committed += b.committed;
    out.cycles += b.cycles;
    out.cond_branches += b.cond_branches;
    out.l1_only += b.l1_only;
    out.calc_class += b.calc_class;
    out.load_class += b.load_class;
    out.overrides += b.overrides;
    out.overrides_correcting += b.overrides_correcting;
    out.bvit_hits += b.bvit_hits;
    out.full_mispredicts += b.full_mispredicts;
    out.override_restarts += b.override_restarts;
    out
}

/// The aggregate of a sampled run: summed counters, weighted estimates
/// with 95% CIs, and coverage bookkeeping.
#[derive(Debug, Clone)]
pub struct SampleReport {
    /// Field-by-field sum of every unit's counter block.
    pub totals: MachineStats,
    /// IPC estimate (per-unit `committed / cycles`, weighted by cycles;
    /// the mean equals `totals.ipc()` exactly).
    pub ipc: SampleEstimate,
    /// Final-direction conditional-branch accuracy estimate (per-unit
    /// rate weighted by branch count).
    pub accuracy: SampleEstimate,
    /// Instructions measured in detail across all units.
    pub sampled_insts: u64,
    /// Length of the sampled region (denominator of [`coverage`]).
    ///
    /// [`coverage`]: SampleReport::coverage
    pub region_len: u64,
}

impl SampleReport {
    /// Fraction of the region that was measured in detail.
    pub fn coverage(&self) -> f64 {
        if self.region_len == 0 {
            0.0
        } else {
            self.sampled_insts as f64 / self.region_len as f64
        }
    }

    /// Number of units aggregated.
    pub fn units(&self) -> usize {
        self.ipc.units
    }
}

/// Aggregates per-unit counter blocks (in unit order, as produced by
/// [`run_units`]) into a [`SampleReport`].
pub fn aggregate(results: &[MachineStats], region_len: u64) -> SampleReport {
    let mut totals = MachineStats::default();
    let mut ipc_samples = Vec::with_capacity(results.len());
    let mut acc_samples = Vec::with_capacity(results.len());
    for s in results {
        totals = merge_stats(&totals, s);
        ipc_samples.push((s.ipc(), s.cycles as f64));
        acc_samples.push((s.cond_branches.rate(), s.cond_branches.total() as f64));
    }
    SampleReport {
        ipc: SampleEstimate::from_weighted(&ipc_samples),
        accuracy: SampleEstimate::from_weighted(&acc_samples),
        sampled_insts: totals.committed,
        region_len,
        totals,
    }
}

/// One-call convenience: plan → units → parallel execution →
/// aggregation over `[region_start, region_start + region_len)`.
#[allow(clippy::too_many_arguments)]
pub fn sample_region(
    trace: &Arc<Trace>,
    params: &SimParams,
    config: PredictorConfig,
    plan: &SamplePlan,
    region_start: u64,
    region_len: u64,
    seed: u64,
    threads: usize,
) -> Result<SampleReport, TraceError> {
    let units = plan.units(region_start, region_len, seed);
    let results = run_units(trace, params, config, &units, threads)?;
    Ok(aggregate(&results, region_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;
    use arvi_sim::Depth;
    use arvi_workloads::Benchmark;

    fn small_trace(n: u64) -> Arc<Trace> {
        let emu = Emulator::new(Benchmark::Compress.program(7));
        Arc::new(Trace::record(emu, n, "compress-sampled", 7))
    }

    #[test]
    fn parse_round_trips() {
        let p = SamplePlan::parse("8:2000:1000").unwrap();
        assert_eq!(p, SamplePlan::systematic(8, 2000, 1000));
        assert_eq!(p.to_string(), "8:2000:1000");
        let s = SamplePlan::parse("stratified:4:500:250").unwrap();
        assert_eq!(s, SamplePlan::stratified(4, 500, 250));
        assert_eq!(s.to_string(), "stratified:4:500:250");
        assert_eq!(SamplePlan::parse(s.to_string().as_str()).unwrap(), s);
        assert_eq!(
            SamplePlan::parse("systematic:2:0:100").unwrap(),
            SamplePlan::systematic(2, 0, 100)
        );
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        for bad in ["", "8", "8:100", "8:100:200:300", "x:1:2", "0:1:2", "2:1:0"] {
            assert!(SamplePlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn k1_systematic_tiles_the_region_exactly() {
        let plan = SamplePlan::systematic(1, 300, 1000);
        let units = plan.units(500, 10_500, 42);
        assert_eq!(units.len(), 11);
        let mut next = 500;
        for u in &units {
            assert_eq!(u.detail_start, next, "gap or overlap at unit {}", u.index);
            next = u.detail_start + u.detail_len;
        }
        assert_eq!(next, 11_000);
        assert_eq!(units.last().unwrap().detail_len, 500);
    }

    #[test]
    fn systematic_units_are_periodic_and_warmup_saturates() {
        let plan = SamplePlan::systematic(4, 5_000, 1_000);
        let units = plan.units(0, 20_000, 0);
        assert_eq!(units.len(), 5);
        for (j, u) in units.iter().enumerate() {
            assert_eq!(u.index, j as u64);
            assert_eq!(u.detail_start, j as u64 * 4_000);
            assert_eq!(u.warmup_start, u.detail_start.saturating_sub(5_000));
        }
        assert_eq!(units[0].warmup_start, 0);
        assert_eq!(units[2].warmup_start, 3_000);
    }

    #[test]
    fn stratified_offsets_stay_in_their_strata_and_follow_the_seed() {
        let plan = SamplePlan::stratified(8, 100, 500);
        let region_len = 64_000;
        let a = plan.units(0, region_len, 1);
        let b = plan.units(0, region_len, 1);
        let c = plan.units(0, region_len, 2);
        assert_eq!(a, b, "same seed must reproduce the same placement");
        assert_ne!(a, c, "different seeds should move the windows");
        for u in &a {
            let stratum_start = u.index * plan.stride();
            assert!(u.detail_start >= stratum_start);
            assert!(u.detail_start + u.detail_len <= stratum_start + plan.stride());
            assert!(u.detail_start + u.detail_len <= region_len);
            assert_eq!(u.detail_len, 500);
        }
    }

    #[test]
    fn unit_past_trace_end_is_an_error() {
        let trace = small_trace(4_000);
        let params = SimParams::small_test();
        let unit = SampleUnit {
            index: 0,
            warmup_start: 3_000,
            detail_start: 3_500,
            detail_len: 1_000,
        };
        let err = run_unit(&trace, &params, PredictorConfig::TwoLevelGskew, &unit);
        assert!(matches!(err, Err(TraceError::SeekPastEnd { .. })));
    }

    #[test]
    fn parallel_results_match_serial_bit_for_bit() {
        let trace = small_trace(24_000);
        let params = SimParams::for_depth(Depth::D20);
        let plan = SamplePlan::systematic(3, 1_000, 1_000);
        let units = plan.units(0, trace.len(), 7);
        for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
            let serial = run_units(&trace, &params, config, &units, 1).unwrap();
            let par = run_units(&trace, &params, config, &units, 4).unwrap();
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.cycles, b.cycles);
                assert_eq!(a.committed, b.committed);
                assert_eq!(a.cond_branches, b.cond_branches);
                assert_eq!(a.full_mispredicts, b.full_mispredicts);
            }
        }
    }

    #[test]
    fn aggregate_means_are_ratios_of_summed_counters() {
        let trace = small_trace(16_000);
        let params = SimParams::for_depth(Depth::D20);
        let report = sample_region(
            &trace,
            &params,
            PredictorConfig::ArviCurrent,
            &SamplePlan::systematic(2, 500, 1_000),
            0,
            trace.len(),
            7,
            2,
        )
        .unwrap();
        assert_eq!(report.units(), 8);
        assert!((report.ipc.mean - report.totals.ipc()).abs() < 1e-12);
        assert!((report.accuracy.mean - report.totals.cond_branches.rate()).abs() < 1e-12);
        assert!(report.ipc.mean > 0.0);
        assert!((report.coverage() - 0.5).abs() < 0.01);
        assert!(report.ipc.ci_contains(report.ipc.mean));
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let trace = small_trace(12_000);
        let params = SimParams::small_test();
        let plan = SamplePlan::systematic(2, 200, 500);
        let units = plan.units(0, trace.len(), 0);
        let r = run_units(&trace, &params, PredictorConfig::ArviCurrent, &units, 1).unwrap();
        assert!(r.len() >= 3);
        let ab_c = merge_stats(&merge_stats(&r[0], &r[1]), &r[2]);
        let a_bc = merge_stats(&r[0], &merge_stats(&r[1], &r[2]));
        let ba_c = merge_stats(&merge_stats(&r[1], &r[0]), &r[2]);
        for m in [&a_bc, &ba_c] {
            assert_eq!(ab_c.committed, m.committed);
            assert_eq!(ab_c.cycles, m.cycles);
            assert_eq!(ab_c.cond_branches, m.cond_branches);
            assert_eq!(ab_c.overrides, m.overrides);
        }
    }
}

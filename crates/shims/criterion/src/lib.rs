//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the API subset the microbenchmarks use: `Criterion`, benchmark groups,
//! `Bencher::iter`, `black_box`, `Throughput` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement: each `bench_function` is warmed up, then timed over
//! `sample_size` samples whose batch size targets the configured
//! measurement time; the median, minimum and maximum per-iteration times
//! are reported in criterion's familiar `[low  median  high]` format.
//! Results are also appended to `target/shim-criterion.csv` (benchmark id,
//! median ns/iter) for machine consumption by the perf-report tooling.
//!
//! Set `ARVI_BENCH_FAST=1` to cut warmup/measurement times ~10x for CI
//! smoke runs.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as criterion exports.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted, reported as elements/second).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warmup time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    fn fast_mode() -> bool {
        std::env::var_os("ARVI_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty())
    }

    fn effective(&self, group_samples: Option<usize>) -> (usize, Duration, Duration) {
        let mut samples = group_samples.unwrap_or(self.sample_size);
        let mut measure = self.measurement_time;
        let mut warmup = self.warm_up_time;
        if Criterion::fast_mode() {
            samples = samples.clamp(2, 10);
            measure /= 10;
            warmup /= 10;
        }
        (samples, measure, warmup)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let (samples, measure, warmup) = self.criterion.effective(self.sample_size);
        let mut b = Bencher {
            mode: Mode::Calibrate(warmup),
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warmup + calibration: discover iterations/sample.
        f(&mut b);
        let per_iter = if b.iters > 0 && !b.elapsed.is_zero() {
            b.elapsed.as_secs_f64() / b.iters as f64
        } else {
            1e-9
        };
        let iters_per_sample =
            ((measure.as_secs_f64() / samples as f64 / per_iter).ceil() as u64).max(1);

        let mut times_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                mode: Mode::Measure,
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times_ns.push(b.elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        times_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let lo = times_ns[0];
        let hi = times_ns[times_ns.len() - 1];
        let median = times_ns[times_ns.len() / 2];

        let mut line = format!(
            "{id:<40} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {rate:.3e} {unit}/s"));
        }
        println!("{line}");
        append_csv(&id, median);
        self
    }

    /// Ends the group (criterion compatibility; reporting is immediate).
    pub fn finish(&mut self) {}
}

enum Mode {
    /// Run batches until the warmup duration elapses, recording totals.
    Calibrate(Duration),
    /// Run exactly `iters` iterations and record the elapsed time.
    Measure,
}

/// Passed to the benchmark closure; times the measured routine.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Calibrate(warmup) => {
                let start = Instant::now();
                let mut iters = 0u64;
                let mut batch = 1u64;
                while start.elapsed() < warmup {
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    iters += batch;
                    batch = batch.saturating_mul(2).min(1 << 20);
                }
                self.iters = iters;
                self.elapsed = start.elapsed();
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters {
                    black_box(routine());
                }
                self.elapsed = start.elapsed();
            }
        }
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn append_csv(id: &str, median_ns: f64) {
    use std::io::Write;
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("target/shim-criterion.csv")
    else {
        return;
    };
    let _ = writeln!(f, "{id},{median_ns:.2}");
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_routine() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(12.0).ends_with("ns"));
        assert!(fmt_time(12_000.0).ends_with("µs"));
        assert!(fmt_time(12_000_000.0).ends_with("ms"));
    }
}

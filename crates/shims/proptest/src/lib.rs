//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the API subset the property tests use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, range/tuple/option/vec strategies,
//! [`any`], `ProptestConfig::with_cases` and the `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` times with values drawn from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce across runs. Failed cases report their inputs via the panic
//! message. Shrinking is not implemented — on failure the full offending
//! input is printed instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The value-generation RNG handed to strategies.
pub type TestRng = SmallRng;

/// Creates the deterministic RNG for one case of one named test.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i64, f64);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        (rng.gen::<u64>() & 0xFF) as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        (rng.gen::<u64>() & 0xFFFF) as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.gen::<u64>() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

/// The whole-domain strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// `Option<T>` strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    /// `None` 25% of the time, `Some(inner)` otherwise (proptest's
    /// default weighting is 1:4).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __case_inputs = format!(
                        concat!("case {} of ", stringify!($name), ":",
                                $(" ", stringify!($arg), "={:?}",)+),
                        case, $(&$arg,)+
                    );
                    let result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(e) = result {
                        eprintln!("proptest failure inputs: {__case_inputs}");
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strat),+) $body )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = crate::collection::vec((0u16..100, any::<bool>()), 1..20);
        let a = s.generate(&mut crate::case_rng("t", 3));
        let b = s.generate(&mut crate::case_rng("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn option_of_produces_both_variants() {
        let s = crate::option::of(0u32..10);
        let mut rng = crate::case_rng("opts", 0);
        let vals: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_none()));
        assert!(vals.iter().any(|v| v.is_some()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_respect_ranges(x in 3u64..9, v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn prop_map_applies(y in (0u32..5).prop_map(|v| v * 10)) {
            prop_assert_eq!(y % 10, 0);
            prop_assert!(y < 50);
        }
    }
}

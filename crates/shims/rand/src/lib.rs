//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small API subset the workload generators use: `SmallRng` seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen` / `gen_range`. The generator is xoshiro256++ seeded by splitmix64
//! — deterministic across platforms and releases, which is all the
//! workloads require (bit-compatibility with crates.io `rand` is *not*
//! promised, only self-consistency).

use std::ops::Range;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from raw bits without parameters.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly samplable over a `Range`.
pub trait UniformSample: Sized {
    /// Draws one value from the half-open range.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased bounded sampling via rejection (Lemire-style widening).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the multiply-shift unbiased.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = x as u128 * bound as u128;
        if (m as u64) >= zone || zone == 0 {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformSample for i64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty sample range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(bounded_u64(rng, span) as i64)
    }
}

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty sample range");
        let x: f64 = Standard::sample(rng);
        range.start + x * (range.end - range.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}

//! The two-level overriding branch-prediction assembly (paper Section 5).
//!
//! All configurations share the 4 KB single-cycle 2Bc-gskew level-1
//! predictor. The level-2 predictor — a 32 KB 2Bc-gskew or the 32 KB ARVI
//! — produces its result `lat(L2)` cycles later and may *override* the
//! level-1 direction:
//!
//! * hybrid L2: overrides whenever it disagrees;
//! * ARVI L2: overrides only when the confidence estimator marks the
//!   branch low-confidence (the L1 "filters easily predicted highly biased
//!   branches") *and* the BVIT hits.
//!
//! The predict/train data path is index-carrying (PR 5): every
//! [`BranchDecision`] records the full [`Prediction`]s — including the
//! packed-table bank indices each level resolved — plus the confidence
//! slot, so commit-time training touches exactly the predicted entries
//! without re-hashing PC and history a second time. The value oracle is
//! a monomorphized [`ValueSource`] (no per-leaf dynamic dispatch), and
//! the hybrid level-2 lives inline in the unit (no `Box` indirection on
//! the per-branch match).

use arvi_core::{
    ArviConfig, ArviPrediction, ArviPredictor, BranchClass, DdtConfig, PhysReg, RenamedOp,
    TrackerConfig, ValueSource,
};
use arvi_isa::Reg;
use arvi_predict::{ConfidenceEstimator, DirectionPredictor, Prediction, TwoBcGskew};

use crate::params::{PredictorConfig, SimParams};

/// The level-2 predictor variant.
#[derive(Debug)]
pub enum Level2 {
    /// 32 KB 2Bc-gskew, stored inline (packed counters make the variant
    /// small enough that boxing would only add a pointer chase to every
    /// predict/train).
    Hybrid(TwoBcGskew),
    /// The ARVI predictor (BVIT + DDT/RSE + shadow state). Boxed: its
    /// tracker state is orders of magnitude larger than the hybrid.
    Arvi(Box<ArviPredictor>),
}

/// Everything recorded at prediction time for one conditional branch,
/// consumed again at commit for training.
#[derive(Debug, Clone)]
pub struct BranchDecision {
    /// Level-1 prediction record (direction, history checkpoint, packed
    /// bank indices).
    pub l1: Prediction,
    /// Level-2 hybrid prediction record (zeroed for ARVI).
    pub l2: Prediction,
    /// Confidence-estimator slot resolved at prediction time.
    pub conf_slot: u32,
    /// The direction the machine follows once the L2 result is in.
    pub final_taken: bool,
    /// Whether the L2 result overrode (differed from) the L1 direction.
    pub override_fired: bool,
    /// Whether the confidence estimator rated the branch high-confidence.
    pub confident: bool,
    /// The ARVI prediction record (ARVI configurations only).
    pub arvi: Option<ArviPrediction>,
}

/// The complete branch-prediction stack of the simulated machine.
#[derive(Debug)]
pub struct BranchUnit {
    l1: TwoBcGskew,
    confidence: ConfidenceEstimator,
    level2: Level2,
    /// L2 result delay in cycles (Table 4).
    pub l2_latency: u64,
    gate_overrides: bool,
}

impl BranchUnit {
    /// Builds the stack for a machine configuration.
    pub fn new(params: &SimParams, config: PredictorConfig) -> BranchUnit {
        let (level2, l2_latency) = if config.is_arvi() {
            let tracker = TrackerConfig {
                ddt: DdtConfig {
                    slots: params.rob_entries,
                    phys_regs: params.phys_regs,
                },
                track_dependents: false,
            };
            let mut arvi_cfg = ArviConfig::paper(tracker);
            arvi_cfg.bvit.sets_log2 = params.arvi_tuning.bvit_sets_log2;
            arvi_cfg.include_stale_values = params.arvi_tuning.include_stale_values;
            (
                Level2::Arvi(Box::new(ArviPredictor::new(arvi_cfg))),
                params.arvi_latency,
            )
        } else {
            (
                Level2::Hybrid(TwoBcGskew::new(params.l2_predictor)),
                params.l2_pred_latency,
            )
        };
        BranchUnit {
            l1: TwoBcGskew::new(params.l1_predictor),
            confidence: ConfidenceEstimator::new(params.confidence),
            level2,
            l2_latency,
            gate_overrides: params.arvi_tuning.gate_overrides,
        }
    }

    /// The level-2 predictor.
    pub fn level2(&self) -> &Level2 {
        &self.level2
    }

    /// Current dependence-tracker occupancy (0 for the hybrid L2).
    #[inline]
    pub fn ddt_occupancy(&self) -> usize {
        match &self.level2 {
            Level2::Hybrid(_) => 0,
            Level2::Arvi(arvi) => arvi.tracker().occupancy(),
        }
    }

    /// The cycle at which a corrective level-2 override re-steers a
    /// fetch blocked at `now` — the wakeup time the machine schedules,
    /// kept with the unit that owns the latency.
    #[inline]
    pub fn resolve_override_at(&self, now: u64) -> u64 {
        now + self.l2_latency
    }

    /// Inserts a renamed instruction into the dependence tracker (ARVI
    /// configurations; no-op for the hybrid).
    pub fn rename_op(&mut self, op: &RenamedOp, logical_dest: Option<Reg>) {
        if let Level2::Arvi(arvi) = &mut self.level2 {
            arvi.rename(op, logical_dest);
        }
    }

    /// Records a writeback into the ARVI shadow register file.
    pub fn writeback(&mut self, phys: PhysReg, value: u64) {
        if let Level2::Arvi(arvi) = &mut self.level2 {
            arvi.writeback(phys, value);
        }
    }

    /// Retires the oldest instruction from the dependence tracker.
    pub fn commit_inst(&mut self) {
        if let Level2::Arvi(arvi) = &mut self.level2 {
            arvi.commit_oldest();
        }
    }

    /// Predicts a conditional branch at fetch. `srcs_phys` are the
    /// branch's renamed operands; `values` supplies register values for
    /// the ARVI index (see [`ValueSource`] and [`crate::oracle`]);
    /// `actual` is the trace outcome used to speculatively advance the
    /// global histories (the trace-driven machine fetches the correct
    /// path).
    pub fn decide<V: ValueSource>(
        &mut self,
        pc: u64,
        srcs_phys: [Option<PhysReg>; 2],
        values: &V,
        actual: bool,
    ) -> BranchDecision {
        let l1p = self.l1.predict(pc);
        let conf_slot = self.confidence.slot(pc, l1p.checkpoint);
        let confident = self.confidence.is_confident_at(conf_slot);
        let (final_taken, override_fired, l2, arvi) = match &mut self.level2 {
            Level2::Hybrid(l2) => {
                let l2p = l2.predict(pc);
                l2.spec_push(actual);
                // "If the two predictions differ then the level 2
                // prediction is used."
                (l2p.taken, l2p.taken != l1p.taken, l2p, None)
            }
            Level2::Arvi(arvi) => {
                let ap = arvi.predict(pc, srcs_phys, values);
                // Override only with proven entries: the entry must have
                // value information (an available leaf or a calculated
                // signature), a saturated direction counter, and a
                // net-correct Heil performance counter — so a cold,
                // value-blind or oscillating signature never flips a good
                // L1 result (ARVI's long latency makes bad flips
                // expensive).
                let informed = ap.available > 0 || ap.class == BranchClass::Calculated;
                let proven = !self.gate_overrides || (informed && ap.strong && ap.perf >= 1);
                let use_arvi = !confident && ap.direction.is_some() && proven;
                let dir = if use_arvi {
                    ap.direction.expect("gated on is_some")
                } else {
                    l1p.taken
                };
                (dir, dir != l1p.taken, Prediction::plain(false, 0), Some(ap))
            }
        };
        self.l1.spec_push(actual);
        BranchDecision {
            l1: l1p,
            l2,
            conf_slot,
            final_taken,
            override_fired,
            confident,
            arvi,
        }
    }

    /// Trains every component at commit with the branch's actual outcome,
    /// consuming the indices the decision carried from prediction time.
    pub fn commit_branch(&mut self, pc: u64, decision: &BranchDecision, actual: bool) {
        self.l1.update(pc, &decision.l1, actual);
        self.confidence
            .update_at(decision.conf_slot, decision.l1.taken == actual);
        match &mut self.level2 {
            Level2::Hybrid(l2) => l2.update(pc, &decision.l2, actual),
            Level2::Arvi(arvi) => {
                let ap = decision
                    .arvi
                    .as_ref()
                    .expect("ARVI decision carries its prediction");
                // Allocate BVIT capacity only for low-confidence branches:
                // "dedicating ARVI resources to difficult branches".
                arvi.train(ap, actual, !decision.confident);
            }
        }
    }

    /// Classification of the last ARVI prediction (None for the hybrid).
    pub fn class_of(decision: &BranchDecision) -> Option<BranchClass> {
        decision.arvi.as_ref().map(|a| a.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Depth, SimParams};
    use arvi_core::CurrentValues;

    fn unit(config: PredictorConfig) -> BranchUnit {
        let mut p = SimParams::for_depth(Depth::D20);
        p.rob_entries = 32;
        p.phys_regs = 128;
        BranchUnit::new(&p, config)
    }

    #[test]
    fn hybrid_latency_and_override_rule() {
        let mut bu = unit(PredictorConfig::TwoLevelGskew);
        assert_eq!(bu.l2_latency, 2);
        // Cold predictors agree (both weakly not-taken): no override.
        let d = bu.decide(0x40, [None, None], &CurrentValues, true);
        assert!(!d.override_fired);
        assert_eq!(d.final_taken, d.l1.taken);
    }

    #[test]
    fn arvi_latency_selected() {
        let bu = unit(PredictorConfig::ArviCurrent);
        assert_eq!(bu.l2_latency, 6);
        assert!(matches!(bu.level2(), Level2::Arvi(_)));
    }

    #[test]
    fn arvi_override_requires_low_confidence_and_hit() {
        // A branch whose outcome is a pure function of a register value
        // that arrives in pseudo-random order: history predictors hover
        // near 50% (so confidence stays low), while ARVI resolves it
        // exactly from the value — and must override the L1.
        let mut bu = unit(PredictorConfig::ArviCurrent);
        let pc = 0x80u64;
        let srcs = [Some(PhysReg(40)), None];
        let mut lfsr: u64 = 0xACE1;
        let mut corrections = 0u64;
        let mut l1_wrong = 0u64;
        for _ in 0..400 {
            lfsr = lfsr.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = if (lfsr >> 33) & 1 == 1 { 5u64 } else { 9 };
            let taken = v == 5;
            if let Level2::Arvi(arvi) = &mut bu.level2 {
                arvi.writeback(PhysReg(40), v);
            }
            let d = bu.decide(pc, srcs, &CurrentValues, taken);
            if d.l1.taken != taken {
                l1_wrong += 1;
                if d.override_fired && d.final_taken == taken {
                    assert!(!d.confident, "override requires low confidence");
                    corrections += 1;
                }
            }
            bu.commit_branch(pc, &d, taken);
        }
        assert!(l1_wrong > 50, "L1 should struggle: wrong {l1_wrong}");
        assert!(
            corrections > l1_wrong / 2,
            "ARVI corrected only {corrections} of {l1_wrong} L1 misses"
        );
    }

    #[test]
    fn confident_branches_never_use_arvi() {
        let mut bu = unit(PredictorConfig::ArviCurrent);
        let pc = 0x100u64;
        // Drive L1 to high confidence with a biased branch.
        for _ in 0..30 {
            let d = bu.decide(pc, [None, None], &CurrentValues, true);
            bu.commit_branch(pc, &d, true);
        }
        let d = bu.decide(pc, [None, None], &CurrentValues, true);
        assert!(d.confident);
        assert!(!d.override_fired, "high confidence pins the L1 result");
    }

    #[test]
    fn hybrid_trains_both_levels() {
        let mut bu = unit(PredictorConfig::TwoLevelGskew);
        let pc = 0x200u64;
        for _ in 0..40 {
            let d = bu.decide(pc, [None, None], &CurrentValues, false);
            bu.commit_branch(pc, &d, false);
        }
        let d = bu.decide(pc, [None, None], &CurrentValues, false);
        assert!(!d.l1.taken);
        assert!(!d.final_taken);
    }

    #[test]
    fn decision_carries_indices_and_slot() {
        let mut bu = unit(PredictorConfig::TwoLevelGskew);
        let d = bu.decide(0x300, [None, None], &CurrentValues, true);
        // The L1 and hybrid L2 read four banks each; their carried
        // physical indices keep the bank tags in the low two bits.
        for (b, &idx) in d.l1.banks.iter().enumerate() {
            assert_eq!(idx as usize & 0b11, b);
        }
        for (b, &idx) in d.l2.banks.iter().enumerate() {
            assert_eq!(idx as usize & 0b11, b);
        }
        // Training with the carried record must not panic and must feed
        // the confidence slot resolved at predict time.
        bu.commit_branch(0x300, &d, true);
    }
}

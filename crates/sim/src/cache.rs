//! Set-associative cache model with LRU replacement.

use crate::params::CacheConfig;

/// A set-associative, write-allocate cache tracking hit/miss only (the
/// timing simulator turns misses into latency).
///
/// # Example
///
/// ```
/// use arvi_sim::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 32 });
/// assert!(!c.access(0x100));   // cold miss
/// assert!(c.access(0x104));    // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `log2(line_bytes)` — line/set/tag extraction is on the
    /// per-access hot path (once per load, store and fetched line), so
    /// the power-of-two shape is precomputed into shifts and a mask
    /// instead of re-deriving it with 64-bit divisions every access.
    line_shift: u32,
    /// `sets - 1`.
    set_mask: u64,
    /// `log2(sets)`.
    set_shift: u32,
    /// Tag per way per set; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamp per way per set.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are powers of two and consistent.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.line_bytes.is_power_of_two(), "line size not 2^n");
        assert!(cfg.ways > 0, "zero ways");
        let lines = cfg.size_bytes / cfg.line_bytes;
        assert!(
            lines.is_multiple_of(cfg.ways) && lines > 0,
            "size/line/ways inconsistent"
        );
        let sets = lines / cfg.ways;
        assert!(sets.is_power_of_two(), "set count not 2^n");
        Cache {
            cfg,
            line_shift: (cfg.line_bytes as u64).trailing_zeros(),
            set_mask: sets as u64 - 1,
            set_shift: (sets as u64).trailing_zeros(),
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured shape.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses the line containing `addr`; returns whether it hit.
    /// Misses allocate (write-allocate for stores, fill for loads).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let base = set * self.cfg.ways;
        let ways = base..base + self.cfg.ways;

        for i in ways.clone() {
            if self.tags[i] == tag {
                self.stamps[i] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        // LRU victim.
        let victim = ways.min_by_key(|&i| self.stamps[i]).expect("nonzero ways");
        self.tags[victim] = tag;
        self.stamps[victim] = self.tick;
        false
    }

    /// Probe without side effects.
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let base = set * self.cfg.ways;
        self.tags[base..base + self.cfg.ways].contains(&tag)
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32B lines = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 32,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0));
        assert!(c.access(31));
        assert!(!c.access(32));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn associativity_holds_two_conflicting_lines() {
        let mut c = small();
        // Same set (set stride = 4 lines x 32B = 128B).
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(c.access(0));
        assert!(c.access(128));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        c.access(0); // A
        c.access(128); // B
        c.access(0); // A again (B is LRU)
        c.access(256); // C evicts B
        assert!(c.contains(0));
        assert!(!c.contains(128));
        assert!(c.contains(256));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for i in 0..4u64 {
            assert!(!c.access(i * 32));
        }
        for i in 0..4u64 {
            assert!(c.access(i * 32));
        }
    }

    #[test]
    #[should_panic(expected = "not 2^n")]
    fn rejects_bad_line_size() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 300,
            ways: 2,
            line_bytes: 30,
        });
    }
}

//! The memory hierarchy: L1 I/D caches, unified L2, TLBs and memory.

use crate::cache::Cache;
use crate::params::SimParams;
use crate::tlb::Tlb;

/// The full memory hierarchy; accesses return a total latency in cycles.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    l1_latency: u64,
    l2_latency: u64,
    mem_latency: u64,
    tlb_miss_penalty: u64,
}

impl Hierarchy {
    /// Builds the hierarchy described by `params` (Table 2).
    pub fn new(params: &SimParams) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(params.l1i),
            l1d: Cache::new(params.l1d),
            l2: Cache::new(params.l2),
            itlb: Tlb::new(params.itlb),
            dtlb: Tlb::new(params.dtlb),
            l1_latency: params.l1_latency,
            l2_latency: params.l2_latency,
            mem_latency: params.mem_latency,
            tlb_miss_penalty: params.tlb_miss_penalty,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn access(
        l1: &mut Cache,
        l2: &mut Cache,
        tlb: &mut Tlb,
        addr: u64,
        l1_latency: u64,
        l2_latency: u64,
        mem_latency: u64,
        tlb_miss_penalty: u64,
    ) -> u64 {
        let mut latency = if tlb.access(addr) {
            0
        } else {
            tlb_miss_penalty
        };
        latency += l1_latency;
        if !l1.access(addr) {
            latency += l2_latency;
            if !l2.access(addr) {
                latency += mem_latency;
            }
        }
        latency
    }

    /// Instruction-fetch access: returns total latency in cycles.
    pub fn fetch_inst(&mut self, addr: u64) -> u64 {
        Hierarchy::access(
            &mut self.l1i,
            &mut self.l2,
            &mut self.itlb,
            addr,
            self.l1_latency,
            self.l2_latency,
            self.mem_latency,
            self.tlb_miss_penalty,
        )
    }

    /// Data access (load or store): returns total latency in cycles.
    pub fn access_data(&mut self, addr: u64) -> u64 {
        Hierarchy::access(
            &mut self.l1d,
            &mut self.l2,
            &mut self.dtlb,
            addr,
            self.l1_latency,
            self.l2_latency,
            self.mem_latency,
            self.tlb_miss_penalty,
        )
    }

    /// The L1 hit latency (fast-path cost already in the pipeline).
    pub fn l1_latency(&self) -> u64 {
        self.l1_latency
    }

    /// The largest latency any single access can return (TLB miss plus a
    /// miss at every level). [`access_data`](Hierarchy::access_data) and
    /// [`fetch_inst`](Hierarchy::fetch_inst) never exceed this — the
    /// contract the machine's calendar-queue horizon is sized against.
    pub fn max_access_latency(&self) -> u64 {
        self.tlb_miss_penalty + self.l1_latency + self.l2_latency + self.mem_latency
    }

    /// (hits, misses) of the instruction cache.
    pub fn l1i_stats(&self) -> (u64, u64) {
        (self.l1i.hits(), self.l1i.misses())
    }

    /// (hits, misses) of the data cache.
    pub fn l1d_stats(&self) -> (u64, u64) {
        (self.l1d.hits(), self.l1d.misses())
    }

    /// (hits, misses) of the unified L2.
    pub fn l2_stats(&self) -> (u64, u64) {
        (self.l2.hits(), self.l2.misses())
    }

    /// (hits, misses) of the instruction TLB.
    pub fn itlb_stats(&self) -> (u64, u64) {
        (self.itlb.hits(), self.itlb.misses())
    }

    /// (hits, misses) of the data TLB.
    pub fn dtlb_stats(&self) -> (u64, u64) {
        (self.dtlb.hits(), self.dtlb.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Depth, SimParams};

    #[test]
    fn latency_composition() {
        let p = SimParams::for_depth(Depth::D20);
        let mut h = Hierarchy::new(&p);
        // Cold: TLB miss + L1 miss + L2 miss + memory.
        let cold = h.access_data(0x5000);
        assert_eq!(cold, 30 + 2 + 12 + 100);
        assert_eq!(
            h.max_access_latency(),
            cold,
            "cold access is the worst case"
        );
        // Warm: pure L1 hit.
        let warm = h.access_data(0x5000);
        assert_eq!(warm, 2);
    }

    #[test]
    fn l2_catches_l1_victims() {
        let p = SimParams::for_depth(Depth::D20);
        let mut h = Hierarchy::new(&p);
        h.access_data(0x8000);
        // Evict from 16KB-per-way L1 by touching 5 conflicting lines
        // (same L1 set), then return: L2 should still hold it.
        for i in 1..=4u64 {
            h.access_data(0x8000 + i * 16 * 1024);
        }
        let back = h.access_data(0x8000);
        assert_eq!(back, 2 + 12, "L1 miss, L2 hit (TLB warm)");
    }

    #[test]
    fn inst_and_data_paths_are_separate_l1s() {
        let p = SimParams::for_depth(Depth::D20);
        let mut h = Hierarchy::new(&p);
        let _ = h.fetch_inst(0x100);
        // Data access to the same address still misses L1D (hits L2).
        let lat = h.access_data(0x100);
        assert_eq!(lat, 30 + 2 + 12, "L1D miss, L2 hit, DTLB cold");
        let (ih, im) = h.l1i_stats();
        assert_eq!((ih, im), (0, 1));
        let (dh, dm) = h.l1d_stats();
        assert_eq!((dh, dm), (0, 1));
    }

    #[test]
    fn depth_scales_latencies() {
        let mut h20 = Hierarchy::new(&SimParams::for_depth(Depth::D20));
        let mut h60 = Hierarchy::new(&SimParams::for_depth(Depth::D60));
        let c20 = h20.access_data(0);
        let c60 = h60.access_data(0);
        assert!(c60 > c20);
        assert_eq!(c60, 30 + 6 + 36 + 300);
    }
}

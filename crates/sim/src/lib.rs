//! # arvi-sim
//!
//! The trace-driven out-of-order superscalar timing simulator of the ARVI
//! reproduction (Chen, Dropsho & Albonesi, HPCA 2003) — the SimpleScalar-
//! class substrate the paper's evaluation runs on, built from scratch:
//!
//! * [`params`] — the paper's Table 2 machine and Table 4 predictor
//!   latencies, parameterized over 20/40/60-stage pipelines.
//! * [`cache`], [`tlb`], [`hierarchy`] — L1 I/D caches, unified L2, TLBs.
//! * [`source`] — the pluggable committed-instruction frontend
//!   ([`InstSource`]): live emulation or recorded-trace replay
//!   (`arvi-trace`).
//! * [`rename`] — fetch-time register rename with oracle value metadata.
//! * [`branch_unit`] — the two-level overriding predictor stack (2Bc-gskew
//!   level 1; 2Bc-gskew or ARVI level 2, confidence-gated), carrying the
//!   packed-table indices from predict to commit-time train.
//! * [`oracle`] — monomorphized [`ValueSource`](arvi_core::ValueSource)
//!   oracles for the ARVI current/load-back/perfect value regimes.
//! * [`wheel`] — the calendar-queue event scheduler: O(1) fixed-horizon
//!   cycle buckets with zero steady-state allocation.
//! * [`machine`] — the cycle engine: 4-wide fetch/issue/commit, dataflow
//!   scheduling over the wheel, load/store ordering, misprediction and
//!   override re-steer penalties.
//! * [`run`] — warmup + measurement-window harness producing
//!   [`SimResult`]s.
//!
//! ```no_run
//! use arvi_sim::{simulate, SimParams, Depth, PredictorConfig};
//! use arvi_workloads::Benchmark;
//!
//! let result = simulate(
//!     Benchmark::M88ksim.program(42),
//!     SimParams::for_depth(Depth::D20),
//!     PredictorConfig::ArviCurrent,
//!     100_000,
//!     1_000_000,
//! );
//! println!("IPC {:.3}, accuracy {:.2}%", result.ipc(), result.accuracy() * 100.0);
//! ```

pub mod branch_unit;
pub mod cache;
pub mod hierarchy;
pub mod machine;
pub mod oracle;
pub mod params;
pub mod rename;
pub mod run;
pub mod source;
pub mod tlb;
pub mod warmup;
pub mod wheel;

pub use branch_unit::{BranchDecision, BranchUnit, Level2};
pub use cache::Cache;
pub use hierarchy::Hierarchy;
pub use machine::{Machine, MachineStats, PcProfile};
pub use oracle::{LoadBackOracle, PerfectOracle, ReadyOracle};
pub use params::{ArviTuning, CacheConfig, Depth, PredictorConfig, SimParams, TlbConfig};
pub use rename::RenameState;
pub use run::{intern_name, simulate, simulate_source, simulate_source_probed, SimResult};
pub use source::{InstSource, IterSource, RebasedSource};
pub use tlb::Tlb;
pub use warmup::WarmupMachine;
pub use wheel::{EventWheel, SeqSet};

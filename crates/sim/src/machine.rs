//! The out-of-order machine model.
//!
//! A trace-driven, event-assisted cycle model of the paper's Table 2
//! machine: 4-wide fetch/issue/commit, 256-entry window, LSQ, functional
//! unit pools, the full memory hierarchy, and the two-level overriding
//! branch predictor stack. Instructions are renamed at fetch (as the
//! paper requires for the DDT), scheduled dataflow-fashion when their
//! operands are produced, and committed in order.
//!
//! The event core is a fixed-horizon calendar queue
//! ([`crate::wheel::EventWheel`]): writeback events and operand-ready
//! candidates are bucketed by cycle in O(1) with zero steady-state
//! allocation, and quiet stretches skip directly to the next occupied
//! bucket. Store/load memory ordering uses sorted-vector
//! [`crate::wheel::SeqSet`]s instead of `BTreeSet`s, branch decisions
//! ride in a commit-order FIFO beside the ROB instead of fattening every
//! entry, and per-register consumer wait lists live with the rename
//! state that wakes them. The previous heap-based core is preserved as
//! `arvi_bench::baseline::HeapMachine` and proved cycle-identical by
//! `tests/scheduler_equivalence.rs`.
//!
//! Trace-driven approximations (DESIGN.md substitution 2): fetch always
//! follows the correct path; a mispredicted branch stalls fetch until it
//! resolves, and a corrective level-2 override stalls fetch for the
//! level-2 latency. Wrong-path pollution is not modeled.

use std::collections::VecDeque;

use arvi_core::{CurrentValues, PhysReg, RenamedOp};
use arvi_isa::{DynInst, Emulator, InstKind};
use arvi_obs::{BranchResolution, CacheSnapshot, NullProbe, Probe};
use arvi_stats::Accuracy;

use crate::branch_unit::{BranchDecision, BranchUnit};
use crate::hierarchy::Hierarchy;
use crate::oracle::{LoadBackOracle, PerfectOracle, ReadyOracle};
use crate::params::{PredictorConfig, SimParams};
use crate::rename::RenameState;
use crate::source::InstSource;
use crate::wheel::{EventWheel, SeqSet};

/// Counter block for a machine run; figures are computed from snapshot
/// differences so warmup is excluded.
#[derive(Debug, Clone, Default)]
pub struct MachineStats {
    /// Committed instructions.
    pub committed: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Final (post-override) direction accuracy on conditional branches.
    pub cond_branches: Accuracy,
    /// Level-1-only accuracy (what the machine would do without L2).
    pub l1_only: Accuracy,
    /// Accuracy over ARVI-classified calculated branches.
    pub calc_class: Accuracy,
    /// Accuracy over ARVI-classified load branches.
    pub load_class: Accuracy,
    /// L2 overrides fired.
    pub overrides: u64,
    /// Overrides that corrected a wrong level-1 direction.
    pub overrides_correcting: u64,
    /// BVIT tag hits among ARVI predictions.
    pub bvit_hits: u64,
    /// Branches whose final direction was wrong (full flush).
    pub full_mispredicts: u64,
    /// Fetch re-steers caused by corrective overrides.
    pub override_restarts: u64,
}

impl MachineStats {
    /// Counters accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &MachineStats) -> MachineStats {
        MachineStats {
            committed: self.committed - earlier.committed,
            cycles: self.cycles - earlier.cycles,
            cond_branches: self.cond_branches.since(&earlier.cond_branches),
            l1_only: self.l1_only.since(&earlier.l1_only),
            calc_class: self.calc_class.since(&earlier.calc_class),
            load_class: self.load_class.since(&earlier.load_class),
            overrides: self.overrides - earlier.overrides,
            overrides_correcting: self.overrides_correcting - earlier.overrides_correcting,
            bvit_hits: self.bvit_hits - earlier.bvit_hits,
            full_mispredicts: self.full_mispredicts - earlier.full_mispredicts,
            override_restarts: self.override_restarts - earlier.override_restarts,
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of conditional branches classified as load branches.
    pub fn load_branch_fraction(&self) -> f64 {
        let total = self.calc_class.total() + self.load_class.total();
        if total == 0 {
            0.0
        } else {
            self.load_class.total() as f64 / total as f64
        }
    }
}

/// The reorder buffer as stage-local parallel arrays (structure of
/// arrays), indexed by `seq & mask` over a power-of-two ring. Each
/// pipeline stage touches only the columns it needs — commit scans a
/// contiguous byte of flags per entry, issue reads `kind`/`mem_addr`,
/// writeback sets one bit — instead of dragging a fat per-entry struct
/// (formerly a 56-byte `DynInst` plus bookkeeping, two cache lines)
/// through every stage. Branch decisions never enter the ROB at all:
/// they ride a commit-order FIFO next to it.
#[derive(Debug)]
struct Rob {
    mask: u64,
    /// Per-entry flag byte: see the `F_*` constants; the low two bits
    /// count outstanding operands.
    flags: Box<[u8]>,
    /// Earliest cycle the entry may issue (fetch cycle + front end).
    dispatch_ready: Box<[u64]>,
    /// Functional-unit class.
    kind: Box<[InstKind]>,
    /// Effective address (loads/stores).
    mem_addr: Box<[u64]>,
    /// Architectural result (forwarded to the ARVI shadow file).
    result: Box<[u64]>,
    /// Destination physical register (`NO_REG` = none).
    dest_phys: Box<[u16]>,
    /// Previous mapping to free at commit (`NO_REG` = none).
    prev_phys: Box<[u16]>,
}

/// Operand count lives in the low two bits of the flag byte.
const DEPS_MASK: u8 = 0b11;
const F_DONE: u8 = 1 << 2;
const F_ISSUED: u8 = 1 << 3;
const F_LOAD: u8 = 1 << 4;
const F_MEM: u8 = 1 << 5;
const F_BRANCH: u8 = 1 << 6;

/// No physical register (dest/prev columns).
const NO_REG: u16 = u16::MAX;

/// Timeline payload tag: `seq << 1 | EV_WRITEBACK` is a completion
/// event, an untagged `seq << 1` is an operand-ready issue candidate.
const EV_WRITEBACK: u64 = 1;

/// Records pulled from the instruction source per [`InstSource::fill`]
/// call — one trace chunk's worth of decode amortized over 64 fetches.
const FETCH_CHUNK: usize = 64;

/// Placeholder filling the fetch buffer's unwritten tail (never fetched:
/// consumption is bounded by the fill count).
const BLANK_INST: DynInst = DynInst {
    seq: 0,
    pc: 0,
    kind: InstKind::Halt,
    srcs: [None, None],
    dest: None,
    result: 0,
    mem_addr: 0,
    branch: None,
    hoist: 0,
};

impl Rob {
    fn new(entries: usize) -> Rob {
        let cap = entries.next_power_of_two();
        Rob {
            mask: cap as u64 - 1,
            flags: vec![0; cap].into_boxed_slice(),
            dispatch_ready: vec![0; cap].into_boxed_slice(),
            kind: vec![InstKind::Halt; cap].into_boxed_slice(),
            mem_addr: vec![0; cap].into_boxed_slice(),
            result: vec![0; cap].into_boxed_slice(),
            dest_phys: vec![NO_REG; cap].into_boxed_slice(),
            prev_phys: vec![NO_REG; cap].into_boxed_slice(),
        }
    }

    #[inline]
    fn idx(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }
}

/// A queued branch decision with the commit-time facts that used to be
/// re-read from the ROB entry.
#[derive(Debug)]
struct DecisionRec {
    pc: u64,
    actual: bool,
    dec: BranchDecision,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchState {
    Running,
    /// Waiting out an instruction-cache miss or a flush bubble.
    Stalled {
        until: u64,
    },
    /// Blocked behind a branch whose followed direction is (or may be)
    /// wrong; resumes at the override time (if the override corrects the
    /// direction) or at branch resolution, whichever first.
    BranchBlocked {
        seq: u64,
        resume_override: Option<u64>,
    },
}

/// Per-static-branch profile (optional instrumentation; see
/// [`Machine::enable_profiling`]).
#[derive(Debug, Clone, Default)]
pub struct PcProfile {
    /// Dynamic executions.
    pub total: u64,
    /// Final-direction correct.
    pub final_correct: u64,
    /// Level-1 correct.
    pub l1_correct: u64,
    /// BVIT tag hits (ARVI configs).
    pub bvit_hits: u64,
    /// Load-class instances.
    pub load_class: u64,
    /// Overrides fired.
    pub overrides: u64,
    /// Distinct (index, id, depth) signatures observed (capped at 4096).
    pub signatures: std::collections::HashSet<(usize, u8, u8)>,
    /// Histogram of depth tags.
    pub depths: std::collections::HashMap<u8, u64>,
    /// Histogram of leaf-set sizes (total, available).
    pub leaf_sizes: std::collections::HashMap<(u8, u8), u64>,
}

/// The machine: owns the instruction source (live [`Emulator`] or a
/// trace replayer — any [`InstSource`]), predictor stack, hierarchy and
/// scheduling state.
///
/// Generic over a [`Probe`] observing pipeline events; the default
/// [`NullProbe`] monomorphizes every hook away, so an unprobed machine
/// is bit- and speed-identical to the pre-probe machine
/// (`tests/probe_equivalence.rs`, `perf_guard`).
pub struct Machine<S: InstSource = Emulator, P: Probe = NullProbe> {
    params: SimParams,
    config: PredictorConfig,
    source: S,
    hier: Hierarchy,
    bu: BranchUnit,
    rename: RenameState,
    /// In-flight entries live in `[tail_seq, head_seq)` of the ring.
    rob: Rob,
    /// Commit-order decisions of in-flight conditional branches.
    decisions: VecDeque<DecisionRec>,
    tail_seq: u64,
    head_seq: u64,
    cycle: u64,
    /// The single calendar queue: writeback events and operand-ready
    /// issue candidates share cycle buckets, distinguished by the low
    /// payload bit (see `EV_WRITEBACK`). One bucket probe per cycle
    /// serves both, and one bitmap scan finds the next busy cycle.
    timeline: EventWheel,
    unissued_stores: SeqSet,
    mem_blocked_loads: SeqSet,
    mem_in_flight: usize,
    fetch_state: FetchState,
    /// Block-decoded fetch buffer: the source fills it a chunk at a
    /// time ([`InstSource::fill`]), fetch consumes `fetch_pos..fetch_len`.
    fetch_buf: Box<[DynInst]>,
    fetch_pos: usize,
    fetch_len: usize,
    current_fetch_line: u64,
    /// `log2(l1i.line_bytes)` — fetch computes a line per instruction.
    fetch_line_shift: u32,
    trace_done: bool,
    /// Load-back availability window (dynamic instructions): a hoisted
    /// load is treated as available to ARVI if its gap-plus-hoist covers
    /// the fetch-to-writeback distance.
    lb_window: u64,
    stats: MachineStats,
    /// Hard commit ceiling: commit stops mid-cycle once this many total
    /// instructions have committed (`u64::MAX` = no cap). Lets sampled
    /// measurement windows end on an exact instruction boundary instead
    /// of overshooting by up to `commit_width - 1`.
    commit_cap: u64,
    profile: Option<std::collections::HashMap<u64, PcProfile>>,
    /// Cycle at which fetch last entered `BranchBlocked` (mispredict
    /// recovery depth = release cycle minus this).
    blocked_since: u64,
    probe: P,
    /// Reusable per-cycle buffers — the scheduler loop runs every cycle,
    /// so these must not be reallocated per call.
    due_scratch: Vec<u64>,
    eligible_scratch: Vec<u64>,
    leftover_scratch: Vec<u64>,
    woken_scratch: Vec<u64>,
    ready_loads_scratch: Vec<u64>,
}

impl<S: InstSource> Machine<S> {
    /// Builds a machine consuming `source`'s committed stream under
    /// `config`, with the no-op [`NullProbe`].
    pub fn new(source: S, params: SimParams, config: PredictorConfig) -> Machine<S> {
        Machine::with_probe(source, params, config, NullProbe)
    }
}

impl<S: InstSource, P: Probe> Machine<S, P> {
    /// [`Machine::new`] with an explicit observation probe.
    pub fn with_probe(
        source: S,
        params: SimParams,
        config: PredictorConfig,
        probe: P,
    ) -> Machine<S, P> {
        let hier = Hierarchy::new(&params);
        let bu = BranchUnit::new(&params, config);
        Machine::assemble(source, params, config, probe, bu, hier)
    }

    /// Builds a machine around pre-warmed predictor and hierarchy state
    /// (the sampled-simulation handoff: a
    /// [`WarmupMachine`](crate::warmup::WarmupMachine) trains `bu` and
    /// `hier` at emulation speed, then the detailed measurement starts
    /// here). Rename/ROB/scheduler state always starts cold — those
    /// describe in-flight instructions, of which there are none yet.
    pub(crate) fn assemble(
        source: S,
        params: SimParams,
        config: PredictorConfig,
        probe: P,
        bu: BranchUnit,
        hier: Hierarchy,
    ) -> Machine<S, P> {
        let lb_window =
            params.fetch_width as u64 * (params.frontend_latency + params.l1_latency + 1);
        // A zero-latency front end would make an instruction issue-ready
        // in its own fetch cycle, after the issue stage already ran; the
        // scheduler relies on dispatch readiness being strictly future.
        assert!(params.frontend_latency >= 1, "front end must be >= 1 cycle");
        // The wheel horizon must exceed every schedulable delay:
        // `max_event_latency` is the single source of that bound (worst
        // writeback latency, FU latencies, front-end dispatch delay).
        // Cross-check it against what the hierarchy can actually
        // return, so the two can never drift apart silently.
        let max_delay = params.max_event_latency();
        assert!(
            max_delay > hier.max_access_latency(),
            "wheel horizon bound {} does not cover the hierarchy's worst access (1 + {})",
            max_delay,
            hier.max_access_latency()
        );
        Machine {
            bu,
            rename: RenameState::new(params.phys_regs),
            rob: Rob::new(params.rob_entries),
            decisions: VecDeque::new(),
            tail_seq: 0,
            head_seq: 0,
            cycle: 0,
            timeline: EventWheel::with_max_delay(max_delay),
            unissued_stores: SeqSet::default(),
            mem_blocked_loads: SeqSet::default(),
            mem_in_flight: 0,
            fetch_state: FetchState::Running,
            fetch_buf: vec![BLANK_INST; FETCH_CHUNK].into_boxed_slice(),
            fetch_pos: 0,
            fetch_len: 0,
            current_fetch_line: u64::MAX,
            fetch_line_shift: (params.l1i.line_bytes as u64).trailing_zeros(),
            trace_done: false,
            lb_window,
            stats: MachineStats::default(),
            commit_cap: u64::MAX,
            profile: None,
            blocked_since: 0,
            probe,
            due_scratch: Vec::new(),
            eligible_scratch: Vec::new(),
            leftover_scratch: Vec::new(),
            woken_scratch: Vec::new(),
            ready_loads_scratch: Vec::new(),
            hier,
            source,
            params,
            config,
        }
    }

    /// Current statistics (snapshot for window differencing).
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Turns on per-static-branch profiling (diagnostics; small overhead).
    pub fn enable_profiling(&mut self) {
        self.profile = Some(std::collections::HashMap::new());
    }

    /// The per-PC branch profiles collected since profiling was enabled.
    pub fn profile(&self) -> Option<&std::collections::HashMap<u64, PcProfile>> {
        self.profile.as_ref()
    }

    /// The memory hierarchy (for cache statistics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// The branch-prediction stack.
    pub fn branch_unit(&self) -> &BranchUnit {
        &self.bu
    }

    /// The observation probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Pushes end-of-run cache/TLB totals into the probe and consumes
    /// the machine, returning the probe. Run harnesses call this once
    /// after the measurement window.
    pub fn into_probe(mut self) -> P {
        let snap = CacheSnapshot {
            l1i: self.hier.l1i_stats(),
            l1d: self.hier.l1d_stats(),
            l2: self.hier.l2_stats(),
            itlb: self.hier.itlb_stats(),
            dtlb: self.hier.dtlb_stats(),
        };
        self.probe.on_cache_stats(&snap);
        self.probe
    }

    #[inline]
    fn rob_is_empty(&self) -> bool {
        self.tail_seq == self.head_seq
    }

    /// Runs until `target` total instructions have committed (or the
    /// trace ends). Returns the number committed.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (an internal invariant violation).
    pub fn run_until_committed(&mut self, target: u64) -> u64 {
        while self.stats.committed < target {
            if self.trace_done && self.rob_is_empty() {
                break;
            }
            self.step_cycle();
        }
        self.stats.committed
    }

    /// [`run_until_committed`](Machine::run_until_committed), but the
    /// commit stage stops *exactly* at `target` — the final cycle
    /// commits a partial group instead of a full `commit_width` one, so
    /// a measurement window ends on a precise instruction boundary.
    /// Sampling depends on this: with an exact cap, a 100%-coverage
    /// plan's tiled windows measure the same instruction population as
    /// one contiguous run, commit for commit. The cap is cleared before
    /// returning; instructions already completed in the window commit on
    /// the next call.
    pub fn run_until_committed_exact(&mut self, target: u64) -> u64 {
        self.commit_cap = target;
        let committed = self.run_until_committed(target);
        self.commit_cap = u64::MAX;
        committed
    }

    fn step_cycle(&mut self) {
        self.probe
            .on_cycle(self.cycle, (self.head_seq - self.tail_seq) as u32);
        // One bucket probe serves the whole cycle: completions and due
        // issue candidates arrive together, tagged by the low bit.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        let mut eligible = std::mem::take(&mut self.eligible_scratch);
        eligible.clear();
        self.timeline.drain_due_into(self.cycle, &mut due);

        let mut activity = false;
        activity |= self.process_events(&due, &mut eligible);
        activity |= self.commit();
        self.check_override_resume();
        activity |= self.issue(&mut eligible);
        activity |= self.fetch();
        self.stats.cycles += 1;
        self.due_scratch = due;
        self.eligible_scratch = eligible;

        if activity || (self.trace_done && self.rob_is_empty()) {
            self.cycle += 1;
            return;
        }
        // Quiet cycle: skip to the next occupied wheel bucket (or fetch
        // resume time). Every bucket strictly between is empty, so no
        // event can be missed by the jump.
        let mut next = self.timeline.next_after(self.cycle).unwrap_or(u64::MAX);
        match self.fetch_state {
            FetchState::Stalled { until } => next = next.min(until),
            FetchState::BranchBlocked {
                resume_override: Some(t),
                ..
            } => next = next.min(t),
            _ => {}
        }
        assert!(
            next != u64::MAX,
            "machine deadlocked at cycle {} (rob {}, timeline {}, committed {})",
            self.cycle,
            self.head_seq - self.tail_seq,
            self.timeline.len(),
            self.stats.committed
        );
        let jump = next.max(self.cycle + 1);
        self.stats.cycles += jump - self.cycle - 1;
        self.cycle = jump;
    }

    /// Processes writeback/resolution events due this cycle; untagged
    /// payloads are issue candidates and seed `eligible` directly.
    fn process_events(&mut self, due: &[u64], eligible: &mut Vec<u64>) -> bool {
        let mut any = false;
        for &item in due {
            if item & EV_WRITEBACK == 0 {
                eligible.push(item >> 1);
                continue;
            }
            let seq = item >> 1;
            any = true;
            self.probe.on_writeback(self.cycle, seq);
            let i = self.rob.idx(seq);
            let flags = self.rob.flags[i] | F_DONE;
            self.rob.flags[i] = flags;
            let dest = self.rob.dest_phys[i];
            if dest != NO_REG {
                let p = PhysReg(dest);
                self.rename.set_ready(p, self.cycle);
                if self.config.is_arvi() {
                    self.bu.writeback(p, self.rob.result[i]);
                }
                // Drain the wait list into the reused scratch (keeping
                // both buffers' capacity).
                let mut woken = std::mem::take(&mut self.woken_scratch);
                woken.clear();
                self.rename.take_waiters_into(p, &mut woken);
                for &w in &woken {
                    let wi = self.rob.idx(w);
                    let f = self.rob.flags[wi] - 1;
                    self.rob.flags[wi] = f;
                    if f & DEPS_MASK == 0 {
                        self.make_issue_candidate(w, Some(eligible));
                    }
                }
                self.woken_scratch = woken;
            }
            if flags & F_BRANCH != 0 {
                // Branch resolution: release a blocked fetch (flush +
                // redirect costs one bubble before refetch).
                if let FetchState::BranchBlocked { seq: blocked, .. } = self.fetch_state {
                    if blocked == seq {
                        self.probe
                            .on_recovery(self.cycle, self.cycle - self.blocked_since);
                        self.fetch_state = FetchState::Stalled {
                            until: self.cycle + 1,
                        };
                    }
                }
            }
        }
        any
    }

    /// Moves an operand-ready instruction into the scheduler, honoring
    /// load-after-store ordering. During event processing (before the
    /// issue stage has run) a candidate already due joins `eligible`
    /// directly instead of round-tripping through this cycle's —
    /// already drained — bucket.
    fn make_issue_candidate(&mut self, seq: u64, eligible: Option<&mut Vec<u64>>) {
        let i = self.rob.idx(seq);
        let earliest = self.rob.dispatch_ready[i].max(self.cycle);
        if self.rob.flags[i] & F_LOAD != 0 {
            if let Some(oldest_store) = self.unissued_stores.first() {
                if oldest_store < seq {
                    // Older store with unknown address: wait.
                    self.mem_blocked_loads.insert(seq);
                    return;
                }
            }
        }
        match eligible {
            Some(out) if earliest <= self.cycle => out.push(seq),
            _ => self.timeline.schedule(self.cycle, earliest, seq << 1),
        }
    }

    /// In-order commit of completed instructions (read in place from the
    /// ring; nothing is copied out).
    fn commit(&mut self) -> bool {
        let mut n = 0;
        while n < self.params.commit_width && self.stats.committed < self.commit_cap {
            if self.tail_seq == self.head_seq {
                break;
            }
            let seq = self.tail_seq;
            let i = self.rob.idx(seq);
            let flags = self.rob.flags[i];
            if flags & F_DONE == 0 {
                break;
            }
            self.probe.on_commit(self.cycle, seq);
            self.tail_seq += 1;
            let prev = self.rob.prev_phys[i];
            if prev != NO_REG {
                self.rename.release(PhysReg(prev));
            }
            if self.config.is_arvi() {
                self.bu.commit_inst();
            }
            if flags & F_MEM != 0 {
                self.mem_in_flight -= 1;
            }
            if flags & F_BRANCH != 0 {
                let rec = self
                    .decisions
                    .pop_front()
                    .expect("every in-flight conditional branch queued a decision");
                self.bu.commit_branch(rec.pc, &rec.dec, rec.actual);
                self.record_branch_stats(rec.pc, &rec.dec, rec.actual);
            }
            self.stats.committed += 1;
            n += 1;
        }
        n > 0
    }

    fn record_branch_stats(&mut self, pc: u64, decision: &BranchDecision, actual: bool) {
        if P::ENABLED {
            self.probe.on_branch_resolve(
                self.cycle,
                pc,
                &BranchResolution {
                    actual,
                    final_taken: decision.final_taken,
                    l1_taken: decision.l1.taken,
                    confident: decision.confident,
                    override_fired: decision.override_fired,
                    bvit_hit: decision
                        .arvi
                        .as_ref()
                        .is_some_and(|ap| ap.direction.is_some()),
                    load_class: decision
                        .arvi
                        .as_ref()
                        .map(|ap| ap.class == arvi_core::BranchClass::Load),
                },
            );
        }
        let correct = decision.final_taken == actual;
        self.stats.cond_branches.record(correct);
        self.stats.l1_only.record(decision.l1.taken == actual);
        if let Some(ap) = &decision.arvi {
            match ap.class {
                arvi_core::BranchClass::Calculated => self.stats.calc_class.record(correct),
                arvi_core::BranchClass::Load => self.stats.load_class.record(correct),
            }
            if ap.direction.is_some() {
                self.stats.bvit_hits += 1;
            }
        }
        if decision.override_fired {
            self.stats.overrides += 1;
            if correct && decision.l1.taken != actual {
                self.stats.overrides_correcting += 1;
            }
        }
        if let Some(profile) = &mut self.profile {
            let p = profile.entry(pc).or_default();
            p.total += 1;
            p.final_correct += correct as u64;
            p.l1_correct += (decision.l1.taken == actual) as u64;
            p.overrides += decision.override_fired as u64;
            if let Some(ap) = &decision.arvi {
                p.bvit_hits += ap.direction.is_some() as u64;
                p.load_class += (ap.class == arvi_core::BranchClass::Load) as u64;
                if p.signatures.len() < 4096 {
                    p.signatures.insert((ap.index, ap.id_tag, ap.depth_tag));
                }
                *p.depths.entry(ap.depth_tag).or_default() += 1;
                *p.leaf_sizes
                    .entry((ap.leaf_regs.len() as u8, ap.available as u8))
                    .or_default() += 1;
            }
        }
    }

    fn check_override_resume(&mut self) {
        if let FetchState::BranchBlocked {
            resume_override: Some(t),
            ..
        } = self.fetch_state
        {
            if t <= self.cycle {
                self.fetch_state = FetchState::Running;
            }
        }
        if let FetchState::Stalled { until } = self.fetch_state {
            if until <= self.cycle {
                self.fetch_state = FetchState::Running;
            }
        }
    }

    /// Dataflow issue: oldest-first among ready candidates, bounded by
    /// issue width and functional-unit pools. The wheel hands over this
    /// cycle's bucket in insertion order; the single age sort here is
    /// the only ordering work in the whole scheduler.
    fn issue(&mut self, eligible: &mut [u64]) -> bool {
        if eligible.is_empty() {
            return false;
        }
        eligible.sort_unstable();

        let mut alus = self.params.int_alus;
        let mut muldiv = self.params.int_muldiv;
        let mut ports = self.params.mem_ports;
        let mut issued = 0usize;
        let mut leftovers = std::mem::take(&mut self.leftover_scratch);
        leftovers.clear();

        for &seq in eligible.iter() {
            if issued == self.params.issue_width {
                leftovers.push(seq);
                continue;
            }
            let kind = self.rob.kind[self.rob.idx(seq)];
            let fu = match kind {
                InstKind::IntMul | InstKind::IntDiv => &mut muldiv,
                InstKind::Load | InstKind::Store => &mut ports,
                _ => &mut alus,
            };
            if *fu == 0 {
                leftovers.push(seq);
                continue;
            }
            *fu -= 1;
            issued += 1;
            self.issue_one(seq);
        }
        for &seq in &leftovers {
            self.timeline.schedule(self.cycle, self.cycle + 1, seq << 1);
        }
        self.leftover_scratch = leftovers;
        self.probe
            .on_issue(self.cycle, issued as u32, self.params.issue_width as u32);
        issued > 0
    }

    fn issue_one(&mut self, seq: u64) {
        let i = self.rob.idx(seq);
        debug_assert!(self.rob.flags[i] & F_ISSUED == 0, "double issue of {seq}");
        self.rob.flags[i] |= F_ISSUED;
        let (kind, addr) = (self.rob.kind[i], self.rob.mem_addr[i]);
        let latency = match kind {
            InstKind::IntMul => self.params.mul_latency,
            InstKind::IntDiv => self.params.div_latency,
            InstKind::Load => {
                let lat = 1 + self.hier.access_data(addr);
                self.probe.on_mem_access(self.cycle, seq, lat);
                lat
            }
            InstKind::Store => {
                let lat = self.hier.access_data(addr);
                self.probe.on_mem_access(self.cycle, seq, lat);
                self.unissued_stores.remove(seq);
                self.unblock_loads();
                1
            }
            _ => 1,
        };
        self.timeline
            .schedule(self.cycle, self.cycle + latency, (seq << 1) | EV_WRITEBACK);
    }

    /// Re-examines loads blocked on store ordering after a store issues.
    fn unblock_loads(&mut self) {
        let bound = self.unissued_stores.first();
        let mut ready = std::mem::take(&mut self.ready_loads_scratch);
        ready.clear();
        self.mem_blocked_loads.drain_below_into(bound, &mut ready);
        for &seq in &ready {
            let earliest = self.rob.dispatch_ready[self.rob.idx(seq)].max(self.cycle + 1);
            self.timeline.schedule(self.cycle, earliest, seq << 1);
        }
        self.ready_loads_scratch = ready;
    }

    /// The next trace record out of the block-decoded fetch buffer,
    /// refilling a chunk at a time from the source.
    #[inline]
    fn next_from_buffer(&mut self) -> Option<DynInst> {
        if self.fetch_pos == self.fetch_len {
            self.fetch_len = self.source.fill(&mut self.fetch_buf);
            self.fetch_pos = 0;
            if self.fetch_len == 0 {
                return None;
            }
        }
        let d = self.fetch_buf[self.fetch_pos];
        self.fetch_pos += 1;
        Some(d)
    }

    /// Returns the most recently pulled record to the buffer (fetch
    /// gates that must retry the same instruction next cycle).
    #[inline]
    fn unfetch(&mut self) {
        debug_assert!(self.fetch_pos > 0, "nothing to return");
        self.fetch_pos -= 1;
    }

    /// Fetches, renames and dispatches up to `fetch_width` instructions.
    fn fetch(&mut self) -> bool {
        if self.fetch_state != FetchState::Running || self.trace_done {
            return false;
        }
        let mut fetched = 0usize;
        while fetched < self.params.fetch_width {
            if (self.head_seq - self.tail_seq) as usize >= self.params.rob_entries {
                break;
            }
            // Pull the next trace record.
            let d = match self.next_from_buffer() {
                Some(d) => d,
                None => {
                    self.trace_done = true;
                    break;
                }
            };
            // LSQ occupancy gate.
            if (d.is_load() || d.is_store()) && self.mem_in_flight >= self.params.lsq_entries {
                self.unfetch();
                break;
            }
            // Instruction-cache access, once per new line.
            let line = d.byte_pc() >> self.fetch_line_shift;
            if line != self.current_fetch_line {
                let lat = self.hier.fetch_inst(d.byte_pc());
                self.current_fetch_line = line;
                if lat > self.params.l1_latency {
                    // Miss: hit latency is hidden in the front end, the
                    // excess stalls fetch.
                    self.fetch_state = FetchState::Stalled {
                        until: self.cycle + (lat - self.params.l1_latency),
                    };
                    self.unfetch();
                    break;
                }
            }
            let taken_control = self.fetch_one(d);
            fetched += 1;
            if taken_control || self.fetch_state != FetchState::Running {
                break;
            }
        }
        fetched > 0
    }

    /// Renames and dispatches one instruction; returns whether it was a
    /// taken control transfer (ending the fetch group).
    fn fetch_one(&mut self, d: DynInst) -> bool {
        let seq = d.seq;
        debug_assert_eq!(seq, self.head_seq);
        self.probe
            .on_fetch(self.cycle, seq, d.byte_pc(), d.is_branch(), d.is_load());

        // Source operands through the rename map.
        let src_phys = [
            d.srcs[0].map(|r| self.rename.lookup(r)),
            d.srcs[1].map(|r| self.rename.lookup(r)),
        ];

        // Conditional branch: predict BEFORE inserting the branch into the
        // DDT (the chain read precedes the branch's own insertion).
        if d.is_branch() {
            let actual = d.branch.expect("is_branch").taken;
            let pc = d.byte_pc();
            let rename = &self.rename;
            let now = self.cycle;
            // Each configuration's oracle is a concrete ValueSource, so
            // the whole predict path monomorphizes per arm.
            let dec = match self.config {
                PredictorConfig::TwoLevelGskew => {
                    self.bu.decide(pc, src_phys, &CurrentValues, actual)
                }
                PredictorConfig::ArviCurrent => {
                    self.bu
                        .decide(pc, src_phys, &ReadyOracle { rename, now }, actual)
                }
                PredictorConfig::ArviLoadBack => {
                    let oracle = LoadBackOracle {
                        rename,
                        now,
                        fetch_seq: seq,
                        lb_window: self.lb_window,
                    };
                    self.bu.decide(pc, src_phys, &oracle, actual)
                }
                PredictorConfig::ArviPerfect => {
                    self.bu
                        .decide(pc, src_phys, &PerfectOracle { rename }, actual)
                }
            };
            if P::ENABLED {
                if let Some(ap) = &dec.arvi {
                    self.probe.on_chain_read(
                        self.cycle,
                        pc,
                        ap.chain_len as u32,
                        ap.leaf_regs.len() as u32,
                        ap.available as u32,
                    );
                }
            }
            // Fetch disruption bookkeeping.
            if dec.final_taken != actual {
                self.stats.full_mispredicts += 1;
                self.probe.on_mispredict(
                    self.cycle,
                    seq,
                    pc,
                    (self.head_seq - self.tail_seq) as u32,
                );
                self.blocked_since = self.cycle;
                self.fetch_state = FetchState::BranchBlocked {
                    seq,
                    resume_override: None,
                };
            } else if dec.l1.taken != actual {
                // The L2 override will re-steer fetch after its latency.
                self.stats.override_restarts += 1;
                self.blocked_since = self.cycle;
                self.fetch_state = FetchState::BranchBlocked {
                    seq,
                    resume_override: Some(self.bu.resolve_override_at(self.cycle)),
                };
            }
            self.decisions.push_back(DecisionRec { pc, actual, dec });
        }

        // Rename the destination.
        let (dest_phys, prev_phys) = match d.dest {
            Some(logical) => {
                let (new, prev) =
                    self.rename
                        .allocate(logical, seq, d.result, d.is_load(), d.hoist);
                (Some(new), Some(prev))
            }
            None => (None, None),
        };

        // Dependence-tracker insertion (every instruction, ARVI configs).
        if self.config.is_arvi() {
            let op = RenamedOp {
                dest: dest_phys,
                srcs: src_phys,
                is_load: d.is_load(),
            };
            self.bu.rename_op(&op, d.dest);
            if P::ENABLED {
                self.probe
                    .on_ddt_insert(self.cycle, seq, self.bu.ddt_occupancy() as u32);
            }
        }

        // Dataflow bookkeeping, written column-wise into the ring slot.
        let mut deps = 0u8;
        for p in src_phys.into_iter().flatten() {
            if !self.rename.is_ready(p, self.cycle) {
                self.rename.add_waiter(p, seq);
                deps += 1;
            }
        }
        let is_mem = d.is_load() || d.is_store();
        if is_mem {
            self.mem_in_flight += 1;
        }
        if d.is_store() {
            self.unissued_stores.push_monotonic(seq);
        }
        let taken_control = d.branch.map(|b| b.taken).unwrap_or(false);
        let i = self.rob.idx(seq);
        self.rob.flags[i] = deps
            | if d.is_load() { F_LOAD } else { 0 }
            | if is_mem { F_MEM } else { 0 }
            | if d.is_branch() { F_BRANCH } else { 0 };
        self.rob.dispatch_ready[i] = self.cycle + self.params.frontend_latency;
        self.rob.kind[i] = d.kind;
        self.rob.mem_addr[i] = d.mem_addr;
        self.rob.result[i] = d.result;
        self.rob.dest_phys[i] = dest_phys.map_or(NO_REG, |p| p.0);
        self.rob.prev_phys[i] = prev_phys.map_or(NO_REG, |p| p.0);
        self.head_seq += 1;
        if deps == 0 {
            // Fetch runs after issue: dispatch readiness is always in the
            // future here (`frontend_latency >= 1`, asserted at build).
            self.make_issue_candidate(seq, None);
        }
        taken_control
    }
}

impl<S: InstSource, P: Probe> std::fmt::Debug for Machine<S, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.config)
            .field("cycle", &self.cycle)
            .field("committed", &self.stats.committed)
            .field("rob", &(self.head_seq - self.tail_seq))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Depth;
    use arvi_isa::{regs::*, AluOp, Cond, ProgramBuilder};

    fn machine_for(program: arvi_isa::Program, config: PredictorConfig) -> Machine {
        Machine::new(Emulator::new(program), SimParams::small_test(), config)
    }

    #[test]
    fn straight_line_commits_everything() {
        let mut b = ProgramBuilder::new();
        for i in 0..40 {
            b.alu_imm(AluOp::Add, T0, T0, i);
        }
        b.halt();
        let mut m = machine_for(b.build(), PredictorConfig::TwoLevelGskew);
        let committed = m.run_until_committed(1_000);
        assert_eq!(committed, 40);
        assert!(m.stats().cycles > 0);
    }

    #[test]
    fn dependent_chain_is_slower_than_independent_ops() {
        // Loop a small body many times so the instruction cache is warm
        // and execution, not fetch, is the bottleneck.
        let build = |serial: bool| {
            let mut b = ProgramBuilder::new();
            b.li(S0, 0);
            b.li(S1, 200);
            let head = b.here();
            for i in 0..16 {
                if serial {
                    b.alu_imm(AluOp::Add, T0, T0, 1); // dependent chain
                } else {
                    let rd = [T0, T1, T2, T3][i % 4];
                    b.alu_imm(AluOp::Add, rd, ZERO, 1); // independent
                }
            }
            b.alu_imm(AluOp::Add, S0, S0, 1);
            b.branch(Cond::Ne, S0, S1, head);
            b.halt();
            b.build()
        };
        let mut mc = machine_for(build(true), PredictorConfig::TwoLevelGskew);
        mc.run_until_committed(100_000);
        let mut mp = machine_for(build(false), PredictorConfig::TwoLevelGskew);
        mp.run_until_committed(100_000);
        assert!(
            mc.stats().cycles as f64 > mp.stats().cycles as f64 * 1.5,
            "chain {} vs parallel {}",
            mc.stats().cycles,
            mp.stats().cycles
        );
    }

    #[test]
    fn branchy_loop_runs_and_counts_branches() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 0);
        b.li(T1, 500);
        let head = b.here();
        b.alu_imm(AluOp::Add, T0, T0, 1);
        b.branch(Cond::Ne, T0, T1, head);
        b.halt();
        let mut m = machine_for(b.build(), PredictorConfig::TwoLevelGskew);
        m.run_until_committed(100_000);
        assert_eq!(m.stats().cond_branches.total(), 500);
        // A counted loop back-edge is almost perfectly predictable.
        assert!(m.stats().cond_branches.rate() > 0.95);
    }

    #[test]
    fn misprediction_costs_cycles() {
        // A branch driven by a value the predictor cannot learn (LFSR
        // parity) versus the same loop with a constant branch.
        let build = |noisy: bool| {
            let mut b = ProgramBuilder::new();
            b.li(S0, 0xACE1);
            b.li(T1, 0);
            b.li(T2, 2000);
            let head = b.here();
            // x = lfsr step
            b.alu_imm(AluOp::Srl, T3, S0, 0);
            b.alu_imm(AluOp::Srl, T4, S0, 2);
            b.alu(AluOp::Xor, T3, T3, T4);
            b.alu_imm(AluOp::Srl, T4, S0, 3);
            b.alu(AluOp::Xor, T3, T3, T4);
            b.alu_imm(AluOp::Srl, T4, S0, 5);
            b.alu(AluOp::Xor, T3, T3, T4);
            b.alu_imm(AluOp::And, T3, T3, 1);
            b.alu_imm(AluOp::Srl, S0, S0, 1);
            b.alu_imm(AluOp::Sll, T4, T3, 15);
            b.alu(AluOp::Or, S0, S0, T4);
            let skip = b.label();
            if noisy {
                b.branch_to_label(Cond::Eq, T3, ZERO, skip); // random-ish
            } else {
                b.branch_to_label(Cond::Eq, ZERO, ZERO, skip); // always taken
            }
            b.alu_imm(AluOp::Add, T5, T5, 1);
            b.bind(skip);
            b.alu_imm(AluOp::Add, T1, T1, 1);
            b.branch(Cond::Ne, T1, T2, head);
            b.halt();
            b.build()
        };
        let mut noisy = machine_for(build(true), PredictorConfig::TwoLevelGskew);
        noisy.run_until_committed(1_000_000);
        let mut quiet = machine_for(build(false), PredictorConfig::TwoLevelGskew);
        quiet.run_until_committed(1_000_000);
        assert!(
            noisy.stats().cycles as f64 > quiet.stats().cycles as f64 * 1.2,
            "noisy {} vs quiet {}",
            noisy.stats().cycles,
            quiet.stats().cycles
        );
        assert!(noisy.stats().full_mispredicts > 300);
    }

    #[test]
    fn arvi_config_tracks_classes() {
        // Loads feeding branches produce load-class records.
        let mut b = ProgramBuilder::new();
        b.data(0x100, 1);
        b.li(S0, 0x100);
        b.li(T1, 0);
        b.li(T2, 300);
        let head = b.here();
        b.load(T3, S0, 0);
        let skip = b.label();
        b.branch_to_label(Cond::Eq, T3, ZERO, skip); // load branch
        b.alu_imm(AluOp::Add, T4, T4, 1);
        b.bind(skip);
        b.alu_imm(AluOp::Add, T1, T1, 1);
        b.branch(Cond::Ne, T1, T2, head); // calculated branch
        b.halt();
        let mut m = machine_for(b.build(), PredictorConfig::ArviCurrent);
        m.run_until_committed(1_000_000);
        let s = m.stats();
        assert!(
            s.load_class.total() > 100,
            "load-class {}",
            s.load_class.total()
        );
        assert!(
            s.calc_class.total() > 100,
            "calc-class {}",
            s.calc_class.total()
        );
    }

    #[test]
    fn deeper_pipeline_is_slower_on_mispredicts() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.li(S0, 0xBEEF);
            b.li(T1, 0);
            b.li(T2, 1000);
            let head = b.here();
            b.alu_imm(AluOp::Mul, S0, S0, 6364136223846793005u64 as i64);
            b.alu_imm(AluOp::Add, S0, S0, 1442695040888963407u64 as i64);
            b.alu_imm(AluOp::Srl, T3, S0, 33);
            b.alu_imm(AluOp::And, T3, T3, 1);
            let skip = b.label();
            b.branch_to_label(Cond::Eq, T3, ZERO, skip);
            b.alu_imm(AluOp::Add, T4, T4, 1);
            b.bind(skip);
            b.alu_imm(AluOp::Add, T1, T1, 1);
            b.branch(Cond::Ne, T1, T2, head);
            b.halt();
            b.build()
        };
        let mut d20 = Machine::new(
            Emulator::new(build()),
            SimParams::for_depth(Depth::D20),
            PredictorConfig::TwoLevelGskew,
        );
        d20.run_until_committed(1_000_000);
        let mut d60 = Machine::new(
            Emulator::new(build()),
            SimParams::for_depth(Depth::D60),
            PredictorConfig::TwoLevelGskew,
        );
        d60.run_until_committed(1_000_000);
        assert!(
            d60.stats().cycles as f64 > d20.stats().cycles as f64 * 1.3,
            "d60 {} vs d20 {}",
            d60.stats().cycles,
            d20.stats().cycles
        );
    }
}

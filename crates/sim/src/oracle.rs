//! Machine-side [`ValueSource`] oracles for the ARVI configurations.
//!
//! The paper evaluates ARVI under three value regimes (Section 5): the
//! base *current value* configuration reads the predictor's own shadow
//! register file ([`arvi_core::CurrentValues`]); the *perfect value* and
//! *load back* configurations let the host simulator supply
//! architectural values from its rename state. Each regime is a concrete
//! type here, so `BranchUnit::decide` monomorphizes the value lookup
//! straight into the prediction loop — the seed-era `&dyn Fn` closure
//! paid a dynamic dispatch per leaf register of every predicted branch.

use arvi_core::{PhysReg, ValueSource};

use crate::rename::RenameState;

/// *ARVI current* over the machine's rename state: a register's
/// architectural value is supplied once its producer has written back by
/// `now` (equivalent to the shadow-file ready gating, but sourced from
/// the rename table the machine already maintains).
#[derive(Debug, Clone, Copy)]
pub struct ReadyOracle<'a> {
    /// The machine's rename state.
    pub rename: &'a RenameState,
    /// The current cycle.
    pub now: u64,
}

impl ValueSource for ReadyOracle<'_> {
    #[inline]
    fn value_of(&self, r: PhysReg, _shadow: &arvi_core::ShadowRegFile) -> Option<u64> {
        self.rename
            .is_ready(r, self.now)
            .then(|| self.rename.oracle_value(r))
    }
}

/// *ARVI load back*: like [`ReadyOracle`], but a pending load's value is
/// additionally available when hoisting the load by its oracle hoist
/// distance would have covered the fetch-to-writeback window
/// ("aggressively compares addresses at run-time to disambiguate memory
/// references").
#[derive(Debug, Clone, Copy)]
pub struct LoadBackOracle<'a> {
    /// The machine's rename state.
    pub rename: &'a RenameState,
    /// The current cycle.
    pub now: u64,
    /// Sequence number of the fetching branch.
    pub fetch_seq: u64,
    /// Dynamic-instruction availability window (see `Machine::lb_window`).
    pub lb_window: u64,
}

impl ValueSource for LoadBackOracle<'_> {
    #[inline]
    fn value_of(&self, r: PhysReg, _shadow: &arvi_core::ShadowRegFile) -> Option<u64> {
        if self.rename.is_ready(r, self.now) {
            return Some(self.rename.oracle_value(r));
        }
        let (is_load, pseq, hoist) = self.rename.producer(r);
        if is_load && (self.fetch_seq - pseq) + hoist as u64 >= self.lb_window {
            Some(self.rename.oracle_value(r))
        } else {
            None
        }
    }
}

/// *ARVI perfect*: every register value is available at prediction time.
#[derive(Debug, Clone, Copy)]
pub struct PerfectOracle<'a> {
    /// The machine's rename state.
    pub rename: &'a RenameState,
}

impl ValueSource for PerfectOracle<'_> {
    #[inline]
    fn value_of(&self, r: PhysReg, _shadow: &arvi_core::ShadowRegFile) -> Option<u64> {
        Some(self.rename.oracle_value(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_core::CurrentValues;

    /// The oracles and the shadow-file source agree on the protocol: a
    /// not-yet-ready register is gated by Ready/LoadBack, never by
    /// Perfect.
    #[test]
    fn oracle_gating() {
        let mut rename = RenameState::new(64);
        let (p0, _prev) = rename.allocate(arvi_isa::Reg::new(5), 0, 42, false, 0);
        // Producer allocated at cycle-unknown; not yet written back.
        assert_eq!(
            ReadyOracle {
                rename: &rename,
                now: 0
            }
            .value_of(p0, &dummy_shadow()),
            None
        );
        assert_eq!(
            PerfectOracle { rename: &rename }.value_of(p0, &dummy_shadow()),
            Some(42)
        );
        rename.set_ready(p0, 3);
        assert_eq!(
            ReadyOracle {
                rename: &rename,
                now: 4
            }
            .value_of(p0, &dummy_shadow()),
            Some(42)
        );
        // Sanity: the core-side CurrentValues reads the shadow file — an
        // architecturally live (never renamed) register is ready, a
        // freshly allocated one is gated until its writeback.
        let mut shadow = dummy_shadow();
        assert_eq!(CurrentValues.value_of(p0, &shadow), Some(0));
        shadow.alloc(p0);
        assert_eq!(CurrentValues.value_of(p0, &shadow), None);
    }

    fn dummy_shadow() -> arvi_core::ShadowRegFile {
        arvi_core::ShadowRegFile::new(64, 11)
    }
}

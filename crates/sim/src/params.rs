//! Architectural parameters — the paper's Table 2 (machine) and Table 4
//! (predictor access latencies).

use arvi_predict::{ConfidenceConfig, GskewConfig};

/// Tuning knobs for the ARVI second level — the design-decision ablations
/// DESIGN.md catalogues (D2, D11). Defaults are the configuration used
/// for the headline results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArviTuning {
    /// log2 of BVIT sets (11 in the paper: 2048 sets x 4 ways).
    pub bvit_sets_log2: u32,
    /// D2 ablation: unavailable leaf registers contribute their stale
    /// shadow value to the index instead of being gated out.
    pub include_stale_values: bool,
    /// D11 ablation: require strong/net-correct/informed BVIT entries
    /// before overriding the level-1 direction.
    pub gate_overrides: bool,
}

impl Default for ArviTuning {
    fn default() -> ArviTuning {
        ArviTuning {
            bvit_sets_log2: 11,
            include_stale_values: false,
            gate_overrides: true,
        }
    }
}

/// Pipeline depth (fetch through execute), the paper's primary axis:
/// 20 stages matches the Pentium 4 era; 40 and 60 model the deeper
/// pipelines then projected for rising clock rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Depth {
    /// 20-stage pipeline.
    D20,
    /// 40-stage pipeline.
    D40,
    /// 60-stage pipeline.
    D60,
}

impl Depth {
    /// All three depths in paper order.
    pub fn all() -> [Depth; 3] {
        [Depth::D20, Depth::D40, Depth::D60]
    }

    /// The depth in stages.
    pub fn stages(self) -> u64 {
        match self {
            Depth::D20 => 20,
            Depth::D40 => 40,
            Depth::D60 => 60,
        }
    }
}

impl std::fmt::Display for Depth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-stage", self.stages())
    }
}

/// Which two-level direction-predictor configuration to simulate — the
/// paper's four configurations (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorConfig {
    /// Baseline: 2Bc-gskew at both levels (4 KB L1, 32 KB L2).
    TwoLevelGskew,
    /// ARVI L2 using current (shadow-file) values.
    ArviCurrent,
    /// ARVI L2 with oracle load hoisting (the *load back* study).
    ArviLoadBack,
    /// ARVI L2 with oracle values for every leaf register (*perfect
    /// value* bound).
    ArviPerfect,
}

impl PredictorConfig {
    /// All four configurations in the paper's legend order.
    pub fn all() -> [PredictorConfig; 4] {
        [
            PredictorConfig::TwoLevelGskew,
            PredictorConfig::ArviCurrent,
            PredictorConfig::ArviLoadBack,
            PredictorConfig::ArviPerfect,
        ]
    }

    /// Legend label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            PredictorConfig::TwoLevelGskew => "2-level 2Bc-gskew",
            PredictorConfig::ArviCurrent => "arvi current value",
            PredictorConfig::ArviLoadBack => "arvi load back",
            PredictorConfig::ArviPerfect => "arvi perfect value",
        }
    }

    /// Whether the second level is an ARVI predictor.
    pub fn is_arvi(self) -> bool {
        !matches!(self, PredictorConfig::TwoLevelGskew)
    }
}

impl std::fmt::Display for PredictorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cache shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

/// TLB shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
}

/// Full machine parameters (Table 2) plus predictor latencies (Table 4).
///
/// The L1/L2/memory latency triples in the published table are corrupted
/// in the available text; the values here are era-plausible substitutes
/// that scale with pipeline depth (DESIGN.md substitution 3).
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Fetch/decode width (instructions per cycle).
    pub fetch_width: usize,
    /// Issue width.
    pub issue_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Reorder-buffer entries (also the DDT instruction-entry count).
    pub rob_entries: usize,
    /// Load/store queue entries.
    pub lsq_entries: usize,
    /// Single-cycle integer ALUs.
    pub int_alus: usize,
    /// Integer multiply/divide units.
    pub int_muldiv: usize,
    /// Data-cache ports.
    pub mem_ports: usize,
    /// Physical integer registers (must exceed `rob_entries + 32`).
    pub phys_regs: usize,
    /// Pipeline depth.
    pub depth: Depth,
    /// Cycles from fetch to dispatch (depth minus the back-end stages).
    pub frontend_latency: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Integer divide latency.
    pub div_latency: u64,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// TLB miss penalty in cycles (30 in Table 2).
    pub tlb_miss_penalty: u64,
    /// L1 hit latency.
    pub l1_latency: u64,
    /// L2 hit latency (added to L1 miss).
    pub l2_latency: u64,
    /// Memory latency (added to L2 miss).
    pub mem_latency: u64,
    /// Level-1 predictor shape (4 KB 2Bc-gskew, 1-cycle).
    pub l1_predictor: GskewConfig,
    /// Level-2 hybrid shape (32 KB 2Bc-gskew).
    pub l2_predictor: GskewConfig,
    /// Level-2 hybrid access latency (Table 4: 2/4/6 cycles).
    pub l2_pred_latency: u64,
    /// ARVI access latency (Table 4: 6/12/18 cycles).
    pub arvi_latency: u64,
    /// Confidence estimator shape.
    pub confidence: ConfidenceConfig,
    /// ARVI design-decision knobs (ablations).
    pub arvi_tuning: ArviTuning,
}

impl SimParams {
    /// The paper's machine at the given pipeline depth.
    pub fn for_depth(depth: Depth) -> SimParams {
        let (l1, l2, mem, l2p, arvi) = match depth {
            Depth::D20 => (2, 12, 100, 2, 6),
            Depth::D40 => (4, 24, 200, 4, 12),
            Depth::D60 => (6, 36, 300, 6, 18),
        };
        SimParams {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 256,
            lsq_entries: 32,
            int_alus: 4,
            int_muldiv: 1,
            mem_ports: 2,
            phys_regs: 320,
            depth,
            frontend_latency: depth.stages() - 3,
            mul_latency: 3,
            div_latency: 12,
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                line_bytes: 32,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                line_bytes: 32,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 4,
                line_bytes: 64,
            },
            itlb: TlbConfig {
                entries: 64,
                ways: 4,
                page_bytes: 8192,
            },
            dtlb: TlbConfig {
                entries: 128,
                ways: 4,
                page_bytes: 8192,
            },
            tlb_miss_penalty: 30,
            l1_latency: l1,
            l2_latency: l2,
            mem_latency: mem,
            l1_predictor: GskewConfig::level1(),
            l2_predictor: GskewConfig::level2(),
            l2_pred_latency: l2p,
            arvi_latency: arvi,
            confidence: ConfidenceConfig::default(),
            arvi_tuning: ArviTuning::default(),
        }
    }

    /// A reduced machine for fast unit tests (small caches, short
    /// front end).
    pub fn small_test() -> SimParams {
        let mut p = SimParams::for_depth(Depth::D20);
        p.rob_entries = 64;
        p.phys_regs = 128;
        p.lsq_entries = 16;
        p.frontend_latency = 5;
        p
    }

    /// The effective in-flight instruction window (instructions occupy
    /// their entry from fetch to commit in this model).
    pub fn window(&self) -> usize {
        self.rob_entries
    }

    /// The largest delay the machine can ever schedule, in cycles — the
    /// bound that sizes the calendar queue's ring
    /// ([`crate::wheel::EventWheel`]). The worst writeback is a load
    /// that misses the TLB and every cache level; the worst dispatch
    /// delay is the front-end latency (plus the one-cycle retry bump).
    pub fn max_event_latency(&self) -> u64 {
        let worst_mem =
            1 + self.tlb_miss_penalty + self.l1_latency + self.l2_latency + self.mem_latency;
        worst_mem
            .max(self.mul_latency)
            .max(self.div_latency)
            .max(self.frontend_latency + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_4_latencies() {
        // Predictor access latencies scale with pipeline depth exactly as
        // in Table 4 of the paper.
        let d20 = SimParams::for_depth(Depth::D20);
        let d40 = SimParams::for_depth(Depth::D40);
        let d60 = SimParams::for_depth(Depth::D60);
        assert_eq!(
            (
                d20.l2_pred_latency,
                d40.l2_pred_latency,
                d60.l2_pred_latency
            ),
            (2, 4, 6)
        );
        assert_eq!(
            (d20.arvi_latency, d40.arvi_latency, d60.arvi_latency),
            (6, 12, 18)
        );
    }

    #[test]
    fn table_2_shapes() {
        let p = SimParams::for_depth(Depth::D20);
        assert_eq!(p.rob_entries, 256);
        assert_eq!(p.lsq_entries, 32);
        assert_eq!(p.fetch_width, 4);
        assert_eq!(p.l1i.size_bytes, 64 * 1024);
        assert_eq!(p.l2.size_bytes, 512 * 1024);
        assert_eq!(p.itlb.entries, 64);
        assert_eq!(p.dtlb.entries, 128);
        assert_eq!(p.tlb_miss_penalty, 30);
    }

    #[test]
    fn phys_regs_cover_window() {
        for d in Depth::all() {
            let p = SimParams::for_depth(d);
            assert!(p.phys_regs >= p.rob_entries + 32);
        }
    }

    #[test]
    fn config_labels() {
        assert_eq!(PredictorConfig::TwoLevelGskew.label(), "2-level 2Bc-gskew");
        assert!(PredictorConfig::ArviPerfect.is_arvi());
        assert!(!PredictorConfig::TwoLevelGskew.is_arvi());
        assert_eq!(PredictorConfig::all().len(), 4);
    }

    #[test]
    fn depth_display() {
        assert_eq!(Depth::D40.to_string(), "40-stage");
    }

    #[test]
    fn max_event_latency_bounds_every_schedulable_delay() {
        for d in Depth::all() {
            let p = SimParams::for_depth(d);
            let worst_load = 1 + p.tlb_miss_penalty + p.l1_latency + p.l2_latency + p.mem_latency;
            let m = p.max_event_latency();
            assert!(m >= worst_load);
            assert!(m >= p.div_latency && m >= p.mul_latency);
            assert!(m > p.frontend_latency);
        }
        assert_eq!(
            SimParams::for_depth(Depth::D60).max_event_latency(),
            1 + 30 + 6 + 36 + 300
        );
    }
}

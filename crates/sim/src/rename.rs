//! Register rename state: logical-to-physical map, free list, and
//! per-physical-register oracle metadata used by the value-mode closures.

use arvi_core::PhysReg;
use arvi_isa::Reg;

/// Rename map, free list and per-register producer metadata.
///
/// The paper renames at fetch so the DDT can be maintained "after register
/// rename has assigned physical registers" and notes "early rename
/// requires additional physical registers"; the machine model does the
/// same, which is why `phys_regs` must cover the full fetch-to-commit
/// window plus the 32 architectural mappings.
#[derive(Debug, Clone)]
pub struct RenameState {
    map: [PhysReg; 32],
    free: Vec<PhysReg>,
    /// Cycle at which each physical register's value is (or became)
    /// available; `u64::MAX` while the producer is in flight.
    ready_at: Vec<u64>,
    /// Architecturally correct value of the current producer (known at
    /// rename from the trace record — the oracle the perfect-value
    /// configuration reads).
    value: Vec<u64>,
    /// Whether the current producer is a load.
    producer_is_load: Vec<bool>,
    /// Dynamic sequence number of the current producer.
    producer_seq: Vec<u64>,
    /// Load-back oracle hoist distance of the producer (loads only).
    producer_hoist: Vec<u32>,
}

impl RenameState {
    /// Creates the reset state: logical register `i` maps to physical
    /// register `i`, all values available and zero.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs < 64` (32 mappings plus headroom).
    pub fn new(phys_regs: usize) -> RenameState {
        assert!(phys_regs >= 64, "need at least 64 physical registers");
        let mut map = [PhysReg(0); 32];
        for (i, m) in map.iter_mut().enumerate() {
            *m = PhysReg(i as u16);
        }
        RenameState {
            map,
            free: (32..phys_regs as u16).rev().map(PhysReg).collect(),
            ready_at: vec![0; phys_regs],
            value: vec![0; phys_regs],
            producer_is_load: vec![false; phys_regs],
            producer_seq: vec![0; phys_regs],
            producer_hoist: vec![0; phys_regs],
        }
    }

    /// Current physical mapping of a logical register.
    #[inline]
    pub fn lookup(&self, r: Reg) -> PhysReg {
        self.map[r.index()]
    }

    /// Allocates a fresh physical register for a redefinition of
    /// `logical`, recording the producer's oracle metadata. Returns
    /// `(new, previous)` — the previous mapping is freed when the
    /// redefining instruction commits.
    ///
    /// # Panics
    ///
    /// Panics if the free list is empty (the host must size `phys_regs`
    /// to cover its window).
    pub fn allocate(
        &mut self,
        logical: Reg,
        seq: u64,
        value: u64,
        is_load: bool,
        hoist: u32,
    ) -> (PhysReg, PhysReg) {
        let new = self.free.pop().expect("physical register file exhausted");
        let prev = self.map[logical.index()];
        self.map[logical.index()] = new;
        let i = new.index();
        self.ready_at[i] = u64::MAX;
        self.value[i] = value;
        self.producer_is_load[i] = is_load;
        self.producer_seq[i] = seq;
        self.producer_hoist[i] = hoist;
        (new, prev)
    }

    /// Returns a previously current mapping to the free list.
    pub fn release(&mut self, phys: PhysReg) {
        self.free.push(phys);
    }

    /// Marks a physical register's value as available at `cycle`.
    pub fn set_ready(&mut self, phys: PhysReg, cycle: u64) {
        self.ready_at[phys.index()] = cycle;
    }

    /// Whether the register's value has been produced by `cycle`.
    #[inline]
    pub fn is_ready(&self, phys: PhysReg, cycle: u64) -> bool {
        self.ready_at[phys.index()] <= cycle
    }

    /// The oracle (architecturally correct) value of the register's
    /// current producer.
    #[inline]
    pub fn oracle_value(&self, phys: PhysReg) -> u64 {
        self.value[phys.index()]
    }

    /// Whether the current producer is a load, with its fetch sequence and
    /// hoist distance (for the load-back availability rule).
    #[inline]
    pub fn producer(&self, phys: PhysReg) -> (bool, u64, u32) {
        let i = phys.index();
        (
            self.producer_is_load[i],
            self.producer_seq[i],
            self.producer_hoist[i],
        )
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::regs::*;

    #[test]
    fn initial_identity_mapping() {
        let r = RenameState::new(128);
        assert_eq!(r.lookup(T0), PhysReg(T0.index() as u16));
        assert!(r.is_ready(r.lookup(T0), 0));
        assert_eq!(r.free_count(), 96);
    }

    #[test]
    fn allocate_and_release_cycle() {
        let mut r = RenameState::new(128);
        let (new, prev) = r.allocate(T0, 5, 42, true, 3);
        assert_eq!(prev, PhysReg(T0.index() as u16));
        assert_eq!(r.lookup(T0), new);
        assert!(!r.is_ready(new, 1000));
        assert_eq!(r.oracle_value(new), 42);
        assert_eq!(r.producer(new), (true, 5, 3));
        r.set_ready(new, 17);
        assert!(r.is_ready(new, 17));
        assert!(!r.is_ready(new, 16));
        let before = r.free_count();
        r.release(prev);
        assert_eq!(r.free_count(), before + 1);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut r = RenameState::new(64);
        for i in 0..33 {
            r.allocate(T0, i, 0, false, 0);
        }
    }
}

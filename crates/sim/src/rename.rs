//! Register rename state: logical-to-physical map, free list, and
//! per-physical-register oracle metadata used by the value-mode closures.

use arvi_core::PhysReg;
use arvi_isa::Reg;

/// Rename map, free list and per-register producer metadata.
///
/// The paper renames at fetch so the DDT can be maintained "after register
/// rename has assigned physical registers" and notes "early rename
/// requires additional physical registers"; the machine model does the
/// same, which is why `phys_regs` must cover the full fetch-to-commit
/// window plus the 32 architectural mappings.
#[derive(Debug, Clone)]
pub struct RenameState {
    map: [PhysReg; 32],
    free: Vec<PhysReg>,
    /// Cycle at which each physical register's value is (or became)
    /// available; `u64::MAX` while the producer is in flight. Kept as
    /// its own dense array — readiness probes are the hottest rename
    /// query (every operand at dispatch plus every ARVI value closure).
    ready_at: Vec<u64>,
    /// Per-register producer metadata, consolidated in one record so an
    /// allocation writes (and a value-mode closure reads) one cache line
    /// instead of four parallel arrays.
    producers: Vec<Producer>,
    /// Per-physical-register consumer wait lists: the sequence numbers
    /// of dispatched instructions waiting on the register's producer.
    /// Owned here (not by the machine) so the wakeup plumbing lives with
    /// the readiness state that triggers it; the scheduler drains a list
    /// directly into its calendar queue on writeback, never re-sorting
    /// what the wheel already ordered.
    waiters: Vec<Vec<u64>>,
}

/// Oracle metadata of a physical register's current producer (known at
/// rename from the trace record).
#[derive(Debug, Clone, Copy, Default)]
struct Producer {
    /// Architecturally correct value (the perfect-value oracle).
    value: u64,
    /// Dynamic sequence number.
    seq: u64,
    /// Load-back oracle hoist distance (loads only).
    hoist: u32,
    /// Whether the producer is a load.
    is_load: bool,
}

impl RenameState {
    /// Creates the reset state: logical register `i` maps to physical
    /// register `i`, all values available and zero.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs < 64` (32 mappings plus headroom).
    pub fn new(phys_regs: usize) -> RenameState {
        assert!(phys_regs >= 64, "need at least 64 physical registers");
        let mut map = [PhysReg(0); 32];
        for (i, m) in map.iter_mut().enumerate() {
            *m = PhysReg(i as u16);
        }
        RenameState {
            map,
            free: (32..phys_regs as u16).rev().map(PhysReg).collect(),
            ready_at: vec![0; phys_regs],
            producers: vec![Producer::default(); phys_regs],
            waiters: vec![Vec::new(); phys_regs],
        }
    }

    /// Current physical mapping of a logical register.
    #[inline]
    pub fn lookup(&self, r: Reg) -> PhysReg {
        self.map[r.index()]
    }

    /// Allocates a fresh physical register for a redefinition of
    /// `logical`, recording the producer's oracle metadata. Returns
    /// `(new, previous)` — the previous mapping is freed when the
    /// redefining instruction commits.
    ///
    /// # Panics
    ///
    /// Panics if the free list is empty (the host must size `phys_regs`
    /// to cover its window).
    pub fn allocate(
        &mut self,
        logical: Reg,
        seq: u64,
        value: u64,
        is_load: bool,
        hoist: u32,
    ) -> (PhysReg, PhysReg) {
        let new = self.free.pop().expect("physical register file exhausted");
        let prev = self.map[logical.index()];
        self.map[logical.index()] = new;
        let i = new.index();
        self.ready_at[i] = u64::MAX;
        self.producers[i] = Producer {
            value,
            seq,
            hoist,
            is_load,
        };
        (new, prev)
    }

    /// Returns a previously current mapping to the free list.
    pub fn release(&mut self, phys: PhysReg) {
        self.free.push(phys);
    }

    /// Marks a physical register's value as available at `cycle`.
    pub fn set_ready(&mut self, phys: PhysReg, cycle: u64) {
        self.ready_at[phys.index()] = cycle;
    }

    /// Whether the register's value has been produced by `cycle`.
    #[inline]
    pub fn is_ready(&self, phys: PhysReg, cycle: u64) -> bool {
        self.ready_at[phys.index()] <= cycle
    }

    /// The oracle (architecturally correct) value of the register's
    /// current producer.
    #[inline]
    pub fn oracle_value(&self, phys: PhysReg) -> u64 {
        self.producers[phys.index()].value
    }

    /// Whether the current producer is a load, with its fetch sequence and
    /// hoist distance (for the load-back availability rule).
    #[inline]
    pub fn producer(&self, phys: PhysReg) -> (bool, u64, u32) {
        let p = &self.producers[phys.index()];
        (p.is_load, p.seq, p.hoist)
    }

    /// Registers `seq` as waiting for `phys`'s value.
    #[inline]
    pub fn add_waiter(&mut self, phys: PhysReg, seq: u64) {
        self.waiters[phys.index()].push(seq);
    }

    /// Appends `phys`'s waiters to `out` and clears the list, keeping
    /// its capacity (the wait lists are reused for the whole run).
    #[inline]
    pub fn take_waiters_into(&mut self, phys: PhysReg, out: &mut Vec<u64>) {
        let w = &mut self.waiters[phys.index()];
        out.extend_from_slice(w);
        w.clear();
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::regs::*;

    #[test]
    fn initial_identity_mapping() {
        let r = RenameState::new(128);
        assert_eq!(r.lookup(T0), PhysReg(T0.index() as u16));
        assert!(r.is_ready(r.lookup(T0), 0));
        assert_eq!(r.free_count(), 96);
    }

    #[test]
    fn allocate_and_release_cycle() {
        let mut r = RenameState::new(128);
        let (new, prev) = r.allocate(T0, 5, 42, true, 3);
        assert_eq!(prev, PhysReg(T0.index() as u16));
        assert_eq!(r.lookup(T0), new);
        assert!(!r.is_ready(new, 1000));
        assert_eq!(r.oracle_value(new), 42);
        assert_eq!(r.producer(new), (true, 5, 3));
        r.set_ready(new, 17);
        assert!(r.is_ready(new, 17));
        assert!(!r.is_ready(new, 16));
        let before = r.free_count();
        r.release(prev);
        assert_eq!(r.free_count(), before + 1);
    }

    #[test]
    fn waiter_lists_drain_and_reuse() {
        let mut r = RenameState::new(128);
        let p = PhysReg(40);
        r.add_waiter(p, 7);
        r.add_waiter(p, 9);
        let mut out = Vec::new();
        r.take_waiters_into(p, &mut out);
        assert_eq!(out, vec![7, 9]);
        out.clear();
        r.take_waiters_into(p, &mut out);
        assert!(out.is_empty(), "list cleared after drain");
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut r = RenameState::new(64);
        for i in 0..33 {
            r.allocate(T0, i, 0, false, 0);
        }
    }
}

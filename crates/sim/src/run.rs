//! Measurement harness: warmup + measurement-window simulation.

use arvi_isa::{Emulator, Program};

use crate::machine::{Machine, MachineStats};
use crate::params::{PredictorConfig, SimParams};

/// The outcome of one simulation run (measurement window only; warmup is
/// excluded, mirroring the paper's Table 3 instruction windows).
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Workload name.
    pub name: String,
    /// Predictor configuration simulated.
    pub config: PredictorConfig,
    /// Machine parameters used.
    pub depth_stages: u64,
    /// Counters accumulated over the measurement window.
    pub window: MachineStats,
}

impl SimResult {
    /// Instructions per cycle over the measurement window.
    pub fn ipc(&self) -> f64 {
        self.window.ipc()
    }

    /// Conditional-branch direction accuracy (final, post-override).
    pub fn accuracy(&self) -> f64 {
        self.window.cond_branches.rate()
    }

    /// Fraction of conditional branches ARVI classified as load branches.
    pub fn load_branch_fraction(&self) -> f64 {
        self.window.load_branch_fraction()
    }
}

/// Simulates `program` under `params`/`config`: runs `warmup` committed
/// instructions to fill predictors and caches, then measures the next
/// `measure` instructions.
///
/// # Panics
///
/// Panics if the program halts before the warmup completes (experiment
/// workloads run indefinitely).
pub fn simulate(
    program: Program,
    params: SimParams,
    config: PredictorConfig,
    warmup: u64,
    measure: u64,
) -> SimResult {
    let name = program.name().to_string();
    let depth_stages = params.depth.stages();
    let mut machine = Machine::new(Emulator::new(program), params, config);
    let committed = machine.run_until_committed(warmup);
    assert!(
        committed >= warmup,
        "workload {name} halted during warmup ({committed}/{warmup})"
    );
    let start = machine.stats().clone();
    machine.run_until_committed(warmup + measure);
    let window = machine.stats().since(&start);
    SimResult {
        name,
        config,
        depth_stages,
        window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Depth;
    use arvi_isa::{regs::*, AluOp, Cond, ProgramBuilder};

    fn looping_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.li(T0, 0);
        let head = b.here();
        b.alu_imm(AluOp::Add, T0, T0, 1);
        b.alu_imm(AluOp::And, T1, T0, 7);
        b.branch(Cond::Ne, T1, ZERO, head);
        b.alu_imm(AluOp::Xor, T2, T2, 1);
        b.jump(head);
        b.build().with_name("loop")
    }

    #[test]
    fn window_excludes_warmup() {
        let r = simulate(
            looping_program(),
            SimParams::small_test(),
            PredictorConfig::TwoLevelGskew,
            2_000,
            8_000,
        );
        // Commit width is 4, so window edges can overshoot by up to 3
        // instructions on each side.
        assert!(
            (7_994..=8_006).contains(&r.window.committed),
            "window {}",
            r.window.committed
        );
        assert!(r.ipc() > 0.0);
        assert!(r.window.cond_branches.total() > 1_000);
    }

    #[test]
    #[should_panic(expected = "halted during warmup")]
    fn halting_program_rejected() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 1);
        b.halt();
        let _ = simulate(
            b.build().with_name("tiny"),
            SimParams::small_test(),
            PredictorConfig::TwoLevelGskew,
            1_000,
            1_000,
        );
    }

    #[test]
    fn results_are_deterministic() {
        let run = || {
            simulate(
                looping_program(),
                SimParams::for_depth(Depth::D20),
                PredictorConfig::ArviCurrent,
                1_000,
                5_000,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.window.cycles, b.window.cycles);
        assert_eq!(
            a.window.cond_branches.correct(),
            b.window.cond_branches.correct()
        );
    }
}

//! Measurement harness: warmup + measurement-window simulation.

use arvi_isa::{Emulator, Program};

use crate::machine::{Machine, MachineStats};
use crate::params::{PredictorConfig, SimParams};
use crate::source::InstSource;

/// Interns a workload name, returning a `'static` reference.
///
/// Sweeps construct one [`SimResult`] per grid cell; carrying the name
/// as an interned `&'static str` keeps grid assembly allocation-free.
/// The global table dedups, so a repeated name never re-leaks — the
/// process leaks exactly one allocation per *distinct* name, bounded by
/// the workload registry even when parameterized synthetic scenario
/// names arrive in bulk. Lookups of already-interned names (every grid
/// cell after the first) take only the read lock, so parallel sweep
/// workers do not serialize here.
pub fn intern_name(name: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{OnceLock, RwLock};
    static NAMES: OnceLock<RwLock<HashSet<&'static str>>> = OnceLock::new();
    let table = NAMES.get_or_init(|| RwLock::new(HashSet::new()));
    if let Some(&interned) = table.read().expect("name interner poisoned").get(name) {
        return interned;
    }
    let mut set = table.write().expect("name interner poisoned");
    match set.get(name) {
        // Another thread interned it between our read and write locks.
        Some(&interned) => interned,
        None => {
            let interned: &'static str = Box::leak(name.to_owned().into_boxed_str());
            set.insert(interned);
            interned
        }
    }
}

/// The outcome of one simulation run (measurement window only; warmup is
/// excluded, mirroring the paper's Table 3 instruction windows).
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Workload name (interned; see [`intern_name`]).
    pub name: &'static str,
    /// Predictor configuration simulated.
    pub config: PredictorConfig,
    /// Machine parameters used.
    pub depth_stages: u64,
    /// Counters accumulated over the measurement window.
    pub window: MachineStats,
}

impl SimResult {
    /// Instructions per cycle over the measurement window.
    pub fn ipc(&self) -> f64 {
        self.window.ipc()
    }

    /// Conditional-branch direction accuracy (final, post-override).
    pub fn accuracy(&self) -> f64 {
        self.window.cond_branches.rate()
    }

    /// Fraction of conditional branches ARVI classified as load branches.
    pub fn load_branch_fraction(&self) -> f64 {
        self.window.load_branch_fraction()
    }
}

/// Simulates `program` under `params`/`config`: runs `warmup` committed
/// instructions to fill predictors and caches, then measures the next
/// `measure` instructions.
///
/// # Panics
///
/// Panics if the program halts before the warmup completes (experiment
/// workloads run indefinitely).
pub fn simulate(
    program: Program,
    params: SimParams,
    config: PredictorConfig,
    warmup: u64,
    measure: u64,
) -> SimResult {
    let name = intern_name(program.name());
    simulate_source(
        name,
        Emulator::new(program),
        params,
        config,
        warmup,
        measure,
    )
}

/// [`simulate`] over any committed-instruction frontend: a live
/// [`Emulator`] or a trace replayer. Timing results depend only on the
/// `DynInst` stream, so a recorded trace replays bit-identically to the
/// live emulation it captured.
///
/// # Panics
///
/// Panics if the stream ends before the warmup completes.
pub fn simulate_source<S: InstSource>(
    name: &'static str,
    source: S,
    params: SimParams,
    config: PredictorConfig,
    warmup: u64,
    measure: u64,
) -> SimResult {
    let (result, arvi_obs::NullProbe) = simulate_source_probed(
        name,
        source,
        params,
        config,
        warmup,
        measure,
        arvi_obs::NullProbe,
    );
    result
}

/// [`simulate_source`] with an observation [`Probe`](arvi_obs::Probe)
/// attached; returns the result together with the probe (loaded with
/// end-of-run cache/TLB totals). The probe observes warmup and
/// measurement alike — callers wanting window-only telemetry should
/// snapshot/merge themselves.
///
/// # Panics
///
/// Panics if the stream ends before the warmup completes.
pub fn simulate_source_probed<S: InstSource, P: arvi_obs::Probe>(
    name: &'static str,
    source: S,
    params: SimParams,
    config: PredictorConfig,
    warmup: u64,
    measure: u64,
    probe: P,
) -> (SimResult, P) {
    let depth_stages = params.depth.stages();
    let mut machine = Machine::with_probe(source, params, config, probe);
    let committed = machine.run_until_committed(warmup);
    assert!(
        committed >= warmup,
        "workload {name} halted during warmup ({committed}/{warmup})"
    );
    let start = machine.stats().clone();
    machine.run_until_committed(warmup + measure);
    let window = machine.stats().since(&start);
    (
        SimResult {
            name,
            config,
            depth_stages,
            window,
        },
        machine.into_probe(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Depth;
    use arvi_isa::{regs::*, AluOp, Cond, ProgramBuilder};

    fn looping_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.li(T0, 0);
        let head = b.here();
        b.alu_imm(AluOp::Add, T0, T0, 1);
        b.alu_imm(AluOp::And, T1, T0, 7);
        b.branch(Cond::Ne, T1, ZERO, head);
        b.alu_imm(AluOp::Xor, T2, T2, 1);
        b.jump(head);
        b.build().with_name("loop")
    }

    #[test]
    fn window_excludes_warmup() {
        let r = simulate(
            looping_program(),
            SimParams::small_test(),
            PredictorConfig::TwoLevelGskew,
            2_000,
            8_000,
        );
        // Commit width is 4, so window edges can overshoot by up to 3
        // instructions on each side.
        assert!(
            (7_994..=8_006).contains(&r.window.committed),
            "window {}",
            r.window.committed
        );
        assert!(r.ipc() > 0.0);
        assert!(r.window.cond_branches.total() > 1_000);
    }

    #[test]
    #[should_panic(expected = "halted during warmup")]
    fn halting_program_rejected() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 1);
        b.halt();
        let _ = simulate(
            b.build().with_name("tiny"),
            SimParams::small_test(),
            PredictorConfig::TwoLevelGskew,
            1_000,
            1_000,
        );
    }

    #[test]
    fn interned_names_are_pointer_stable() {
        let a = intern_name("loop-workload");
        let b = intern_name("loop-workload");
        assert!(std::ptr::eq(a, b));
        assert_ne!(intern_name("other"), a);
    }

    #[test]
    fn interning_dedups_under_concurrency() {
        // Parameterized scenario-style names interned from many threads
        // at once: every repeat must resolve to the same leaked string.
        let names: Vec<String> = (0..32).map(|i| format!("synth-param-{}", i % 4)).collect();
        let interned: Vec<&'static str> = std::thread::scope(|scope| {
            let handles: Vec<_> = names
                .iter()
                .map(|n| scope.spawn(move || intern_name(n)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("interner thread panicked"))
                .collect()
        });
        for (i, s) in interned.iter().enumerate() {
            assert!(
                std::ptr::eq(*s, interned[i % 4]),
                "duplicate name {i} re-leaked"
            );
        }
    }

    #[test]
    fn recorded_stream_replays_bit_identically() {
        use crate::source::IterSource;
        use arvi_isa::{DynInst, Emulator};

        let live = simulate(
            looping_program(),
            SimParams::small_test(),
            PredictorConfig::ArviCurrent,
            2_000,
            8_000,
        );
        // Record more than the machine can fetch (window + ROB + slack).
        let recorded: Vec<DynInst> = Emulator::new(looping_program()).take(12_000).collect();
        let replay = simulate_source(
            intern_name("loop"),
            IterSource(recorded.into_iter()),
            SimParams::small_test(),
            PredictorConfig::ArviCurrent,
            2_000,
            8_000,
        );
        assert_eq!(live.window.cycles, replay.window.cycles);
        assert_eq!(live.window.committed, replay.window.committed);
        assert_eq!(
            live.window.cond_branches.correct(),
            replay.window.cond_branches.correct()
        );
    }

    #[test]
    fn results_are_deterministic() {
        let run = || {
            simulate(
                looping_program(),
                SimParams::for_depth(Depth::D20),
                PredictorConfig::ArviCurrent,
                1_000,
                5_000,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.window.cycles, b.window.cycles);
        assert_eq!(
            a.window.cond_branches.correct(),
            b.window.cond_branches.correct()
        );
    }
}

//! Pluggable committed-instruction frontends.
//!
//! The timing simulator is trace-driven: [`Machine`](crate::Machine)
//! consumes a stream of committed [`DynInst`] records and models *when*
//! they execute, while *what* they compute is already decided by the
//! stream. [`InstSource`] abstracts where that stream comes from:
//!
//! * [`Emulator`] — live functional execution (the original frontend).
//! * `arvi_trace::TraceReplayer` — replay of a recorded trace, so one
//!   functional execution can feed many timing runs.
//! * [`IterSource`] — any `Iterator<Item = DynInst>` (tests, synthetic
//!   streams).
//!
//! A source must yield records in commit order with dense sequence
//! numbers starting at the machine's first fetch (the emulator and the
//! trace codec both guarantee this); the machine debug-asserts it.

use arvi_isa::{DynInst, Emulator};

/// A supplier of the committed dynamic instruction stream.
pub trait InstSource {
    /// The next committed instruction, or `None` when the stream ends
    /// (program halt or end of a recorded trace).
    fn next_inst(&mut self) -> Option<DynInst>;

    /// Fills `out` with the next records and returns how many were
    /// written; `0` means the stream has ended. Records are written from
    /// `out[0]` and the machine consumes exactly the returned prefix.
    ///
    /// The default forwards to [`next_inst`](InstSource::next_inst) one
    /// record at a time, so every source works unchanged; batch-native
    /// sources override it — `arvi_trace::TraceReplayer` decodes whole
    /// chunks straight into `out`, amortizing its per-record cursor
    /// overhead across the machine's fetch buffer.
    fn fill(&mut self, out: &mut [DynInst]) -> usize {
        let mut n = 0;
        while n < out.len() {
            match self.next_inst() {
                Some(d) => {
                    out[n] = d;
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

impl InstSource for Emulator {
    #[inline]
    fn next_inst(&mut self) -> Option<DynInst> {
        self.step()
    }
}

/// Adapter making any `DynInst` iterator an [`InstSource`].
#[derive(Debug)]
pub struct IterSource<I>(pub I);

impl<I: Iterator<Item = DynInst>> InstSource for IterSource<I> {
    #[inline]
    fn next_inst(&mut self) -> Option<DynInst> {
        self.0.next()
    }
}

/// Re-bases an inner source's sequence numbers to start at 0.
///
/// The machine requires dense sequence numbers starting at its first
/// fetch, but a sampling unit begins its detailed window in the middle
/// of a recorded trace where `seq` equals the absolute trace position.
/// `RebasedSource` subtracts that base so a mid-trace window looks like
/// a stream of its own to the machine. Only `seq` changes — the records
/// are otherwise untouched.
#[derive(Debug)]
pub struct RebasedSource<S> {
    inner: S,
    base: u64,
}

impl<S: InstSource> RebasedSource<S> {
    /// Wraps `inner`, subtracting `base` from every record's `seq`
    /// (`inner`'s next record must carry `seq == base`).
    pub fn new(inner: S, base: u64) -> RebasedSource<S> {
        RebasedSource { inner, base }
    }
}

impl<S: InstSource> InstSource for RebasedSource<S> {
    #[inline]
    fn next_inst(&mut self) -> Option<DynInst> {
        self.inner.next_inst().map(|mut d| {
            d.seq -= self.base;
            d
        })
    }

    #[inline]
    fn fill(&mut self, out: &mut [DynInst]) -> usize {
        let n = self.inner.fill(out);
        for d in &mut out[..n] {
            d.seq -= self.base;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::{regs::*, AluOp, ProgramBuilder};

    #[test]
    fn emulator_is_a_source() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 1);
        b.alu_imm(AluOp::Add, T0, T0, 2);
        b.halt();
        let mut src: Box<dyn InstSource> = Box::new(Emulator::new(b.build()));
        let mut n = 0;
        while src.next_inst().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn iterators_are_sources() {
        let mut b = ProgramBuilder::new();
        b.li(T0, 1);
        b.halt();
        let recorded: Vec<DynInst> = Emulator::new(b.build()).collect();
        let mut src = IterSource(recorded.clone().into_iter());
        assert_eq!(src.next_inst(), Some(recorded[0]));
        assert_eq!(src.next_inst(), None);
    }
}

//! Translation lookaside buffer model.

use crate::params::TlbConfig;

/// A set-associative TLB with LRU replacement over page numbers.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// Precomputed power-of-two shape (see [`crate::Cache`]): page/set/
    /// tag extraction runs once per memory access.
    page_shift: u32,
    set_mask: u64,
    set_shift: u32,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics unless the shape is consistent (entries divisible by ways,
    /// power-of-two sets and page size).
    pub fn new(cfg: TlbConfig) -> Tlb {
        assert!(cfg.page_bytes.is_power_of_two(), "page size not 2^n");
        assert!(
            cfg.ways > 0 && cfg.entries.is_multiple_of(cfg.ways),
            "bad shape"
        );
        let sets = cfg.entries / cfg.ways;
        assert!(sets.is_power_of_two(), "set count not 2^n");
        Tlb {
            cfg,
            page_shift: cfg.page_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            set_shift: (sets as u64).trailing_zeros(),
            tags: vec![u64::MAX; cfg.entries],
            stamps: vec![0; cfg.entries],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates the page containing `addr`; returns whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let page = addr >> self.page_shift;
        let set = (page & self.set_mask) as usize;
        let tag = page >> self.set_shift;
        let base = set * self.cfg.ways;
        for i in base..base + self.cfg.ways {
            if self.tags[i] == tag {
                self.stamps[i] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        let victim = (base..base + self.cfg.ways)
            .min_by_key(|&i| self.stamps[i])
            .expect("nonzero ways");
        self.tags[victim] = tag;
        self.stamps[victim] = self.tick;
        false
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 8,
            ways: 4,
            page_bytes: 8192,
        })
    }

    #[test]
    fn page_granularity() {
        let mut t = small();
        assert!(!t.access(0));
        assert!(t.access(8191)); // same page
        assert!(!t.access(8192)); // next page
    }

    #[test]
    fn capacity_and_lru() {
        let mut t = small();
        // 2 sets x 4 ways; fill one set with 4 even pages then a 5th.
        for p in 0..4u64 {
            t.access(p * 2 * 8192);
        }
        t.access(8 * 8192); // evicts LRU (page 0)
        assert!(!t.access(0)); // miss; reinserting 0 evicts page 2
        assert!(t.access(4 * 8192)); // page 4 was more recent: still present
    }

    #[test]
    fn counts() {
        let mut t = small();
        t.access(0);
        t.access(0);
        assert_eq!((t.hits(), t.misses()), (1, 1));
    }
}

//! Functional (emulation-speed) microarchitectural warm-up for sampled
//! simulation.
//!
//! A sampling unit measures a short detailed window somewhere in the
//! middle of a recorded trace. The *architectural* state there is free —
//! every [`DynInst`] record carries its own operand and result values —
//! but the *microarchitectural* state (predictor tables, the ARVI
//! DDT/BVIT/shadow file, caches and TLBs) would start cold, biasing the
//! measurement. [`WarmupMachine`] closes that gap: it streams the
//! instructions preceding the detail window through the predictor stack
//! and the memory hierarchy **without the cycle model** — no ROB, no
//! scheduler, no event wheel — so warm-up proceeds at near emulation
//! speed, then hands the warmed [`BranchUnit`] and [`Hierarchy`] to a
//! real [`Machine`] for the detailed window.
//!
//! The warm-up is a deterministic approximation of the detailed
//! machine's training stream, not a replica of it:
//!
//! * every register value is treated as available at prediction time
//!   (values are written back the moment an instruction is seen), where
//!   the detailed machine gates availability on execution timing;
//! * predictor training happens a fixed in-flight window after
//!   prediction (mirroring commit order), not at a cycle-accurate
//!   commit time.
//!
//! Both approximations only affect *how warm* the state is at the
//! window boundary — identical inputs always produce identical warmed
//! state, so sampled runs stay bit-reproducible.

use std::collections::VecDeque;

use arvi_core::{CurrentValues, PhysReg, RenamedOp};
use arvi_isa::DynInst;
use arvi_obs::NullProbe;

use crate::branch_unit::{BranchDecision, BranchUnit};
use crate::hierarchy::Hierarchy;
use crate::machine::Machine;
use crate::params::{PredictorConfig, SimParams};
use crate::rename::RenameState;
use crate::source::InstSource;

/// One retired-in-order bookkeeping entry of the warm-up's in-flight
/// window (the stand-in for a ROB slot).
#[derive(Debug)]
struct InFlight {
    prev_phys: Option<PhysReg>,
    is_branch: bool,
}

/// Emulation-speed trainer for predictor and cache state; see the
/// module docs for the model and its approximations.
#[derive(Debug)]
pub struct WarmupMachine {
    params: SimParams,
    config: PredictorConfig,
    bu: BranchUnit,
    hier: Hierarchy,
    rename: RenameState,
    /// Instructions inserted but not yet retired, bounded by
    /// `params.rob_entries` to mirror the detailed machine's DDT
    /// residency.
    window: VecDeque<InFlight>,
    /// Pending branch decisions, trained in retire order.
    decisions: VecDeque<(u64, BranchDecision, bool)>,
    current_fetch_line: u64,
    fetch_line_shift: u32,
    seen: u64,
}

impl WarmupMachine {
    /// A cold warm-up machine for the given configuration.
    pub fn new(params: SimParams, config: PredictorConfig) -> WarmupMachine {
        WarmupMachine {
            bu: BranchUnit::new(&params, config),
            hier: Hierarchy::new(&params),
            rename: RenameState::new(params.phys_regs),
            window: VecDeque::new(),
            decisions: VecDeque::new(),
            current_fetch_line: u64::MAX,
            fetch_line_shift: (params.l1i.line_bytes as u64).trailing_zeros(),
            seen: 0,
            params,
            config,
        }
    }

    /// Instructions trained so far.
    pub fn trained(&self) -> u64 {
        self.seen
    }

    /// Streams up to `n` records from `source` through the predictor
    /// stack and hierarchy. Returns the number actually consumed (less
    /// than `n` only when the source ends).
    pub fn warm<S: InstSource>(&mut self, source: &mut S, n: u64) -> u64 {
        let mut consumed = 0;
        while consumed < n {
            let Some(d) = source.next_inst() else { break };
            self.train_one(d);
            consumed += 1;
        }
        consumed
    }

    fn train_one(&mut self, d: DynInst) {
        self.seen += 1;
        // Retire before inserting: the DDT holds exactly `rob_entries`
        // slots, so the window must free one before the new
        // instruction's `rename_op` lands.
        if self.window.len() >= self.params.rob_entries {
            self.retire_oldest();
        }
        // Instruction fetch path: one I-cache/ITLB access per new line.
        let line = d.byte_pc() >> self.fetch_line_shift;
        if line != self.current_fetch_line {
            self.hier.fetch_inst(d.byte_pc());
            self.current_fetch_line = line;
        }
        // Data path.
        if d.is_load() || d.is_store() {
            self.hier.access_data(d.mem_addr);
        }
        let src_phys = [
            d.srcs[0].map(|r| self.rename.lookup(r)),
            d.srcs[1].map(|r| self.rename.lookup(r)),
        ];
        // Predict before the branch's own DDT insertion, as the
        // detailed machine does. `CurrentValues` stands in for the
        // config's oracle: at emulation speed every value has been
        // written back, so the shadow file is fully available.
        if d.is_branch() {
            let actual = d.branch.expect("is_branch").taken;
            let dec = self
                .bu
                .decide(d.byte_pc(), src_phys, &CurrentValues, actual);
            self.decisions.push_back((d.byte_pc(), dec, actual));
        }
        let (dest_phys, prev_phys) = match d.dest {
            Some(logical) => {
                let (new, prev) =
                    self.rename
                        .allocate(logical, d.seq, d.result, d.is_load(), d.hoist);
                (Some(new), Some(prev))
            }
            None => (None, None),
        };
        if self.config.is_arvi() {
            let op = RenamedOp {
                dest: dest_phys,
                srcs: src_phys,
                is_load: d.is_load(),
            };
            self.bu.rename_op(&op, d.dest);
            // Immediate writeback: the record carries the architectural
            // result, and warm-up has no execution timing to wait for.
            if let Some(p) = dest_phys {
                self.bu.writeback(p, d.result);
            }
        }
        self.window.push_back(InFlight {
            prev_phys,
            is_branch: d.is_branch(),
        });
    }

    fn retire_oldest(&mut self) {
        let Some(entry) = self.window.pop_front() else {
            return;
        };
        if let Some(prev) = entry.prev_phys {
            self.rename.release(prev);
        }
        if self.config.is_arvi() {
            self.bu.commit_inst();
        }
        if entry.is_branch {
            let (pc, dec, actual) = self
                .decisions
                .pop_front()
                .expect("every in-flight branch queued a decision");
            self.bu.commit_branch(pc, &dec, actual);
        }
    }

    /// Retires everything still in flight (training the remaining
    /// queued branches) and hands the warmed predictor stack and
    /// hierarchy to a fresh [`Machine`] over `source`. The machine's
    /// rename/ROB/scheduler state starts cold — it describes in-flight
    /// instructions, of which there are none at a window boundary.
    pub fn into_machine<S: InstSource>(mut self, source: S) -> Machine<S> {
        while !self.window.is_empty() {
            self.retire_oldest();
        }
        Machine::assemble(
            source,
            self.params,
            self.config,
            NullProbe,
            self.bu,
            self.hier,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Depth;
    use crate::run::intern_name;
    use crate::source::{IterSource, RebasedSource};
    use arvi_isa::Emulator;
    use arvi_isa::{regs::*, AluOp, Cond, ProgramBuilder};

    fn looping_program() -> arvi_isa::Program {
        let mut b = ProgramBuilder::new();
        b.li(T0, 0);
        let head = b.here();
        b.alu_imm(AluOp::Add, T0, T0, 1);
        b.alu_imm(AluOp::And, T1, T0, 7);
        b.branch(Cond::Ne, T1, ZERO, head);
        b.alu_imm(AluOp::Xor, T2, T2, 1);
        b.jump(head);
        b.build().with_name("warm-loop")
    }

    #[test]
    fn warm_consumes_and_counts() {
        for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
            let mut w = WarmupMachine::new(SimParams::small_test(), config);
            let mut src = Emulator::new(looping_program());
            assert_eq!(w.warm(&mut src, 5_000), 5_000);
            assert_eq!(w.trained(), 5_000);
        }
    }

    #[test]
    fn warm_stops_at_source_end() {
        let mut w = WarmupMachine::new(SimParams::small_test(), PredictorConfig::ArviCurrent);
        let records: Vec<DynInst> = Emulator::new(looping_program()).take(800).collect();
        let mut src = IterSource(records.into_iter());
        assert_eq!(w.warm(&mut src, 2_000), 800);
    }

    #[test]
    fn warmed_machine_measures_and_is_deterministic() {
        let run = || {
            let records: Vec<DynInst> = Emulator::new(looping_program()).take(30_000).collect();
            let mut w = WarmupMachine::new(
                SimParams::for_depth(Depth::D20),
                PredictorConfig::ArviCurrent,
            );
            let mut src = IterSource(records.into_iter());
            w.warm(&mut src, 10_000);
            let mut m = w.into_machine(RebasedSource::new(src, 10_000));
            m.run_until_committed(15_000);
            m.stats().clone()
        };
        let a = run();
        let b = run();
        assert!(a.committed >= 15_000);
        assert!(a.cycles > 0);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.cond_branches, b.cond_branches);
        assert_eq!(a.full_mispredicts, b.full_mispredicts);
    }

    #[test]
    fn warmup_trains_the_predictors() {
        // The warm branch unit should mispredict the periodic loop
        // branch far less than a cold one over the same window.
        let name = intern_name("warm-loop");
        let cold = {
            let r = crate::run::simulate_source(
                name,
                IterSource(Emulator::new(looping_program()).take(12_000)),
                SimParams::for_depth(Depth::D20),
                PredictorConfig::TwoLevelGskew,
                0,
                4_000,
            );
            r.window.cond_branches
        };
        let warm = {
            let mut w = WarmupMachine::new(
                SimParams::for_depth(Depth::D20),
                PredictorConfig::TwoLevelGskew,
            );
            let mut src = Emulator::new(looping_program());
            w.warm(&mut src, 20_000);
            let mut m = w.into_machine(RebasedSource::new(src, 20_000));
            let start = m.stats().clone();
            m.run_until_committed(4_000);
            m.stats().since(&start).cond_branches
        };
        assert!(warm.rate() >= cold.rate(), "warm {} vs cold {}", warm, cold);
    }
}

//! The calendar-queue event scheduler (timing wheel) of the cycle model.
//!
//! The machine's event latencies are bounded by the Table-2 pipeline and
//! memory-hierarchy parameters (worst case: a TLB miss plus a miss in
//! every cache level, [`crate::SimParams::max_event_latency`]), so the
//! scheduler never needs a general priority queue: a power-of-two ring
//! of per-cycle buckets whose `Vec` slots are reused forever gives O(1)
//! schedule and O(1) pop with **zero steady-state allocation** — where
//! the previous `BinaryHeap<Reverse<(u64, u64)>>` pair re-sorted on
//! every push/pop (preserved as `arvi_bench::baseline::HeapMachine` for
//! comparison).
//!
//! Because the horizon exceeds every schedulable delay, a bucket can
//! only ever hold entries for a single absolute cycle, and an occupancy
//! bitmap (one bit per bucket) makes "first occupied cycle after `now`"
//! a handful of word scans — the cycle-skip the machine uses when all
//! structures are idle, replacing the old heap-peek fast-forward.
//!
//! Entries within a bucket come back in insertion order, not sequence
//! order; the machine's issue stage orders candidates by age itself, so
//! nothing downstream re-sorts what the wheel already bucketed by time
//! (`tests/scheduler_equivalence.rs` proves the figures cycle-identical
//! to the heap scheduler, and a property test checks the wheel's
//! per-cycle drain sets against heap order directly).

/// A fixed-horizon calendar queue over `(cycle, seq)` work items.
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// One reusable bucket per ring slot; `buckets[t & mask]` holds the
    /// sequence numbers scheduled for cycle `t`.
    buckets: Vec<Vec<u64>>,
    /// Occupancy bitmap, one bit per bucket.
    occupied: Vec<u64>,
    mask: u64,
    len: usize,
}

impl EventWheel {
    /// A wheel able to schedule any delay up to and including
    /// `max_delay` cycles ahead. The ring is sized to the next power of
    /// two above `max_delay + 1` (minimum 64) so bucket indexing is a
    /// mask and the bitmap is whole words.
    pub fn with_max_delay(max_delay: u64) -> EventWheel {
        let size = (max_delay + 2).next_power_of_two().max(64) as usize;
        EventWheel {
            buckets: vec![Vec::new(); size],
            occupied: vec![0; size / 64],
            mask: size as u64 - 1,
            len: 0,
        }
    }

    /// The ring size: delays must stay strictly below this.
    pub fn horizon(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Scheduled entries not yet drained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `seq` for cycle `at` (`now` is the current cycle).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `at - now` reaches the horizon —
    /// a horizon violation would silently alias another cycle's bucket,
    /// so it is a hard error, not a debug assertion.
    #[inline]
    pub fn schedule(&mut self, now: u64, at: u64, seq: u64) {
        assert!(
            at >= now && at - now < self.horizon(),
            "event delay {} out of wheel horizon {} (now {now}, at {at})",
            at.wrapping_sub(now),
            self.horizon()
        );
        let b = (at & self.mask) as usize;
        self.buckets[b].push(seq);
        self.occupied[b >> 6] |= 1 << (b & 63);
        self.len += 1;
    }

    /// Appends every entry due exactly at `now` to `out` (in insertion
    /// order) and empties the bucket, keeping its capacity. Returns
    /// whether anything was due.
    ///
    /// The caller must visit every cycle in which the wheel is occupied
    /// (the machine's quiet-cycle skip jumps only as far as
    /// [`next_after`](EventWheel::next_after)), so the drained bucket
    /// can only contain entries for `now` itself.
    #[inline]
    pub fn drain_due_into(&mut self, now: u64, out: &mut Vec<u64>) -> bool {
        let b = (now & self.mask) as usize;
        if self.occupied[b >> 6] & (1 << (b & 63)) == 0 {
            return false;
        }
        let bucket = &mut self.buckets[b];
        self.len -= bucket.len();
        out.extend_from_slice(bucket);
        bucket.clear();
        self.occupied[b >> 6] &= !(1 << (b & 63));
        true
    }

    /// The earliest occupied cycle strictly after `now`, or `None` when
    /// the wheel is empty. Relies on the horizon invariant: every entry
    /// lives in `(now, now + horizon)`, so the first set bit in rotation
    /// order after `now` identifies its absolute cycle uniquely.
    pub fn next_after(&self, now: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let start = ((now + 1) & self.mask) as usize;
        let words = self.occupied.len();
        let (w, bit) = (start >> 6, start & 63);
        let first = self.occupied[w] >> bit;
        if first != 0 {
            return Some(now + 1 + first.trailing_zeros() as u64);
        }
        let mut delta = 64 - bit as u64;
        for j in 1..=words {
            let v = self.occupied[(w + j) % words];
            if v != 0 {
                return Some(now + 1 + delta + v.trailing_zeros() as u64);
            }
            delta += 64;
        }
        unreachable!("len > 0 but no occupied bucket");
    }
}

/// A small ordered set of in-flight sequence numbers (sorted `Vec`),
/// replacing the `BTreeSet`s the scheduler used for store/load memory
/// ordering: membership stays tiny (bounded by the LSQ), so binary
/// search plus `memmove` beats tree-node churn and keeps the hot path
/// allocation-free once warmed.
#[derive(Debug, Clone, Default)]
pub struct SeqSet {
    v: Vec<u64>,
}

impl SeqSet {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// The smallest member.
    #[inline]
    pub fn first(&self) -> Option<u64> {
        self.v.first().copied()
    }

    /// Inserts `seq` (no-op if present).
    #[inline]
    pub fn insert(&mut self, seq: u64) {
        if let Err(i) = self.v.binary_search(&seq) {
            self.v.insert(i, seq);
        }
    }

    /// Appends a `seq` known to exceed every member (fetch order).
    #[inline]
    pub fn push_monotonic(&mut self, seq: u64) {
        debug_assert!(self.v.last().is_none_or(|&l| l < seq));
        self.v.push(seq);
    }

    /// Removes `seq` if present.
    #[inline]
    pub fn remove(&mut self, seq: u64) {
        if let Ok(i) = self.v.binary_search(&seq) {
            self.v.remove(i);
        }
    }

    /// Moves every member below `bound` (all members when `None`) into
    /// `out`, preserving ascending order.
    pub fn drain_below_into(&mut self, bound: Option<u64>, out: &mut Vec<u64>) {
        let cut = match bound {
            Some(b) => self.v.partition_point(|&s| s < b),
            None => self.v.len(),
        };
        out.extend(self.v.drain(..cut));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_schedules_and_drains_in_time_order() {
        let mut w = EventWheel::with_max_delay(40);
        assert_eq!(w.horizon(), 64);
        w.schedule(0, 5, 100);
        w.schedule(0, 3, 101);
        w.schedule(0, 5, 102);
        assert_eq!(w.len(), 3);
        let mut out = Vec::new();
        assert!(!w.drain_due_into(0, &mut out));
        assert!(w.drain_due_into(3, &mut out));
        assert_eq!(out, vec![101]);
        out.clear();
        assert!(w.drain_due_into(5, &mut out));
        assert_eq!(out, vec![100, 102]);
        assert!(w.is_empty());
    }

    #[test]
    fn next_after_scans_across_word_and_ring_boundaries() {
        let mut w = EventWheel::with_max_delay(100); // horizon 128
        assert_eq!(w.next_after(0), None);
        w.schedule(0, 70, 1);
        assert_eq!(w.next_after(0), Some(70));
        assert_eq!(w.next_after(69), Some(70));
        let mut out = Vec::new();
        w.drain_due_into(70, &mut out);
        // Wraps the ring: cycle 130 lives in bucket 2.
        w.schedule(70, 130, 2);
        w.schedule(70, 171, 3);
        assert_eq!(w.next_after(70), Some(130));
        w.drain_due_into(130, &mut out);
        assert_eq!(w.next_after(130), Some(171));
    }

    #[test]
    fn drained_buckets_keep_their_capacity() {
        let mut w = EventWheel::with_max_delay(10);
        let mut out = Vec::new();
        for round in 0..3u64 {
            let now = round * 7;
            for s in 0..4 {
                w.schedule(now, now + 7, s);
            }
            out.clear();
            assert!(w.drain_due_into(now + 7, &mut out));
            assert_eq!(out.len(), 4);
        }
        let cap = w.buckets[7 & w.mask as usize].capacity();
        assert!(cap >= 4, "bucket capacity {cap} not retained");
    }

    #[test]
    #[should_panic(expected = "out of wheel horizon")]
    fn horizon_violation_panics() {
        let mut w = EventWheel::with_max_delay(10);
        w.schedule(0, w.horizon(), 1);
    }

    #[test]
    fn seq_set_orders_and_drains() {
        let mut s = SeqSet::default();
        s.insert(9);
        s.insert(3);
        s.insert(7);
        s.insert(3); // duplicate
        assert_eq!(s.first(), Some(3));
        assert_eq!(s.len(), 3);
        s.remove(7);
        s.remove(100); // absent
        let mut out = Vec::new();
        s.drain_below_into(Some(9), &mut out);
        assert_eq!(out, vec![3]);
        s.drain_below_into(None, &mut out);
        assert_eq!(out, vec![3, 9]);
        assert!(s.is_empty());
        s.push_monotonic(4);
        s.push_monotonic(11);
        assert_eq!(s.first(), Some(4));
    }
}

//! Hit/total accuracy accumulators.

use std::fmt;
use std::ops::AddAssign;

/// A correct/total accumulator with exact integer counts.
///
/// # Example
///
/// ```
/// use arvi_stats::Accuracy;
/// let mut a = Accuracy::new();
/// a.record(true);
/// a.record(true);
/// a.record(false);
/// assert_eq!(a.total(), 3);
/// assert!((a.rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accuracy {
    correct: u64,
    total: u64,
}

impl Accuracy {
    /// Creates an empty accumulator.
    pub fn new() -> Accuracy {
        Accuracy::default()
    }

    /// Reconstructs an accumulator from exact counts (e.g. reloading a
    /// sweep journal entry).
    ///
    /// # Panics
    ///
    /// Panics if `correct > total`.
    pub fn from_counts(correct: u64, total: u64) -> Accuracy {
        assert!(
            correct <= total,
            "accuracy counts inconsistent: {correct} correct of {total}"
        );
        Accuracy { correct, total }
    }

    /// Records one event.
    #[inline]
    pub fn record(&mut self, correct: bool) {
        self.correct += correct as u64;
        self.total += 1;
    }

    /// Number of correct events.
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Number of incorrect events.
    pub fn incorrect(&self) -> u64 {
        self.total - self.correct
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction correct; 1.0 when empty (no chances to err).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Misprediction rate; 0.0 when empty.
    pub fn miss_rate(&self) -> f64 {
        1.0 - self.rate()
    }

    /// Whether any events were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The events recorded since an earlier snapshot of this accumulator
    /// (used for warmup-window exclusion).
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not a prefix of `self`.
    pub fn since(&self, earlier: &Accuracy) -> Accuracy {
        assert!(
            earlier.total <= self.total && earlier.correct <= self.correct,
            "snapshot is not a prefix"
        );
        Accuracy {
            correct: self.correct - earlier.correct,
            total: self.total - earlier.total,
        }
    }
}

impl AddAssign for Accuracy {
    fn add_assign(&mut self, rhs: Accuracy) {
        self.correct += rhs.correct;
        self.total += rhs.total;
    }
}

impl fmt::Display for Accuracy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.2}%)",
            self.correct,
            self.total,
            self.rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let mut a = Accuracy::new();
        for i in 0..10 {
            a.record(i % 2 == 0);
        }
        assert_eq!(a.correct(), 5);
        assert_eq!(a.incorrect(), 5);
        assert_eq!(a.total(), 10);
        assert!((a.rate() - 0.5).abs() < 1e-12);
        assert!((a.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_rate_is_one() {
        let a = Accuracy::new();
        assert!(a.is_empty());
        assert_eq!(a.rate(), 1.0);
        assert_eq!(a.miss_rate(), 0.0);
    }

    #[test]
    fn merge() {
        let mut a = Accuracy::new();
        a.record(true);
        let mut b = Accuracy::new();
        b.record(false);
        b.record(true);
        a += b;
        assert_eq!(a.total(), 3);
        assert_eq!(a.correct(), 2);
    }

    #[test]
    fn display_form() {
        let mut a = Accuracy::new();
        a.record(true);
        a.record(false);
        assert_eq!(a.to_string(), "1/2 (50.00%)");
    }
}

//! # arvi-stats
//!
//! Counters, accuracy/IPC aggregation and table/series formatting used by
//! the simulator and the experiment harness of the ARVI reproduction.

pub mod accuracy;
pub mod sample;
pub mod series;
pub mod summary;
pub mod table;

pub use accuracy::Accuracy;
pub use sample::{t_95, SampleEstimate, Z_95};
pub use series::{change_percent, cv_percent, stddev};
pub use summary::{amean, geomean, normalize};
pub use table::Table;

//! # arvi-stats
//!
//! Counters, accuracy/IPC aggregation and table/series formatting used by
//! the simulator and the experiment harness of the ARVI reproduction.

pub mod accuracy;
pub mod series;
pub mod summary;
pub mod table;

pub use accuracy::Accuracy;
pub use series::{change_percent, cv_percent, stddev};
pub use summary::{amean, geomean, normalize};
pub use table::Table;

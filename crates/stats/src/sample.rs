//! Weighted sample estimators for interval (SMARTS-style) sampling.
//!
//! A sampled run measures a ratio statistic (IPC, predictor accuracy)
//! over `n` detailed units instead of the whole window. Each unit `i`
//! contributes a value `v_i = numerator_i / denominator_i` and a weight
//! `w_i = denominator_i` (cycles for IPC, branch count for accuracy).
//! Weighting by the denominator makes the weighted mean *exactly* the
//! ratio of summed counters:
//!
//! ```text
//! mean = Σ w_i v_i / Σ w_i = Σ numerator_i / Σ denominator_i
//! ```
//!
//! so the point estimate is identical to aggregating the per-unit
//! integer counter blocks — no floating-point path diverges from the
//! deterministic counter sums. The confidence interval comes from the
//! weighted sample variance of the per-unit values (ratio-estimator
//! form) scaled by a Student-t quantile at `units - 1` degrees of
//! freedom — sampled runs here often aggregate only a handful of units,
//! where the normal approximation (`Z = 1.96`) understates the
//! interval. The usual CLT caveat still applies: the interval captures
//! *sampling* variance only, not systematic warm-up bias, and it is
//! most trustworthy when units are numerous and systematically spread
//! over the run.

/// One weighted estimate: mean, standard error and 95% confidence
/// interval of a ratio statistic over sampled units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEstimate {
    /// Weighted mean (equals the ratio of summed counters).
    pub mean: f64,
    /// Standard error of the weighted mean (0 for fewer than 2 units).
    pub stderr: f64,
    /// Number of units aggregated.
    pub units: usize,
    /// Sum of weights (the denominator counter total).
    pub weight: f64,
}

/// Two-sided 95% normal quantile (the large-sample limit of
/// [`t_95`]).
pub const Z_95: f64 = 1.96;

/// Two-sided 95% Student-t quantile for `df` degrees of freedom.
/// Exact table entries through `df = 30`, then conservative brackets
/// down to the normal limit [`Z_95`]. `df = 0` (a single unit) has no
/// variance estimate at all; it returns the `df = 1` quantile, but the
/// stderr is 0 there so the interval collapses regardless.
pub fn t_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => TABLE[0],
        1..=30 => TABLE[df - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => Z_95,
    }
}

impl SampleEstimate {
    /// Estimates from `(value, weight)` pairs, one per sampled unit.
    /// Zero-weight units carry no information and are ignored.
    pub fn from_weighted(samples: &[(f64, f64)]) -> SampleEstimate {
        let mut weight = 0.0;
        let mut weighted_sum = 0.0;
        let mut n = 0usize;
        for &(v, w) in samples {
            if w <= 0.0 {
                continue;
            }
            weight += w;
            weighted_sum += v * w;
            n += 1;
        }
        if n == 0 || weight <= 0.0 {
            return SampleEstimate {
                mean: 0.0,
                stderr: 0.0,
                units: 0,
                weight: 0.0,
            };
        }
        let mean = weighted_sum / weight;
        if n < 2 {
            return SampleEstimate {
                mean,
                stderr: 0.0,
                units: n,
                weight,
            };
        }
        // Ratio-estimator variance: Var(mean) ≈ n/(n-1) · Σ w_i²(v_i-mean)² / (Σw)².
        let mut ss = 0.0;
        for &(v, w) in samples {
            if w <= 0.0 {
                continue;
            }
            let d = v - mean;
            ss += (w * d) * (w * d);
        }
        let var = ss / (weight * weight) * (n as f64 / (n as f64 - 1.0));
        SampleEstimate {
            mean,
            stderr: var.sqrt(),
            units: n,
            weight,
        }
    }

    /// Half-width of the 95% confidence interval (Student-t at
    /// `units - 1` degrees of freedom).
    pub fn ci_half_width(&self) -> f64 {
        t_95(self.units.saturating_sub(1)) * self.stderr
    }

    /// Lower bound of the 95% confidence interval.
    pub fn ci_lo(&self) -> f64 {
        self.mean - self.ci_half_width()
    }

    /// Upper bound of the 95% confidence interval.
    pub fn ci_hi(&self) -> f64 {
        self.mean + self.ci_half_width()
    }

    /// Whether `value` lies inside the 95% confidence interval.
    pub fn ci_contains(&self, value: f64) -> bool {
        value >= self.ci_lo() && value <= self.ci_hi()
    }

    /// Relative CI half-width (coefficient-of-error at 95%); `0` when
    /// the mean is 0.
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci_half_width() / self.mean.abs()
        }
    }
}

impl std::fmt::Display for SampleEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (95% CI, {} units)",
            self.mean,
            self.ci_half_width(),
            self.units
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mean_is_ratio_of_sums() {
        // Units with (committed, cycles): IPC samples weighted by cycles.
        let units = [(400u64, 500u64), (300, 600), (950, 1_000)];
        let samples: Vec<(f64, f64)> = units
            .iter()
            .map(|&(num, den)| (num as f64 / den as f64, den as f64))
            .collect();
        let est = SampleEstimate::from_weighted(&samples);
        let num: u64 = units.iter().map(|u| u.0).sum();
        let den: u64 = units.iter().map(|u| u.1).sum();
        assert!((est.mean - num as f64 / den as f64).abs() < 1e-15);
        assert_eq!(est.units, 3);
        assert_eq!(est.weight, den as f64);
    }

    #[test]
    fn identical_units_have_zero_stderr() {
        let samples = vec![(0.75, 100.0); 8];
        let est = SampleEstimate::from_weighted(&samples);
        assert_eq!(est.mean, 0.75);
        assert_eq!(est.stderr, 0.0);
        assert!(est.ci_contains(0.75));
        assert!(!est.ci_contains(0.76));
    }

    #[test]
    fn ci_covers_the_spread() {
        let samples = [(1.0, 100.0), (2.0, 100.0), (3.0, 100.0), (2.0, 100.0)];
        let est = SampleEstimate::from_weighted(&samples);
        assert!((est.mean - 2.0).abs() < 1e-12);
        assert!(est.stderr > 0.0);
        assert!(est.ci_lo() < 2.0 && est.ci_hi() > 2.0);
        assert!(est.ci_contains(est.mean));
        assert!((est.ci_hi() - est.mean - est.ci_half_width()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = SampleEstimate::from_weighted(&[]);
        assert_eq!(empty.units, 0);
        assert_eq!(empty.mean, 0.0);
        let zero_weight = SampleEstimate::from_weighted(&[(5.0, 0.0)]);
        assert_eq!(zero_weight.units, 0);
        let single = SampleEstimate::from_weighted(&[(1.5, 10.0)]);
        assert_eq!(single.units, 1);
        assert_eq!(single.mean, 1.5);
        assert_eq!(single.stderr, 0.0);
    }

    #[test]
    fn relative_error_scales_with_stderr() {
        let est = SampleEstimate::from_weighted(&[(1.0, 10.0), (3.0, 10.0)]);
        assert!((est.mean - 2.0).abs() < 1e-12);
        assert!((est.relative_error() - est.ci_half_width() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn t_quantiles_decrease_toward_the_normal_limit() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_95(df);
            assert!(t <= prev, "t_95 must be non-increasing in df");
            assert!(t >= Z_95, "t_95 never undershoots the normal quantile");
            prev = t;
        }
        assert_eq!(t_95(1), 12.706);
        assert_eq!(t_95(4), 2.776);
        assert_eq!(t_95(1_000), Z_95);
        // Small-sample intervals are wider: 3 units at the same spread
        // produce a wider CI than 30 units with the same stderr.
        let wide = SampleEstimate {
            mean: 1.0,
            stderr: 0.1,
            units: 3,
            weight: 300.0,
        };
        let narrow = SampleEstimate {
            mean: 1.0,
            stderr: 0.1,
            units: 30,
            weight: 3_000.0,
        };
        assert!(wide.ci_half_width() > narrow.ci_half_width());
    }

    #[test]
    fn display_form() {
        let est = SampleEstimate::from_weighted(&[(1.0, 1.0)]);
        assert_eq!(est.to_string(), "1.0000 ± 0.0000 (95% CI, 1 units)");
    }
}
